"""Benchmark regenerating Ablation A6: tree features vs graph features
(the Tree+Delta trade-off).

Run:  pytest benchmarks/bench_ablation_trees.py --benchmark-only -s
"""

from repro.experiments import ablation_trees as driver

from .conftest import run_figure_once


def test_ablation_trees(benchmark, scale, archive):
    run_figure_once(benchmark, driver, scale, archive, "ablation_trees")
