"""Benchmark regenerating the paper's Figure 12: candidate ratio vs NNT depth.

Run:  pytest benchmarks/bench_fig12_depth.py --benchmark-only -s
The rendered table is archived under benchmarks/results/.
"""

from repro.experiments import fig12_depth as driver

from .conftest import run_figure_once


def test_fig12_depth(benchmark, scale, archive):
    run_figure_once(benchmark, driver, scale, archive, "fig12_depth")
