"""Benchmark regenerating the paper's Figure 14: stream effectiveness (candidate ratio).

Run:  pytest benchmarks/bench_fig14_stream_effectiveness.py --benchmark-only -s
The rendered table is archived under benchmarks/results/.
"""

from repro.experiments import fig14_stream_effectiveness as driver

from .conftest import run_figure_once


def test_fig14_stream_effectiveness(benchmark, scale, archive):
    run_figure_once(benchmark, driver, scale, archive, "fig14_stream_effectiveness")
