"""Benchmark regenerating the paper's Figure 15: stream efficiency (cost per timestamp).

Run:  pytest benchmarks/bench_fig15_stream_efficiency.py --benchmark-only -s
The rendered table is archived under benchmarks/results/.
"""

from repro.experiments import fig15_stream_efficiency as driver

from .conftest import run_figure_once


def test_fig15_stream_efficiency(benchmark, scale, archive):
    run_figure_once(benchmark, driver, scale, archive, "fig15_stream_efficiency")
