"""Benchmark suite: one module per paper figure plus micro-benchmarks."""
