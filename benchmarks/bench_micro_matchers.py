"""Micro-benchmarks: exact matcher, path fingerprints and gSpan mining —
the primitive costs behind the verification stage and both baselines."""

from repro.baselines import mine_frequent_subgraphs, path_fingerprint
from repro.datasets import generate_graph_set, generate_molecule_set, make_query_set
from repro.isomorphism import SubgraphMatcher


def test_vf2_molecule_queries(benchmark):
    molecules = generate_molecule_set(20, seed=31)
    queries = make_query_set(molecules, 8, 10, seed=32)
    matchers = [SubgraphMatcher(graph) for graph in molecules]
    state = {"i": 0}

    def match_round():
        query = queries[state["i"] % len(queries)]
        state["i"] += 1
        return sum(1 for matcher in matchers if matcher.is_subgraph(query))

    benchmark(match_round)


def test_path_fingerprint_molecule(benchmark):
    molecule = generate_molecule_set(1, seed=33)[0]
    benchmark(lambda: path_fingerprint(molecule, max_length=4))


def test_gspan_mining_small_db(benchmark):
    graphs = generate_graph_set(
        10, num_seeds=6, seed_size=5, graph_size=12, num_vertex_labels=4, seed=34
    )
    benchmark.pedantic(
        lambda: mine_frequent_subgraphs(graphs, min_support=2, max_edges=4),
        rounds=3,
        iterations=1,
    )
