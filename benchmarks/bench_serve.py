"""Serving-layer benchmarks: the TCP edge tax over the sharded runtime.

The same dense ggen replay is driven two ways: directly against a
:class:`repro.runtime.ShardedMonitor` (apply every stream's batch, poll
each timestamp), and over the wire — the real ``repro serve --tcp``
CLI spawned as a subprocess, driven by a plain blocking socket client
speaking the JSON protocol (``batch`` per stream + one ``commit`` per
timestamp).  The edge adds JSON encode/decode, loopback round-trips and
admission bookkeeping per command; everything else (the monitor work)
is identical, so the elapsed-time ratio isolates the serving overhead.

``test_tcp_overhead_under_30_percent_at_4_workers`` pins the
acceptance gate — conditioned on ``os.cpu_count()`` like the runtime
scaling benchmark, since a time-sliced container distorts both sides.
CI's ``BENCH_serve.json`` artifact records applies/second and p95
per-timestamp reply latency for both paths in ``extra_info``.

The benchmark deliberately lives outside ``repro.serve`` and therefore
may not import ``asyncio`` (rule RP017): the server runs in its own
process and the client is a synchronous socket.
"""

import json
import os
import random
import signal
import socket
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.datasets.ggen import generate_graph_set
from repro.datasets.queries import make_query_set
from repro.datasets.stream_gen import DENSE, synthesize_stream
from repro.graph.io import write_graph_set
from repro.runtime import ShardedMonitor
from repro.serve.protocol import change_to_dict

REPO_ROOT = Path(__file__).resolve().parent.parent

NUM_STREAMS = 6
NUM_QUERIES = 5
TIMESTAMPS = 8

_cache = {}


def _workload():
    """(queries, streams, queries_file) — built once per session."""
    if "workload" not in _cache:
        rng = random.Random(41)
        bases = generate_graph_set(
            NUM_STREAMS, graph_size=14.0, num_vertex_labels=4, seed=41
        )
        queries = {
            f"q{i}": query
            for i, query in enumerate(make_query_set(bases, 5, NUM_QUERIES, seed=42))
        }
        p_appear, p_disappear = DENSE
        streams = {
            f"s{i}": synthesize_stream(
                base, p_appear, p_disappear, TIMESTAMPS, rng, all_pairs=True,
                name=f"s{i}",
            )
            for i, base in enumerate(bases)
        }
        tmpdir = tempfile.mkdtemp(prefix="bench_serve_")
        qpath = Path(tmpdir) / "queries.txt"
        write_graph_set(list(queries.values()), qpath, names=list(queries))
        _cache["workload"] = (queries, streams, qpath)
    return _cache["workload"]


def _horizon(streams) -> int:
    return min(len(stream.operations) for stream in streams.values())


def _total_changes(streams) -> int:
    changes = sum(stream.initial.num_edges for stream in streams.values())
    horizon = _horizon(streams)
    for stream in streams.values():
        changes += sum(len(op) for op in stream.operations[:horizon])
    return changes


def _workers() -> int:
    return 4 if (os.cpu_count() or 1) >= 4 else 1


# -- the direct path --------------------------------------------------------


def _replay_direct(workers: int):
    """(elapsed_seconds, per-timestamp latencies) against the monitor."""
    queries, streams, _ = _workload()
    monitor = ShardedMonitor(queries, method="dsc", num_workers=workers)
    try:
        for stream_id, stream in streams.items():
            monitor.add_stream(stream_id, stream.initial)
        horizon = _horizon(streams)
        latencies = []
        start = time.perf_counter()
        for t in range(horizon):
            tick = time.perf_counter()
            for stream_id, stream in streams.items():
                monitor.apply(stream_id, stream.operations[t])
            monitor.matches()
            latencies.append(time.perf_counter() - tick)
        elapsed = time.perf_counter() - start
    finally:
        monitor.close()
    return elapsed, latencies


# -- the TCP path -----------------------------------------------------------


class _ServeProcess:
    """The real ``repro serve --tcp`` CLI as a child process."""

    def __init__(self, queries_file: Path, workers: int) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--queries", str(queries_file),
                "--method", "dsc",
                "--workers", str(workers),
                "--tcp", "127.0.0.1:0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )
        listening = json.loads(self.proc.stdout.readline())
        assert listening["notice"] == "listening"
        self.port = listening["port"]

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=30)


def _replay_tcp(workers: int):
    """(elapsed_seconds, per-timestamp latencies) over the wire."""
    queries, streams, qpath = _workload()
    server = _ServeProcess(qpath, workers)
    try:
        with socket.create_connection(("127.0.0.1", server.port), timeout=120) as sock:
            sock.settimeout(120)
            wire = sock.makefile("rw", encoding="utf-8", newline="\n")
            assert json.loads(wire.readline())["notice"] == "hello"

            def roundtrip(doc):
                wire.write(json.dumps(doc) + "\n")
                wire.flush()
                while True:
                    reply = json.loads(wire.readline())
                    if "notice" not in reply:
                        return reply

            # Registration + initial graphs happen outside the measured
            # span, mirroring the direct path's add_stream calls.
            for stream_id, stream in streams.items():
                assert roundtrip({"cmd": "stream", "stream": stream_id})["ok"]
                initial = [
                    {
                        "op": "ins", "u": u, "v": v, "edge_label": label,
                        "u_label": stream.initial.vertex_label(u),
                        "v_label": stream.initial.vertex_label(v),
                    }
                    for u, v, label in stream.initial.edges()
                ]
                assert roundtrip(
                    {"cmd": "batch", "stream": stream_id, "changes": initial}
                )["ok"]
            assert roundtrip({"cmd": "commit"})["ok"]

            horizon = _horizon(streams)
            latencies = []
            start = time.perf_counter()
            for t in range(horizon):
                tick = time.perf_counter()
                for stream_id, stream in streams.items():
                    reply = roundtrip(
                        {
                            "cmd": "batch",
                            "stream": stream_id,
                            "changes": [
                                change_to_dict(c) for c in stream.operations[t]
                            ],
                        }
                    )
                    assert reply["ok"], reply
                committed = roundtrip({"cmd": "commit"})
                assert committed["ok"], committed
                latencies.append(time.perf_counter() - tick)
            elapsed = time.perf_counter() - start
            roundtrip({"cmd": "quit"})
    finally:
        server.stop()
    return elapsed, latencies


_REPLAYS = {"direct": _replay_direct, "tcp": _replay_tcp}


def _p95_ms(latencies) -> float:
    ranked = sorted(latencies)
    index = min(len(ranked) - 1, int(round(0.95 * (len(ranked) - 1))))
    return ranked[index] * 1e3


def _best_elapsed(mode: str, workers: int, rounds: int = 3) -> float:
    return min(_REPLAYS[mode](workers)[0] for _ in range(rounds))


@pytest.mark.parametrize("mode", ("direct", "tcp"))
def test_serve_roundtrip_throughput(benchmark, mode):
    """Applies/second and p95 per-timestamp reply latency, both paths."""
    _, streams, _ = _workload()
    workers = _workers()
    changes = _total_changes(streams)
    elapsed, latencies = _REPLAYS[mode](workers)

    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["num_streams"] = NUM_STREAMS
    benchmark.extra_info["num_queries"] = NUM_QUERIES
    benchmark.extra_info["timestamps"] = TIMESTAMPS
    benchmark.extra_info["total_changes"] = changes
    benchmark.extra_info["applies_per_sec"] = round(changes / elapsed, 1)
    benchmark.extra_info["p95_timestamp_ms"] = round(_p95_ms(latencies), 3)
    benchmark.extra_info["mean_timestamp_ms"] = round(
        statistics.mean(latencies) * 1e3, 3
    )
    benchmark.pedantic(
        lambda: _REPLAYS[mode](workers), rounds=2, warmup_rounds=0
    )


def test_tcp_overhead_under_30_percent_at_4_workers():
    """The acceptance gate: fronting a 4-worker ShardedMonitor with the
    TCP edge costs < 30% elapsed time on the dense replay."""
    if (os.cpu_count() or 1) < 4:
        pytest.skip("the overhead gate wants 4 real cores; container has fewer")
    direct = _best_elapsed("direct", workers=4)
    tcp = _best_elapsed("tcp", workers=4)
    overhead = tcp / direct - 1.0
    assert overhead < 0.30, (
        f"TCP path {tcp:.3f}s vs direct {direct:.3f}s: "
        f"overhead {overhead:.1%} >= 30%"
    )
