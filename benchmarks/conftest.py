"""Benchmark fixtures.

Figure benchmarks replay a full experiment driver once (``pedantic``,
one round — the drivers are internally repeated measurements already)
and archive the rendered table under ``benchmarks/results/`` so the
numbers survive pytest's output capture.  Scale comes from
``REPRO_SCALE`` (default profile unless overridden).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import get_scale

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    return get_scale()


@pytest.fixture(scope="session")
def archive():
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return save


def run_figure_once(benchmark, driver, scale, archive, name: str):
    """Shared figure-bench body: one timed run, table archived + printed."""
    result = benchmark.pedantic(lambda: driver.run(scale), rounds=1, iterations=1)
    rendered = result.render()
    archive(name, rendered)
    print()
    print(rendered)
    return result
