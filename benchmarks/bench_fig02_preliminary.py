"""Benchmark regenerating the paper's Figure 2: gIndex / GraphGrep / NPV preliminary comparison.

Run:  pytest benchmarks/bench_fig02_preliminary.py --benchmark-only -s
The rendered table is archived under benchmarks/results/.
"""

from repro.experiments import fig02_preliminary as driver

from .conftest import run_figure_once


def test_fig02_preliminary(benchmark, scale, archive):
    run_figure_once(benchmark, driver, scale, archive, "fig02_preliminary")
