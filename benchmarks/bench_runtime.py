"""Runtime benchmarks: sharded replay throughput vs worker count.

A dense ggen workload (several independent streams, coin-flip churn,
poll every timestamp) replayed through the in-process monitor and
through :class:`repro.runtime.ShardedMonitor` at 1/2/4 workers.  Stream
independence (Definition 2.8) is what the runtime exploits: each worker
maintains only its shard's NNTs and join state, so on a multi-core host
the per-timestamp cost divides across shards while the answer stays
identical.

``test_four_workers_at_least_double_one`` pins the scaling claim —
gated on ``os.cpu_count()``, because a single-core container simply
time-slices the workers and no wall-clock speedup is possible there.
CI's ``BENCH_runtime.json`` artifact records every configuration's
timing plus the workload volume in ``extra_info``.
"""

import os
import random
import time

import pytest

from repro.core.monitor import StreamMonitor
from repro.datasets.ggen import generate_graph_set
from repro.datasets.queries import make_query_set
from repro.datasets.stream_gen import DENSE, synthesize_stream
from repro.runtime import ShardedMonitor

NUM_STREAMS = 8
NUM_QUERIES = 6
TIMESTAMPS = 10
_cache = {}


def _workload():
    """(queries, streams) — dense ggen churn, built once per session."""
    if "workload" not in _cache:
        rng = random.Random(97)
        bases = generate_graph_set(
            NUM_STREAMS, graph_size=16.0, num_vertex_labels=4, seed=97
        )
        queries = {
            f"q{i}": query
            for i, query in enumerate(make_query_set(bases, 5, NUM_QUERIES, seed=98))
        }
        p_appear, p_disappear = DENSE
        streams = {
            f"s{i}": synthesize_stream(
                base, p_appear, p_disappear, TIMESTAMPS, rng, all_pairs=True, name=f"s{i}"
            )
            for i, base in enumerate(bases)
        }
        _cache["workload"] = (queries, streams)
    return _cache["workload"]


def _total_changes() -> int:
    _, streams = _workload()
    return sum(stream.total_changes() for stream in streams.values())


def _replay(workers: int) -> None:
    """One full replay: register streams, apply + poll every timestamp.

    ``workers == 0`` is the in-process baseline (no runtime at all);
    otherwise a ShardedMonitor fleet of that size, built and torn down
    inside the measured span (spawn cost is part of deploying the
    runtime, and it is identical across worker counts up to fork cost).
    """
    queries, streams = _workload()
    if workers == 0:
        monitor = StreamMonitor(queries, method="dsc")
        close = None
    else:
        monitor = ShardedMonitor(queries, method="dsc", num_workers=workers)
        close = monitor.close
    try:
        for stream_id, stream in streams.items():
            monitor.add_stream(stream_id, stream.initial)
        horizon = min(len(stream.operations) for stream in streams.values())
        for t in range(horizon):
            for stream_id, stream in streams.items():
                monitor.apply(stream_id, stream.operations[t])
            monitor.matches()
    finally:
        if close is not None:
            close()


def _timed_replay(workers: int, rounds: int = 3) -> float:
    """Best-of-N wall-clock seconds for one replay configuration."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        _replay(workers)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("workers", (0, 1, 2, 4), ids=("inproc", "w1", "w2", "w4"))
def test_replay_throughput(benchmark, workers):
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["num_streams"] = NUM_STREAMS
    benchmark.extra_info["num_queries"] = NUM_QUERIES
    benchmark.extra_info["timestamps"] = TIMESTAMPS
    benchmark.extra_info["total_changes"] = _total_changes()
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.pedantic(_replay, args=(workers,), rounds=3, warmup_rounds=1)


def test_answers_identical_across_worker_counts():
    """The benchmark must compare equal work: every configuration ends
    at the same candidate set (sharding never changes the answer)."""
    queries, streams = _workload()
    finals = []
    for workers in (0, 2):
        if workers == 0:
            monitor = StreamMonitor(queries, method="dsc")
            close = None
        else:
            monitor = ShardedMonitor(queries, method="dsc", num_workers=workers)
            close = monitor.close
        try:
            for stream_id, stream in streams.items():
                monitor.add_stream(stream_id, stream.initial)
            horizon = min(len(stream.operations) for stream in streams.values())
            for t in range(horizon):
                for stream_id, stream in streams.items():
                    monitor.apply(stream_id, stream.operations[t])
            finals.append(monitor.matches())
        finally:
            if close is not None:
                close()
    assert finals[0] == finals[1]


def test_four_workers_at_least_double_one():
    """The headline scaling claim: 4 workers >= 2x the throughput of 1
    on the dense workload — only demonstrable with real cores."""
    if (os.cpu_count() or 1) < 4:
        pytest.skip("parallel speedup needs >= 4 cores; container has fewer")
    single = _timed_replay(1)
    quad = _timed_replay(4)
    assert single / quad >= 2.0, f"speedup {single / quad:.2f}x < 2x"
