"""Benchmark regenerating the paper's Figure 13: static effectiveness vs query size.

Run:  pytest benchmarks/bench_fig13_static.py --benchmark-only -s
The rendered table is archived under benchmarks/results/.
"""

from repro.experiments import fig13_static as driver

from .conftest import run_figure_once


def test_fig13_static(benchmark, scale, archive):
    run_figure_once(benchmark, driver, scale, archive, "fig13_static")
