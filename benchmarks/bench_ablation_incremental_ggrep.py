"""Benchmark regenerating Ablation A8: incremental GraphGrep maintenance
vs the classic per-timestamp recompute.

Run:  pytest benchmarks/bench_ablation_incremental_ggrep.py --benchmark-only -s
"""

from repro.experiments import ablation_incremental_ggrep as driver

from .conftest import run_figure_once


def test_ablation_incremental_ggrep(benchmark, scale, archive):
    run_figure_once(benchmark, driver, scale, archive, "ablation_incremental_ggrep")
