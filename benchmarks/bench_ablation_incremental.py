"""Benchmark regenerating the paper's Ablation A3: incremental NNT maintenance vs rebuild.

Run:  pytest benchmarks/bench_ablation_incremental.py --benchmark-only -s
The rendered table is archived under benchmarks/results/.
"""

from repro.experiments import ablation_incremental as driver

from .conftest import run_figure_once


def test_ablation_incremental(benchmark, scale, archive):
    run_figure_once(benchmark, driver, scale, archive, "ablation_incremental")
