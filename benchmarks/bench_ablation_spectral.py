"""Benchmark regenerating Ablation A4: spectral (GCoding-style) filter
vs NPV on streams.

Run:  pytest benchmarks/bench_ablation_spectral.py --benchmark-only -s
"""

from repro.experiments import ablation_spectral as driver

from .conftest import run_figure_once


def test_ablation_spectral(benchmark, scale, archive):
    run_figure_once(benchmark, driver, scale, archive, "ablation_spectral")
