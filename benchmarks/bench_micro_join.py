"""Micro-benchmarks: the three join engines' answering cost.

Times ``candidates()`` on a prepared state (the pure join phase, no NNT
maintenance) — the quantity whose growth Figures 16-17 analyze.
"""

import random

from repro.datasets import generate_graph_set
from repro.join import QuerySet, StreamListenerAdapter, make_engine
from repro.nnt import NNTIndex


def _setup(num_queries: int = 12, num_streams: int = 8):
    graphs = generate_graph_set(
        num_queries + num_streams,
        num_seeds=6,
        seed_size=5,
        graph_size=12,
        num_vertex_labels=4,
        seed=23,
    )
    queries = {f"q{i}": graphs[i] for i in range(num_queries)}
    query_set = QuerySet(queries, depth_limit=3)
    indexes = {
        sid: NNTIndex(graphs[num_queries + sid], depth_limit=3)
        for sid in range(num_streams)
    }
    return query_set, indexes


def _bench_engine(benchmark, name: str):
    query_set, indexes = _setup()
    engine = make_engine(name, query_set)
    rng = random.Random(5)
    for sid, index in indexes.items():
        engine.register_stream(sid, index.npvs)
        index.add_listener(StreamListenerAdapter(engine, sid))

    def poll_after_touch():
        # Touch one stream so cached verdicts cannot short-circuit, then
        # answer for all pairs.
        sid = rng.choice(list(indexes))
        index = indexes[sid]
        edges = list(index.graph.edges())
        if edges:
            u, v, label = rng.choice(edges)
            u_label = index.graph.vertex_label(u)
            v_label = index.graph.vertex_label(v)
            index.delete_edge(u, v)
            index.insert_edge(u, v, label, u_label, v_label)
        return engine.candidates()

    benchmark(poll_after_touch)


def test_nested_loop_poll(benchmark):
    _bench_engine(benchmark, "nl")


def test_dominated_set_cover_poll(benchmark):
    _bench_engine(benchmark, "dsc")


def test_skyline_poll(benchmark):
    _bench_engine(benchmark, "skyline")
