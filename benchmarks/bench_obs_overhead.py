"""Micro-benchmarks: what the observability layer costs.

Two claims are pinned here, both on the stream-efficiency replay path
(the workload of Figure 15):

* **Disabled is free (<5%).**  With ``obs.disable()`` every
  instrumentation site collapses to one module-flag check (spans hand
  back a shared no-op singleton; instruments return before mutating).
  ``test_disabled_overhead_under_five_percent`` bounds the total cost of
  those checks — measured per-site cost x sites actually hit during the
  replay — at under 5% of the replay's wall-clock time.
* **Enabled accounting is complete (>=95%).**  When enabled, the
  ``monitor.apply`` span must cover essentially all of the time a caller
  spends inside ``StreamMonitor.apply`` — otherwise the exposed
  histograms lie about where the milliseconds go.

The pytest-benchmark pair at the bottom records absolute replay numbers
for both modes (archived by CI next to the other micro-benchmarks).
"""

from __future__ import annotations

import random
import time

from repro import obs
from repro.core.monitor import StreamMonitor
from repro.datasets.stream_gen import synthesize_stream
from repro.graph import LabeledGraph
from repro.obs import Registry

VERTEX_LABELS = ("A", "B", "C")
EDGE_LABELS = ("x", "y")
TIMESTAMPS = 30
SEED = 0x0B5


def _random_graph(rng: random.Random, size: int, extra: int) -> LabeledGraph:
    graph = LabeledGraph()
    for vertex in range(size):
        graph.add_vertex(vertex, rng.choice(VERTEX_LABELS))
    order = list(range(size))
    rng.shuffle(order)
    for i in range(1, size):
        graph.add_edge(order[i], rng.choice(order[:i]), rng.choice(EDGE_LABELS))
    for _ in range(extra):
        u, v = rng.sample(range(size), 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v, rng.choice(EDGE_LABELS))
    return graph


def build_workload(seed: int = SEED):
    rng = random.Random(seed)
    queries = {f"q{i}": _random_graph(rng, rng.randint(3, 4), 1) for i in range(4)}
    streams = {}
    for i in range(4):
        base = _random_graph(rng, rng.randint(8, 12), 4)
        streams[f"s{i}"] = synthesize_stream(
            base, 0.3, 0.2, TIMESTAMPS, rng, all_pairs=True, name=f"s{i}"
        )
    return queries, streams


def replay(queries, streams, method: str = "dsc") -> None:
    """The measured unit: full replay with a poll at every timestamp."""
    monitor = StreamMonitor(queries, method=method)
    for stream_id, stream in streams.items():
        monitor.add_stream(stream_id, stream.initial)
    horizon = min(len(s.operations) for s in streams.values())
    for t in range(horizon):
        for stream_id, stream in streams.items():
            monitor.apply(stream_id, stream.operations[t])
        monitor.matches()
        monitor.events()


def _time_replay(queries, streams, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        replay(queries, streams)
        best = min(best, time.perf_counter() - started)
    return best


def _count_instrumented_sites(queries, streams) -> int:
    """Run the replay once with obs enabled on a throwaway registry and
    count every instrumentation event that fired (counter increments are
    bounded by their totals; spans once per record)."""
    previous = obs.set_registry(Registry())
    obs.clear_spans()
    obs.enable()
    try:
        replay(queries, streams)
        summary = obs.get_registry().summary()
        counter_hits = sum(
            # Increment count <= incremented total (bulk .inc(n) counts once
            # here but n in the value): a safe overestimate of call sites.
            int(entry["value"])
            for entry in summary.values()
            if entry["kind"] == "counter"
        )
        span_hits = sum(
            int(entry["count"])
            for entry in summary.values()
            if entry["kind"] == "histogram"
        )
        return counter_hits + span_hits
    finally:
        obs.set_registry(previous)
        obs.clear_spans()


def _disabled_site_cost(samples: int = 50_000) -> float:
    """Seconds per instrumentation site when the layer is disabled: one
    no-op span plus one gated counter increment."""
    obs.disable()
    counter = obs.counter("bench.disabled_probe")
    started = time.perf_counter()
    for _ in range(samples):
        with obs.span("bench.disabled_span"):
            counter.inc()
    return (time.perf_counter() - started) / samples


def test_disabled_overhead_under_five_percent():
    queries, streams = build_workload()
    sites = _count_instrumented_sites(queries, streams)
    obs.disable()
    try:
        replay_seconds = _time_replay(queries, streams)
        per_site = _disabled_site_cost()
    finally:
        obs.enable()
    overhead = sites * per_site
    fraction = overhead / replay_seconds
    print(
        f"\ndisabled-mode overhead: {sites} sites x {per_site * 1e9:.0f}ns"
        f" = {overhead * 1e3:.3f}ms over {replay_seconds * 1e3:.1f}ms"
        f" replay ({fraction:.2%})"
    )
    assert fraction < 0.05, (
        f"disabled instrumentation costs {fraction:.2%} of the replay"
    )


def test_apply_spans_cover_apply_wallclock():
    queries, streams = build_workload()
    previous = obs.set_registry(Registry())
    obs.clear_spans()
    obs.enable()
    try:
        monitor = StreamMonitor(queries, method="dsc")
        for stream_id, stream in streams.items():
            monitor.add_stream(stream_id, stream.initial)
        horizon = min(len(s.operations) for s in streams.values())
        apply_wallclock = 0.0
        for t in range(horizon):
            for stream_id, stream in streams.items():
                started = time.perf_counter()
                monitor.apply(stream_id, stream.operations[t])
                apply_wallclock += time.perf_counter() - started
        histogram = obs.get_registry().get("monitor.apply.seconds")
        covered = histogram.sum / apply_wallclock
    finally:
        obs.set_registry(previous)
        obs.clear_spans()
    print(
        f"\nmonitor.apply span covers {covered:.2%} of apply wall-clock"
        f" ({histogram.sum * 1e3:.2f}ms of {apply_wallclock * 1e3:.2f}ms)"
    )
    assert covered >= 0.95, (
        f"apply spans account for only {covered:.2%} of apply time"
    )


def test_bench_replay_obs_disabled(benchmark):
    queries, streams = build_workload()
    obs.disable()
    try:
        benchmark(replay, queries, streams)
    finally:
        obs.enable()


def test_bench_replay_obs_enabled(benchmark):
    queries, streams = build_workload()
    previous = obs.set_registry(Registry())
    try:
        benchmark(replay, queries, streams)
    finally:
        obs.set_registry(previous)
        obs.clear_spans()
