"""Micro-benchmarks: what trace identity costs on top of PR 4 spans.

The trace layer adds exactly two kinds of work to the instrumentation
that already existed:

* **Id minting** — every span opened mints one span id, and every root
  span additionally mints one trace id (:mod:`repro.obs.trace`, a
  string format over pid + a per-process counter; no syscalls, no
  entropy).
* **Envelope stamping** — every command the coordinator puts on a
  worker inbox is extended with the current :class:`~repro.obs.trace.
  TraceContext` (:func:`~repro.obs.stamp_envelope`) and split back off
  on the worker (:func:`~repro.obs.split_envelope`).

``test_trace_propagation_overhead_under_five_percent`` bounds the total
of both — unit cost measured directly, multiplied by the number of
spans/commands the Figure 15 replay actually produces — at under 5% of
the replay's wall-clock time, mirroring the disabled-mode gate in
``bench_obs_overhead.py``.  The pytest-benchmark cases at the bottom
record the absolute numbers (CI archives them as ``BENCH_trace.json``).
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.monitor import StreamMonitor
from repro.obs import Registry
from repro.obs import trace as trace_mod

from benchmarks.bench_obs_overhead import build_workload

SEED = 0x7AC3


def replay(queries, streams, method: str = "dsc") -> None:
    """The measured unit: full replay with a poll at every timestamp."""
    monitor = StreamMonitor(queries, method=method)
    for stream_id, stream in streams.items():
        monitor.add_stream(stream_id, stream.initial)
    horizon = min(len(s.operations) for s in streams.values())
    for t in range(horizon):
        for stream_id, stream in streams.items():
            monitor.apply(stream_id, stream.operations[t])
        monitor.matches()
        monitor.events()


def _time_replay(queries, streams, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        replay(queries, streams)
        best = min(best, time.perf_counter() - started)
    return best


def _count_spans(queries, streams) -> int:
    """Spans the replay opens, counted from the ``.seconds`` histograms
    (every span feeds exactly one observation when enabled)."""
    previous = obs.set_registry(Registry())
    obs.clear_spans()
    obs.enable()
    try:
        replay(queries, streams)
        return sum(
            int(entry["count"])
            for key, entry in obs.get_registry().summary().items()
            if entry["kind"] == "histogram" and key.endswith(".seconds")
        )
    finally:
        obs.set_registry(previous)
        obs.clear_spans()


def _count_envelopes(queries, streams) -> int:
    """Commands a sharded run of the same replay would stamp: one per
    add_stream, one per (stream, timestamp) apply, and one poll +
    events request per timestamp per worker (overestimated at 2)."""
    horizon = min(len(s.operations) for s in streams.values())
    return len(streams) + horizon * len(streams) + 2 * horizon


def _mint_cost(samples: int = 100_000) -> float:
    """Seconds per span worth of id minting (span id + trace id — the
    root-span worst case; nested spans mint only one)."""
    started = time.perf_counter()
    for _ in range(samples):
        trace_mod.new_trace_id()
        trace_mod.new_span_id()
    return (time.perf_counter() - started) / samples


def _stamp_cost(samples: int = 100_000) -> float:
    """Seconds per command for a stamp + split round trip under an open
    span (the state every runtime submit runs in)."""
    command = ("apply", "s0", None)
    with obs.span("bench.stamp"):
        started = time.perf_counter()
        for _ in range(samples):
            envelope = obs.stamp_envelope(command)
            obs.split_envelope(envelope)
        elapsed = time.perf_counter() - started
    return elapsed / samples


def test_trace_propagation_overhead_under_five_percent():
    queries, streams = build_workload(seed=SEED)
    spans = _count_spans(queries, streams)
    envelopes = _count_envelopes(queries, streams)
    previous = obs.set_registry(Registry())
    obs.enable()
    try:
        replay_seconds = _time_replay(queries, streams)
        per_span = _mint_cost()
        per_envelope = _stamp_cost()
    finally:
        obs.set_registry(previous)
        obs.clear_spans()
    overhead = spans * per_span + envelopes * per_envelope
    fraction = overhead / replay_seconds
    print(
        f"\ntrace-id overhead: {spans} spans x {per_span * 1e9:.0f}ns"
        f" + {envelopes} envelopes x {per_envelope * 1e9:.0f}ns"
        f" = {overhead * 1e3:.3f}ms over {replay_seconds * 1e3:.1f}ms"
        f" replay ({fraction:.2%})"
    )
    assert fraction < 0.05, (
        f"trace propagation costs {fraction:.2%} of the instrumented replay"
    )


def test_span_records_carry_ids_without_ring_growth():
    """Sanity alongside the gate: the bounded ring still caps memory
    with ids attached, and every record is fully linked."""
    previous = obs.set_registry(Registry())
    obs.clear_spans()
    obs.enable()
    try:
        for _ in range(obs.DEFAULT_SPAN_CAPACITY + 64):
            with obs.span("bench.ring"):
                pass
        records = obs.spans()
        assert len(records) == obs.DEFAULT_SPAN_CAPACITY
        assert all(r.trace_id and r.span_id for r in records)
    finally:
        obs.set_registry(previous)
        obs.clear_spans()


def test_bench_replay_traced(benchmark):
    """Absolute replay time with spans + trace identity enabled."""
    queries, streams = build_workload(seed=SEED)
    previous = obs.set_registry(Registry())
    obs.enable()
    try:
        benchmark(replay, queries, streams)
    finally:
        obs.set_registry(previous)
        obs.clear_spans()


def test_bench_envelope_stamp_split(benchmark):
    """Absolute cost of one stamp + split round trip."""
    command = ("apply", "s0", None)

    def round_trip():
        envelope = obs.stamp_envelope(command)
        obs.split_envelope(envelope)

    obs.enable()
    with obs.span("bench.stamp"):
        benchmark(round_trip)
