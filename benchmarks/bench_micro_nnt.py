"""Micro-benchmarks: incremental NNT maintenance primitives.

These time the paper's Insert-Edge / Delete-Edge procedures (Lemma 3.2:
``O(r^(l-1))`` per appearance) and the bulk build, independent of any
join engine.
"""

import random

from repro.datasets import generate_graph_set
from repro.nnt import NNTIndex


def _workload_graph(size: int = 30):
    return generate_graph_set(
        1, num_seeds=6, seed_size=5, graph_size=size, num_vertex_labels=4, seed=17
    )[0]


def test_bulk_build_depth3(benchmark):
    graph = _workload_graph()
    benchmark(lambda: NNTIndex(graph, depth_limit=3))


def test_insert_delete_cycle_depth3(benchmark):
    """One edge inserted and deleted again: steady-state maintenance."""
    graph = _workload_graph()
    index = NNTIndex(graph, depth_limit=3)
    rng = random.Random(3)
    vertices = list(index.graph.vertices())
    pairs = [
        (u, v)
        for u in vertices
        for v in vertices
        if str(u) < str(v) and not index.graph.has_edge(u, v)
    ]
    pair_cycle = rng.sample(pairs, min(50, len(pairs)))
    state = {"i": 0}

    def cycle():
        u, v = pair_cycle[state["i"] % len(pair_cycle)]
        state["i"] += 1
        index.insert_edge(u, v, "-")
        index.delete_edge(u, v)

    benchmark(cycle)


def test_insert_delete_cycle_depth2(benchmark):
    graph = _workload_graph()
    index = NNTIndex(graph, depth_limit=2)
    vertices = list(index.graph.vertices())
    pairs = [
        (u, v)
        for u in vertices
        for v in vertices
        if str(u) < str(v) and not index.graph.has_edge(u, v)
    ]
    state = {"i": 0}

    def cycle():
        u, v = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        index.insert_edge(u, v, "-")
        index.delete_edge(u, v)

    benchmark(cycle)
