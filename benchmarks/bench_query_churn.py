"""Live query churn benchmarks: registration vs rebuild, dedup ratio.

The point of ``register_query`` is that adding one standing query to a
warm monitor costs a single NPV snapshot + engine row insertion — not a
whole-monitor rebuild (re-decomposing every query, re-ingesting every
stream).  ``test_live_registration_vs_rebuild_gate`` pins that claim:
on a fig16-style workload, registering a query live is at least **10x**
cheaper than the rebuild it replaces (target ~100x; the measured ratio
lands in ``BENCH_churn.json``'s ``extra_info`` for trending).

``test_fingerprint_dedup_gate`` pins the memory side: a query library
with repeated shapes (real pattern libraries are full of near-duplicate
typologies) shares dominance rows per NPV fingerprint, holding at least
**2x** fewer live vectors than the one-group-per-query naive layout.
"""

import os
import random
import time

import pytest

from repro.core.monitor import StreamMonitor
from repro.datasets.ggen import generate_graph_set
from repro.datasets.queries import make_query_set

NUM_STREAMS = 6
NUM_QUERIES = 24
COPIES = 3  # dedup workload: each distinct shape appears this often

_cache = {}


def _workload():
    """(all_queries, streams) — built once per session."""
    if "workload" not in _cache:
        bases = generate_graph_set(
            NUM_STREAMS, graph_size=24.0, num_vertex_labels=4, seed=401
        )
        queries = {
            f"q{i}": query
            for i, query in enumerate(
                make_query_set(bases, 5, NUM_QUERIES, seed=402)
            )
        }
        streams = {f"s{i}": base for i, base in enumerate(bases)}
        _cache["workload"] = (queries, streams)
    return _cache["workload"]


def _warm_monitor(queries: dict) -> StreamMonitor:
    monitor = StreamMonitor(queries, method="dsc")
    _, streams = _workload()
    for stream_id, graph in streams.items():
        monitor.add_stream(stream_id, graph)
    return monitor


def _split():
    """(initial, late) — the last quarter of the library arrives live."""
    queries, _ = _workload()
    names = sorted(queries)
    cut = len(names) - len(names) // 4
    initial = {name: queries[name] for name in names[:cut]}
    late = {name: queries[name] for name in names[cut:]}
    return initial, late


def _register_live() -> float:
    """Seconds per query to register the late batch into a warm monitor."""
    initial, late = _split()
    monitor = _warm_monitor(initial)
    start = time.perf_counter()
    for query_id, pattern in late.items():
        monitor.register_query(query_id, pattern)
    elapsed = time.perf_counter() - start
    assert sorted(monitor.query_ids()) == sorted(initial | late)
    return elapsed / len(late)


def _rebuild() -> float:
    """Seconds for the rebuild a live registration replaces: tear the
    monitor down and reconstruct it with the grown library."""
    queries, _ = _workload()
    start = time.perf_counter()
    monitor = _warm_monitor(queries)
    elapsed = time.perf_counter() - start
    assert sorted(monitor.query_ids()) == sorted(queries)
    return elapsed


def _measured(key: str, fn) -> float:
    if key not in _cache:
        _cache[key] = fn()
    return _cache[key]


def test_register_live(benchmark):
    benchmark.extra_info["num_streams"] = NUM_STREAMS
    benchmark.extra_info["num_queries"] = NUM_QUERIES
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["seconds_per_query"] = _measured("live", _register_live)
    benchmark.pedantic(_register_live, rounds=3, warmup_rounds=1)


def test_rebuild(benchmark):
    benchmark.extra_info["num_streams"] = NUM_STREAMS
    benchmark.extra_info["num_queries"] = NUM_QUERIES
    benchmark.extra_info["rebuild_seconds"] = _measured("rebuild", _rebuild)
    benchmark.pedantic(_rebuild, rounds=3, warmup_rounds=1)


def test_live_registration_vs_rebuild_gate():
    """The headline claim: one live registration is >= 10x cheaper than
    the whole-monitor rebuild it replaces."""
    live = _measured("live", _register_live)
    rebuild = _measured("rebuild", _rebuild)
    assert live > 0, "registration took no measurable time — clock broken"
    ratio = rebuild / live
    assert ratio >= 10.0, (
        f"live registration is only {ratio:.1f}x cheaper than a rebuild "
        f"({rebuild * 1e3:.1f}ms rebuild vs {live * 1e3:.2f}ms/query); gate is 10x"
    )


def test_live_answers_match_rebuild():
    """The benchmark must compare equal work: the churned monitor and
    the rebuilt monitor answer identically."""
    initial, late = _split()
    churned = _warm_monitor(initial)
    for query_id, pattern in late.items():
        churned.register_query(query_id, pattern)
    rebuilt = _warm_monitor(initial | late)
    assert churned.matches() == rebuilt.matches()


def test_fingerprint_dedup_gate():
    """Repeated shapes share dominance rows: >= 2x fewer live vectors
    than one-group-per-query."""
    queries, _ = _workload()
    rng = random.Random(403)
    names = sorted(queries)[: NUM_QUERIES // COPIES]
    library = {}
    for name in names:
        for copy in range(COPIES):
            library[f"{name}c{copy}"] = queries[name].copy()
    shuffled = sorted(library)
    rng.shuffle(shuffled)
    monitor = StreamMonitor({shuffled[0]: library[shuffled[0]]}, method="dsc")
    for query_id in shuffled[1:]:
        monitor.register_query(query_id, library[query_id])
    shared = monitor.query_set.live_vector_count()
    naive = sum(
        len(monitor.query_set.by_query[query_id]) for query_id in library
    )
    assert shared > 0
    ratio = naive / shared
    assert ratio >= 2.0, (
        f"dedup holds only {ratio:.1f}x fewer rows ({naive} naive -> "
        f"{shared} shared); gate is 2x"
    )
