"""Benchmark regenerating the paper's Figure 16: scalability vs number of queries.

Run:  pytest benchmarks/bench_fig16_scale_queries.py --benchmark-only -s
The rendered table is archived under benchmarks/results/.
"""

from repro.experiments import fig16_scale_queries as driver

from .conftest import run_figure_once


def test_fig16_scale_queries(benchmark, scale, archive):
    run_figure_once(benchmark, driver, scale, archive, "fig16_scale_queries")
