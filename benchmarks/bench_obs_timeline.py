"""Micro-benchmarks: what the metrics timeline sampler costs.

The serving layer runs a 1 Hz :class:`~repro.obs.TimelineSampler` next
to live traffic (``ServeConfig.timeline_interval``), and ``repro top``
polls one per frame.  The claim pinned here: with the sampler attached
at its production cadence, the stream-efficiency replay (the Figure 15
workload, shared with ``bench_obs_overhead``) slows down by **under
5%** — sampling cost is one registry summary walk per tick plus sparse
delta dictionaries, amortized over a second of monitoring work.

``maybe_sample`` is also measured on its fast path (the not-due-yet
check a poll loop hits between ticks), which must stay in the tens of
nanoseconds.

The pytest-benchmark pair at the bottom records absolute replay numbers
with and without the sampler (archived by CI as
``BENCH_obs_timeline.json`` next to the other micro-benchmarks).
"""

from __future__ import annotations

import time

from repro import obs
from repro.obs import Registry, Timeline, TimelineSampler

from benchmarks.bench_obs_overhead import build_workload, replay

SAMPLER_INTERVAL = 1.0  # the ServeConfig.timeline_interval default


def replay_with_sampler(queries, streams, interval: float = SAMPLER_INTERVAL):
    """The measured unit: the shared replay with a sampler polled after
    every batch, the way ``run_top`` and the serve sampler task do."""
    timeline = Timeline()
    sampler = TimelineSampler(
        timeline, lambda: obs.get_registry().summary(), interval=interval
    )
    from repro.core.monitor import StreamMonitor

    monitor = StreamMonitor(queries, method="dsc")
    for stream_id, stream in streams.items():
        monitor.add_stream(stream_id, stream.initial)
    horizon = min(len(s.operations) for s in streams.values())
    for t in range(horizon):
        for stream_id, stream in streams.items():
            monitor.apply(stream_id, stream.operations[t])
        monitor.matches()
        monitor.events()
        sampler.maybe_sample()
    return timeline


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _per_sample_cost(timeline: Timeline, rounds: int = 50) -> float:
    """Seconds per sampler tick against the fully-populated post-replay
    registry (summary walk + sparse delta encoding), averaged over many
    ticks so one scheduler hiccup cannot dominate."""
    started = time.perf_counter()
    for i in range(rounds):
        timeline.sample(obs.get_registry().summary(), t=float(i))
    return (time.perf_counter() - started) / rounds


def test_sampler_overhead_under_five_percent():
    """At the production 1 Hz cadence the sampler runs once per second
    of replay, so its cost fraction is per-tick seconds / interval —
    the same sites-times-unit-cost argument ``bench_obs_overhead``
    makes for the disabled fast path (a direct A/B of two sub-second
    replays is dominated by run-to-run noise at the 5% scale)."""
    queries, streams = build_workload()
    previous = obs.set_registry(Registry())
    obs.clear_spans()
    obs.enable()
    try:
        replay_seconds = _best_of(lambda: replay(queries, streams))
        per_tick = _per_sample_cost(Timeline())
    finally:
        obs.set_registry(previous)
        obs.clear_spans()
    fraction = per_tick / SAMPLER_INTERVAL
    print(
        f"\ntimeline sampler: {per_tick * 1e6:.0f}us per tick at"
        f" {SAMPLER_INTERVAL:.0f}s cadence = {fraction:.3%} of wall-clock"
        f" (replay ran {replay_seconds * 1e3:.1f}ms)"
    )
    assert fraction < 0.05, (
        f"1 Hz timeline sampling costs {fraction:.2%} of wall-clock"
    )


def test_maybe_sample_fast_path_is_nanoseconds():
    """Between ticks, maybe_sample is one clock read and a compare."""
    previous = obs.set_registry(Registry())
    obs.enable()
    try:
        sampler = TimelineSampler(
            Timeline(), lambda: obs.get_registry().summary(), interval=3600.0
        )
        sampler.force()  # cadence armed: every later call is not-due
        samples = 100_000
        started = time.perf_counter()
        for _ in range(samples):
            sampler.maybe_sample()
        per_call = (time.perf_counter() - started) / samples
    finally:
        obs.set_registry(previous)
    print(f"\nmaybe_sample fast path: {per_call * 1e9:.0f}ns per call")
    assert per_call < 5e-6, f"fast path costs {per_call * 1e6:.2f}us per call"


def test_bench_replay_without_sampler(benchmark):
    queries, streams = build_workload()
    previous = obs.set_registry(Registry())
    obs.enable()
    try:
        benchmark(replay, queries, streams)
    finally:
        obs.set_registry(previous)
        obs.clear_spans()


def test_bench_replay_with_sampler(benchmark):
    queries, streams = build_workload()
    previous = obs.set_registry(Registry())
    obs.enable()
    try:
        benchmark(replay_with_sampler, queries, streams)
    finally:
        obs.set_registry(previous)
        obs.clear_spans()
