"""Benchmark regenerating the paper's Ablation A2: edge labels in projection dimensions.

Run:  pytest benchmarks/bench_ablation_dimensions.py --benchmark-only -s
The rendered table is archived under benchmarks/results/.
"""

from repro.experiments import ablation_dimensions as driver

from .conftest import run_figure_once


def test_ablation_dimensions(benchmark, scale, archive):
    run_figure_once(benchmark, driver, scale, archive, "ablation_dimensions")
