"""Micro-benchmarks: batched/coalesced NPV delta delivery vs legacy per-delta.

A reality-like temporal-locality stream (proximity edges blinking off and
back on within the same timestamp window) makes most tree-edge deltas
cancel inside a batch.  The NNT maintenance work is identical either
way, so these benchmarks isolate the *delivery* pipeline: the listener
traffic of both modes is recorded once, then replayed into fresh join
engines.

* ``per_delta`` replays the ``coalesce=False`` trace — one
  ``on_dimension_delta`` call per spliced tree edge (the pre-pipeline
  behavior).
* ``coalesced`` replays the default trace — one ``batch_update`` per
  timestamp carrying only the netted survivors.

``test_coalescing_nets_majority_of_deltas`` pins the workload property
the speedup relies on (no timing involved): the coalesced trace must
carry well under half the raw delta volume.
"""

import random

from repro.datasets import RealityConfig, generate_reality_stream
from repro.datasets.queries import make_query_set
from repro.graph import EdgeChange, GraphChangeOperation
from repro.join import QuerySet, make_engine
from repro.nnt import NNTIndex

DEPTH = 3
TIMESTAMPS = 30
_trace_cache = {}


class _TraceRecorder:
    """Raw per-delta listener traffic (``coalesce=False`` index)."""

    def __init__(self):
        self.events = []

    def on_vertex_added(self, vertex):
        self.events.append(("add", vertex))

    def on_vertex_removed(self, vertex):
        self.events.append(("rm", vertex))

    def on_dimension_delta(self, vertex, dim, delta):
        self.events.append(("delta", vertex, dim, delta))


class _BatchTraceRecorder(_TraceRecorder):
    """Coalesced traffic: netted batches instead of individual deltas."""

    def on_batch_update(self, deltas):
        self.events.append(("batch", dict(deltas)))


def _blink_batch(rng: random.Random, index: NNTIndex) -> GraphChangeOperation:
    """One timestamp of proximity churn: drop some edges, most reappear."""
    graph = index.graph
    edges = list(graph.edges())
    rng.shuffle(edges)
    changes = []
    for u, v, label in edges[: max(1, len(edges) // 4)]:
        changes.append(EdgeChange.delete(u, v))
        if rng.random() < 0.85:  # the device came back into range
            changes.append(
                EdgeChange.insert(
                    u, v, label, graph.vertex_label(u), graph.vertex_label(v)
                )
            )
    vertices = list(graph.vertices())
    if len(vertices) >= 2:  # a genuinely new proximity pair
        u, v = rng.sample(vertices, 2)
        if not graph.has_edge(u, v) and not any(
            c.op == "ins" and {c.u, c.v} == {u, v} for c in changes
        ):
            changes.append(
                EdgeChange.insert(
                    u, v, "near", graph.vertex_label(u), graph.vertex_label(v)
                )
            )
    return GraphChangeOperation(changes)


def _record():
    """Record both delivery modes' listener traffic once, plus the shared
    initial NPV snapshot and a query set drawn from the same graph."""
    if _trace_cache:
        return _trace_cache
    rng = random.Random(7)
    base = generate_reality_stream(rng, 1, RealityConfig(num_devices=50)).initial
    queries = {
        f"q{i}": graph
        for i, graph in enumerate(make_query_set([base], num_edges=3, count=8, seed=3))
    }
    traces = {}
    for mode, coalesce, recorder in (
        ("per_delta", False, _TraceRecorder()),
        ("coalesced", True, _BatchTraceRecorder()),
    ):
        index = NNTIndex(base, depth_limit=DEPTH, coalesce=coalesce)
        index.add_listener(recorder)
        for seed in range(TIMESTAMPS):
            index.apply(_blink_batch(random.Random(seed), index))
        traces[mode] = recorder.events
    _trace_cache.update(
        traces=traces,
        initial_npvs={v: dict(vec) for v, vec in NNTIndex(base, DEPTH).npvs.items()},
        query_set=QuerySet(queries, depth_limit=DEPTH),
    )
    return _trace_cache


def _replay(engine, events):
    for event in events:
        kind = event[0]
        if kind == "delta":
            engine.on_dimension_delta("s", event[1], event[2], event[3])
        elif kind == "batch":
            engine.batch_update("s", event[1])
        elif kind == "add":
            engine.on_vertex_added("s", event[1])
        else:
            engine.on_vertex_removed("s", event[1])
    return engine.candidates()


def _bench_delivery(benchmark, engine_name: str, mode: str):
    recorded = _record()
    events = recorded["traces"][mode]

    def fresh_engine():
        engine = make_engine(engine_name, recorded["query_set"])
        engine.register_stream(
            "s", {v: dict(vec) for v, vec in recorded["initial_npvs"].items()}
        )
        return (engine, events), {}

    benchmark.pedantic(_replay, setup=fresh_engine, rounds=20)


def test_per_delta_delivery_dsc(benchmark):
    _bench_delivery(benchmark, "dsc", "per_delta")


def test_coalesced_delivery_dsc(benchmark):
    _bench_delivery(benchmark, "dsc", "coalesced")


def test_per_delta_delivery_skyline(benchmark):
    _bench_delivery(benchmark, "skyline", "per_delta")


def test_coalesced_delivery_skyline(benchmark):
    _bench_delivery(benchmark, "skyline", "coalesced")


def test_per_delta_delivery_matrix(benchmark):
    _bench_delivery(benchmark, "matrix", "per_delta")


def test_coalesced_delivery_matrix(benchmark):
    _bench_delivery(benchmark, "matrix", "coalesced")


def test_coalescing_nets_majority_of_deltas():
    """Workload sanity (not timed): both traces describe the same stream,
    yet coalescing must net away more than half the raw delta volume."""
    recorded = _record()
    raw = sum(1 for e in recorded["traces"]["per_delta"] if e[0] == "delta")
    net = sum(len(e[1]) for e in recorded["traces"]["coalesced"] if e[0] == "batch")
    assert raw > 0
    assert net * 2 < raw, (net, raw)
    # Both modes end in the same engine state: same final answer.
    answers = set()
    for mode in ("per_delta", "coalesced"):
        engine = make_engine("dsc", recorded["query_set"])
        engine.register_stream(
            "s", {v: dict(vec) for v, vec in recorded["initial_npvs"].items()}
        )
        answers.add(frozenset(_replay(engine, recorded["traces"][mode])))
    assert len(answers) == 1
