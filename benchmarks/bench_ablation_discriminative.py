"""Benchmark regenerating Ablation A5: gIndex discriminative fragment
selection.

Run:  pytest benchmarks/bench_ablation_discriminative.py --benchmark-only -s
"""

from repro.experiments import ablation_discriminative as driver

from .conftest import run_figure_once


def test_ablation_discriminative(benchmark, scale, archive):
    run_figure_once(benchmark, driver, scale, archive, "ablation_discriminative")
