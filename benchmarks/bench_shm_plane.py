"""Shared-memory NPV plane benchmarks: queue bytes per apply.

The point of ``ShardedMonitor(shm=True)`` is not raw wall-clock on a
2-core CI box (where fork time-slicing drowns the signal) — it is the
*bytes pickled onto the coordinator->worker queue per apply*.  With the
shm ring, an apply envelope carries a fixed-size ``RingRef`` descriptor
instead of the pickled change-batch payload, so the queue cost stops
scaling with batch density.  That is a deterministic counter
(``runtime.bytes_pickled``), identical run-to-run for a seeded
workload, which makes it gateable on shared CI runners where timing is
not.

``test_shm_bytes_pickled_gate`` pins the claim: on a dense fig16-style
workload the shm plane ships at least 5x fewer bytes per apply than
the pickled-payload queue path (target ~10x; the measured ratio lands
in ``BENCH_shm.json``'s ``extra_info`` for trending).
"""

import os
import random

import pytest

from repro import obs
from repro.datasets.ggen import generate_graph_set
from repro.datasets.queries import make_query_set
from repro.datasets.stream_gen import DENSE, synthesize_stream
from repro.runtime import ShardedMonitor

NUM_STREAMS = 6
NUM_QUERIES = 4
TIMESTAMPS = 8
WORKERS = 2

_cache = {}


def _workload():
    """(queries, streams) — dense ggen churn, built once per session."""
    if "workload" not in _cache:
        rng = random.Random(97)
        bases = generate_graph_set(
            NUM_STREAMS, graph_size=20.0, num_vertex_labels=4, seed=97
        )
        queries = {
            f"q{i}": query
            for i, query in enumerate(make_query_set(bases, 5, NUM_QUERIES, seed=98))
        }
        p_appear, p_disappear = DENSE
        streams = {
            f"s{i}": synthesize_stream(
                base, p_appear, p_disappear, TIMESTAMPS, rng, all_pairs=True, name=f"s{i}"
            )
            for i, base in enumerate(bases)
        }
        _cache["workload"] = (queries, streams)
    return _cache["workload"]


def _replay(shm: bool):
    """One full replay through a 2-worker matrix fleet; returns the
    final candidate set (so benchmark configurations prove equal work)."""
    queries, streams = _workload()
    monitor = ShardedMonitor(
        queries, method="matrix", num_workers=WORKERS, shm=shm
    )
    try:
        for stream_id, stream in streams.items():
            monitor.add_stream(stream_id, stream.initial)
        horizon = min(len(stream.operations) for stream in streams.values())
        for t in range(horizon):
            for stream_id, stream in streams.items():
                monitor.apply(stream_id, stream.operations[t])
        return monitor.matches()
    finally:
        monitor.close()


def _bytes_per_apply(shm: bool) -> float:
    """Queue bytes per apply for one configuration, measured on a fresh
    registry (cached — the counter is deterministic for the seeded
    workload, so one measurement serves gate and benchmark alike)."""
    key = ("bytes", shm)
    if key not in _cache:
        was_enabled = obs.enabled()
        previous = obs.set_registry(obs.Registry())
        obs.enable()
        try:
            _replay(shm)
            summary = obs.get_registry().summary()
            entry = summary.get("runtime.bytes_pickled")
            total = float(entry["value"]) if entry else 0.0
        finally:
            obs.set_registry(previous)
            if not was_enabled:
                obs.disable()
        applies = NUM_STREAMS * TIMESTAMPS
        _cache[key] = total / applies
    return _cache[key]


@pytest.mark.parametrize("shm", (False, True), ids=("queue", "shm"))
def test_apply_queue_bytes(benchmark, shm):
    benchmark.extra_info["shm"] = shm
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["num_streams"] = NUM_STREAMS
    benchmark.extra_info["timestamps"] = TIMESTAMPS
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["bytes_per_apply"] = _bytes_per_apply(shm)
    benchmark.pedantic(_replay, args=(shm,), rounds=2, warmup_rounds=1)


def test_shm_bytes_pickled_gate():
    """The headline claim: >= 5x fewer queue bytes per apply with the
    shm plane (counter-based — deterministic on a 2-core runner)."""
    queue_bytes = _bytes_per_apply(shm=False)
    shm_bytes = _bytes_per_apply(shm=True)
    assert shm_bytes > 0, "shm replay pickled nothing — counter wiring broken"
    ratio = queue_bytes / shm_bytes
    assert ratio >= 5.0, (
        f"shm plane ships only {ratio:.1f}x fewer queue bytes per apply "
        f"({queue_bytes:.0f} -> {shm_bytes:.0f}); gate is 5x"
    )


def test_answers_identical_queue_vs_shm():
    """The benchmark must compare equal work: both wire formats end at
    the same candidate set."""
    assert _replay(shm=False) == _replay(shm=True)
