"""Benchmark regenerating Ablation A7: closure-tree vs NPV flat filter.

Run:  pytest benchmarks/bench_ablation_ctree.py --benchmark-only -s
"""

from repro.experiments import ablation_ctree as driver

from .conftest import run_figure_once


def test_ablation_ctree(benchmark, scale, archive):
    run_figure_once(benchmark, driver, scale, archive, "ablation_ctree")
