"""Benchmark regenerating the paper's Ablation A1: NPV dominance vs branch compatibility.

Run:  pytest benchmarks/bench_ablation_branch.py --benchmark-only -s
The rendered table is archived under benchmarks/results/.
"""

from repro.experiments import ablation_branch as driver

from .conftest import run_figure_once


def test_ablation_branch(benchmark, scale, archive):
    run_figure_once(benchmark, driver, scale, archive, "ablation_branch")
