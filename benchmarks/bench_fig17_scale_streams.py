"""Benchmark regenerating the paper's Figure 17: scalability vs number of streams.

Run:  pytest benchmarks/bench_fig17_scale_streams.py --benchmark-only -s
The rendered table is archived under benchmarks/results/.
"""

from repro.experiments import fig17_scale_streams as driver

from .conftest import run_figure_once


def test_fig17_scale_streams(benchmark, scale, archive):
    run_figure_once(benchmark, driver, scale, archive, "fig17_scale_streams")
