"""Plain-text rendering of graphs, NNTs and NPVs for debugging and the
examples/CLI.  Deterministic output (sorted by vertex id repr) so tests
can assert on it."""

from __future__ import annotations

from typing import Callable

from .graph.labeled_graph import LabeledGraph, VertexId
from .nnt.tree import NNT, TreeNode


def format_graph(graph: LabeledGraph, name: str = "") -> str:
    """Adjacency-list style rendering::

        graph 'g': 3 vertices, 2 edges
          1[A] -- 2[B](x) 3[C](y)
    """
    header = f"graph {name!r}: " if name else "graph: "
    lines = [f"{header}{graph.num_vertices} vertices, {graph.num_edges} edges"]
    for vertex in sorted(graph.vertices(), key=repr):
        neighbors = " ".join(
            f"{neighbor}[{graph.vertex_label(neighbor)}]({label})"
            for neighbor, label in sorted(graph.neighbor_items(vertex), key=lambda kv: repr(kv[0]))
        )
        lines.append(f"  {vertex}[{graph.vertex_label(vertex)}] -- {neighbors}".rstrip(" -"))
    return "\n".join(lines)


def format_tree(tree: NNT, label_of: Callable[[VertexId], object]) -> str:
    """Indented rendering of an NNT::

        NNT(1) depth<=2
        1[A]
        ├─(-)─ 2[B]
        │      └─(-)─ 3[C]
        └─(-)─ 3[C]
    """
    lines = [f"NNT({tree.root_vertex}) depth<={tree.depth_limit}"]

    def visit(node: TreeNode, prefix: str, is_last: bool) -> None:
        if node.parent is None:
            lines.append(f"{node.graph_vertex}[{label_of(node.graph_vertex)}]")
            child_prefix = ""
        else:
            connector = "└─" if is_last else "├─"
            lines.append(
                f"{prefix}{connector}({node.edge_label})─ "
                f"{node.graph_vertex}[{label_of(node.graph_vertex)}]"
            )
            child_prefix = prefix + ("       " if is_last else "│      ")
        children = sorted(node.children.values(), key=lambda c: repr(c.graph_vertex))
        for index, child in enumerate(children):
            visit(child, child_prefix, index == len(children) - 1)

    visit(tree.root, "", True)
    return "\n".join(lines)


def format_npv(vector: dict) -> str:
    """One-line sparse rendering: ``{(1,A,B):2, (2,B,C):1}``."""
    if not vector:
        return "{}"
    parts = [
        f"({','.join(str(part) for part in dim)}):{value}"
        for dim, value in sorted(vector.items(), key=lambda kv: repr(kv[0]))
    ]
    return "{" + ", ".join(parts) + "}"
