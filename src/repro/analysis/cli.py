"""Command line for the analyzer.

Usable standalone (``python -m repro.analysis [paths]``) and embedded as
the ``repro lint`` subcommand.  Exit codes: 0 clean, 1 findings,
2 usage error — so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys

from .engine import Analyzer
from .findings import Finding, Severity
from .rules import REGISTRY, make_rules

DEFAULT_PATHS = ["src", "benchmarks"]


def build_parser(prog: str = "repro.analysis") -> argparse.ArgumentParser:
    """The argparse tree (shared by ``repro lint``)."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Static analysis enforcing the reproduction's "
        "soundness and layering invariants (rules RP001-RP008).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=DEFAULT_PATHS,
        help=f"files or directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (json is one machine-readable object for CI)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _render_text(findings: list[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    lines.append(
        f"found {len(findings)} violation(s) "
        f"({errors} error(s), {warnings} warning(s))"
        if findings
        else "no violations found"
    )
    return "\n".join(lines)


def _render_json(findings: list[Finding], paths: list[str]) -> str:
    payload = {
        "paths": paths,
        "findings": [finding.to_dict() for finding in findings],
        "summary": {
            "total": len(findings),
            "errors": sum(1 for f in findings if f.severity is Severity.ERROR),
            "warnings": sum(1 for f in findings if f.severity is Severity.WARNING),
        },
    }
    return json.dumps(payload, indent=2)


def _render_catalog() -> str:
    lines = ["available rules:"]
    for rule_id in sorted(REGISTRY):
        rule = REGISTRY[rule_id]
        scope = "all units" if rule.units is None else ", ".join(sorted(rule.units))
        lines.append(f"  {rule_id}  {rule.title}")
        lines.append(f"         scope: {scope}")
    return "\n".join(lines)


def run(args: argparse.Namespace) -> int:
    """Execute a parsed invocation; returns the exit code."""
    if args.list_rules:
        print(_render_catalog())
        return 0
    select = None
    if args.select:
        select = [part.strip().upper() for part in args.select.split(",") if part.strip()]
    try:
        analyzer = Analyzer(make_rules(select))
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    try:
        findings = analyzer.analyze_paths(args.paths)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(_render_json(findings, list(args.paths)))
    else:
        print(_render_text(findings))
    has_errors = any(f.severity is Severity.ERROR for f in findings)
    return 1 if has_errors else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.analysis``."""
    return run(build_parser().parse_args(argv))
