"""Command line for the analyzer.

Usable standalone (``python -m repro.analysis [paths]``) and embedded as
the ``repro lint`` subcommand (both build their flags through
:func:`add_lint_arguments`, so the two surfaces cannot drift).  Exit
codes: 0 clean, 1 findings, 2 usage error — so CI can gate on it
directly.  ``--strict`` promotes warnings into the exit code;
``--project`` adds the whole-program rules (RP011+) on top of the
per-module pack; ``--baseline`` subtracts reviewed pre-existing
findings so new code is gated while adoption is incremental.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .engine import Analyzer
from .findings import Finding, Severity
from .project import PROJECT_REGISTRY, make_project_rules
from .rules import REGISTRY, make_rules

DEFAULT_PATHS = ["src", "benchmarks"]


def rule_range() -> str:
    """``"RP001-RP015"`` — derived from the registries so the help text
    can never go stale again."""
    ids = sorted(REGISTRY) + sorted(PROJECT_REGISTRY)
    return f"{min(ids)}-{max(ids)}" if ids else "none"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint flags on ``parser`` (shared between the
    standalone module CLI and the ``repro lint`` subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=DEFAULT_PATHS,
        help=f"files or directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (json: one machine-readable object; "
        "sarif: SARIF 2.1.0 for CI annotation)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="whole-program mode: build the semantic model once and run "
        "the cross-file rules (RP011+) in addition to the per-module pack",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on warnings too, not just errors",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="subtract the reviewed findings recorded in FILE before "
        "reporting/exiting (incremental adoption; stale entries are "
        "noted on stderr)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current findings to FILE as a baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def build_parser(prog: str = "repro.analysis") -> argparse.ArgumentParser:
    """The argparse tree (shared by ``repro lint``)."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Static analysis enforcing the reproduction's "
        f"soundness and layering invariants (rules {rule_range()}).",
    )
    add_lint_arguments(parser)
    return parser


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------


def _fingerprint(finding: Finding) -> tuple[str, str, str]:
    """Line-number-free identity, stable across unrelated edits."""
    return (finding.path, finding.rule_id, finding.message)


def load_baseline(path: str) -> set[tuple[str, str, str]]:
    """The fingerprints recorded in a baseline file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return {
        (entry["path"], entry["rule"], entry["message"])
        for entry in payload.get("findings", [])
    }


def write_baseline(path: str, findings: list[Finding]) -> None:
    """Record ``findings`` as the reviewed baseline."""
    payload = {
        "version": 1,
        "findings": [
            {"path": f.path, "rule": f.rule_id, "message": f.message}
            for f in findings
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    findings: list[Finding], baseline: set[tuple[str, str, str]]
) -> tuple[list[Finding], int]:
    """(surviving findings, count of stale baseline entries)."""
    current = {_fingerprint(f) for f in findings}
    kept = [f for f in findings if _fingerprint(f) not in baseline]
    stale = len(baseline - current)
    return kept, stale


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------


def _render_text(findings: list[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    lines.append(
        f"found {len(findings)} violation(s) "
        f"({errors} error(s), {warnings} warning(s))"
        if findings
        else "no violations found"
    )
    return "\n".join(lines)


def _render_json(findings: list[Finding], paths: list[str]) -> str:
    payload = {
        "paths": paths,
        "findings": [finding.to_dict() for finding in findings],
        "summary": {
            "total": len(findings),
            "errors": sum(1 for f in findings if f.severity is Severity.ERROR),
            "warnings": sum(1 for f in findings if f.severity is Severity.WARNING),
        },
    }
    return json.dumps(payload, indent=2)


def _render_catalog() -> str:
    lines = ["available rules:"]
    for rule_id in sorted(REGISTRY):
        rule = REGISTRY[rule_id]
        scope = "all units" if rule.units is None else ", ".join(sorted(rule.units))
        lines.append(f"  {rule_id}  {rule.title}")
        lines.append(f"         scope: {scope}")
    lines.append("project rules (need --project):")
    for rule_id in sorted(PROJECT_REGISTRY):
        project_rule = PROJECT_REGISTRY[rule_id]
        lines.append(f"  {rule_id}  {project_rule.title}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------


def _split_selection(
    select: list[str] | None, project: bool
) -> tuple[list[str] | None, list[str] | None]:
    """Validated (per-module ids, project ids); raises ValueError with a
    user-facing message on unknown ids or project ids without --project."""
    if select is None:
        return None, None
    per_module = [rule_id for rule_id in select if rule_id in REGISTRY]
    project_ids = [rule_id for rule_id in select if rule_id in PROJECT_REGISTRY]
    unknown = [
        rule_id
        for rule_id in select
        if rule_id not in REGISTRY and rule_id not in PROJECT_REGISTRY
    ]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(set(unknown)))}")
    if project_ids and not project:
        raise ValueError(
            f"rule(s) {', '.join(project_ids)} need the whole-program model; "
            "add --project"
        )
    return per_module, project_ids


def run(args: argparse.Namespace) -> int:
    """Execute a parsed invocation; returns the exit code."""
    if args.list_rules:
        print(_render_catalog())
        return 0
    select = None
    if args.select:
        select = [part.strip().upper() for part in args.select.split(",") if part.strip()]
    try:
        per_module, project_ids = _split_selection(select, args.project)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    analyzer = Analyzer(
        make_rules(per_module),
        project_rules=make_project_rules(project_ids),
    )
    baseline: set[tuple[str, str, str]] = set()
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot read baseline {args.baseline}: {error}", file=sys.stderr)
            return 2
    try:
        if args.project:
            findings = analyzer.analyze_project(args.paths)
        else:
            findings = analyzer.analyze_paths(args.paths)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(
            f"wrote {len(findings)} finding(s) to baseline {args.write_baseline}"
        )
        return 0
    if baseline:
        findings, stale = apply_baseline(findings, baseline)
        if stale:
            print(
                f"note: {stale} baseline entr{'y is' if stale == 1 else 'ies are'} "
                "stale (fixed findings — shrink the baseline file)",
                file=sys.stderr,
            )
    if args.format == "json":
        print(_render_json(findings, list(args.paths)))
    elif args.format == "sarif":
        from .sarif import render_sarif

        print(render_sarif(findings))
    else:
        print(_render_text(findings))
    has_errors = any(f.severity is Severity.ERROR for f in findings)
    has_warnings = any(f.severity is Severity.WARNING for f in findings)
    if has_errors or (args.strict and has_warnings):
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.analysis``."""
    return run(build_parser().parse_args(argv))
