"""Structured findings emitted by the analysis rules.

A :class:`Finding` pins one rule violation to a file/line/column so it
can be rendered as a compiler-style diagnostic, serialized to JSON for
CI annotation, or matched against ``# repro: noqa[RULE-ID]``
suppression comments by the engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How a finding affects the exit code.

    ``ERROR`` findings fail the run; ``WARNING`` findings are reported
    but do not (reserved for rules being phased in).
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    column: int
    rule_id: str
    message: str
    severity: Severity = Severity.ERROR

    def render(self) -> str:
        """Compiler-style one-line diagnostic."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (for ``--format=json`` / CI)."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }
