"""SARIF 2.1.0 rendering for CI annotation.

Minimal but valid: one ``run`` with the rule catalog in
``tool.driver.rules`` and one ``result`` per finding, so GitHub code
scanning (and any SARIF viewer) can annotate the diff.  Stdlib-only,
like the rest of ``repro.analysis``.
"""

from __future__ import annotations

import json

from .findings import Finding, Severity

#: SARIF schema pin — bump deliberately, not incidentally.
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVEL_FOR_SEVERITY = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
}


def _rule_catalog() -> list[dict[str, object]]:
    """Every registered rule (per-module and project), as SARIF
    ``reportingDescriptor`` objects."""
    from .project import PROJECT_REGISTRY
    from .rules import REGISTRY

    catalog: list[dict] = []
    merged: dict[str, tuple[str, str]] = {}
    for rule_id in REGISTRY:
        rule = REGISTRY[rule_id]
        merged[rule_id] = (rule.title, rule.rationale)
    for rule_id in PROJECT_REGISTRY:
        rule = PROJECT_REGISTRY[rule_id]
        merged[rule_id] = (rule.title, rule.rationale)
    for rule_id in sorted(merged):
        title, rationale = merged[rule_id]
        catalog.append(
            {
                "id": rule_id,
                "shortDescription": {"text": title},
                "fullDescription": {"text": rationale},
            }
        )
    return catalog


def render_sarif(findings: list[Finding]) -> str:
    """The findings as one SARIF 2.1.0 document (JSON text)."""
    results = [
        {
            "ruleId": finding.rule_id,
            "level": _LEVEL_FOR_SEVERITY.get(finding.severity, "error"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.column,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": "docs/static_analysis.md",
                        "rules": _rule_catalog(),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)
