"""The declarative import-layering matrix of the codebase.

The paper's architecture keeps exact subgraph isomorphism *out of the
filtering path*: the NNT/NPV maintenance layer (Section III) and the
dominance-join layer (Section IV) must answer every timestamp without
ever invoking :mod:`repro.isomorphism` — completeness (no false
negatives) is guaranteed by Lemma 4.2 alone, and the whole point of the
filter is that it is cheap.  Verification is an *optional* stage that
only the orchestration layer (``repro.core``) may reach for.

``ALLOWED_IMPORTS`` encodes that as a DAG over *units* (top-level
packages under ``repro``, plus the repo-level ``benchmarks`` /
``examples`` / ``tests`` trees).  Rule RP001 checks every ``repro.*``
import against this matrix.

Layer order (lower layers may never import higher ones)::

    graph  <  {nnt, isomorphism, datasets}  <  join  <  core  <  runtime  <  cli
                                  baselines --^                  experiments

To let a new package import another, add it here — the diff is the
review artifact.
"""

from __future__ import annotations

from pathlib import Path

#: Units whose code runs on the per-timestamp filtering path.  These may
#: never import the exact matcher (completeness must come from dominance
#: alone, not from hidden isomorphism calls).
FILTERING_PATH_UNITS = frozenset({"repro.graph", "repro.nnt", "repro.join"})

#: Marker meaning "may import any repro unit".
ANY = "*"

#: unit -> repro units it may import.  Units absent from the matrix are
#: treated as closed (may import no repro unit) so new packages must be
#: added deliberately.
ALLOWED_IMPORTS: dict[str, frozenset[str] | str] = {
    # Foundation: the labeled-graph substrate imports nothing.
    "repro.graph": frozenset(),
    # Observability (spans/instruments/exposition): stdlib-only leaf
    # below the whole stack so any layer may instrument itself.  It is
    # also the only unit (plus repro.core's metrics module) allowed to
    # read the clock for timing — rule RP009.
    "repro.obs": frozenset(),
    # Filtering path (Sections III-IV): graph only, never isomorphism.
    "repro.nnt": frozenset({"repro.graph", "repro.obs"}),
    "repro.join": frozenset({"repro.graph", "repro.nnt", "repro.obs"}),
    # Exact matching: a leaf that only sees the graph substrate.
    "repro.isomorphism": frozenset({"repro.graph"}),
    # Dataset generators: graph substrate only (keeps them portable).
    "repro.datasets": frozenset({"repro.graph"}),
    # Competing filters may use exact matching for their own verify step.
    "repro.baselines": frozenset({"repro.graph", "repro.isomorphism"}),
    # Orchestration: wires filter + optional verification together.
    "repro.core": frozenset(
        {"repro.graph", "repro.nnt", "repro.join", "repro.isomorphism", "repro.obs"}
    ),
    # The multi-process runtime orchestrates monitors; it sits above
    # core but below the CLI, and is the only unit allowed to touch
    # process/thread machinery (rule RP008).
    "repro.runtime": frozenset(
        {"repro.graph", "repro.nnt", "repro.join", "repro.core", "repro.obs"}
    ),
    # The network serving layer fronts a monitor (library or sharded)
    # behind sessions + admission control; it sits beside the CLI, above
    # the runtime, and is the only unit allowed to use asyncio (rule
    # RP017).
    "repro.serve": frozenset(
        {"repro.graph", "repro.core", "repro.runtime", "repro.obs"}
    ),
    # Rendering helpers for trees/graphs.
    "repro.render": frozenset({"repro.graph", "repro.nnt"}),
    # The live terminal dashboard renders stats/summary dicts; it may
    # read obs shapes but never reaches into the monitoring stack (the
    # CLI hands it a poll callable).
    "repro.dashboard": frozenset({"repro.obs"}),
    # The analyzer itself is stdlib-only.
    "repro.analysis": frozenset(),
    # Top layers may import anything.
    "repro.experiments": ANY,
    "repro.cli": ANY,
    "repro.__init__": ANY,
    "repro.__main__": ANY,
    "benchmarks": ANY,
    "examples": ANY,
    "tests": ANY,
}


def resolve_unit(module_name: str) -> str:
    """The layering unit of a dotted module name.

    ``repro.nnt.tree`` -> ``repro.nnt``; ``repro.cli`` -> ``repro.cli``;
    ``benchmarks.bench_micro_join`` -> ``benchmarks``.
    """
    parts = module_name.split(".")
    if parts[0] == "repro":
        if len(parts) == 1:
            return "repro.__init__"
        return ".".join(parts[:2])
    return parts[0]


def module_name_for_path(path: Path) -> str:
    """Best-effort dotted module name for a source file.

    Files under a ``src/repro`` ancestry map to their real package path;
    anything else maps to ``<top-dir>.<stem>`` relative to the repo
    checkout (``benchmarks/bench_x.py`` -> ``benchmarks.bench_x``), and
    a bare file maps to its stem.
    """
    resolved = path.resolve()
    parts = list(resolved.parts)
    for anchor in ("repro", "benchmarks", "examples", "tests"):
        if anchor in parts:
            # Use the *last* occurrence so nested checkouts resolve to
            # the innermost package.
            index = len(parts) - 1 - parts[::-1].index(anchor)
            # "repro" must sit under a "src" directory to be the package.
            if anchor == "repro" and (index == 0 or parts[index - 1] != "src"):
                continue
            dotted = parts[index:]
            dotted[-1] = Path(dotted[-1]).stem
            return ".".join(dotted)
    return resolved.stem


def is_import_allowed(source_unit: str, target_unit: str) -> bool:
    """May ``source_unit`` import from ``target_unit`` per the matrix?"""
    if source_unit == target_unit:
        return True
    allowed = ALLOWED_IMPORTS.get(source_unit, frozenset())
    if allowed == ANY:
        return True
    assert isinstance(allowed, frozenset)
    return target_unit in allowed
