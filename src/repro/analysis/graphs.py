"""Graph structures backing the whole-program semantic model.

Two graphs, both derived once per :class:`~repro.analysis.project.ProjectModel`
build and then queried by every project rule:

* :class:`ImportGraph` — module-level import edges between the analyzed
  modules (``repro.runtime.coordinator -> repro.obs``), with
  ``typing_only`` marking imports that live inside an
  ``if TYPE_CHECKING:`` block (they never execute, so they are excluded
  from cycle detection but still checked against the layering matrix).
  Strongly connected components come from an iterative Tarjan, so cycle
  reporting is deterministic and recursion-limit-proof.

* :class:`CallGraph` — a conservative over-approximation of "who may
  call whom" across the tree.  Edges are *certain* (resolved through a
  name binding: local function, imported symbol, ``self.method``, typed
  attribute) or *dynamic* (``anything.m()`` matched against every known
  method named ``m``).  Reachability queries choose whether the dynamic
  over-approximation participates: soundness rules (RP013) include it,
  coverage rules (RP012) use only certain edges so a span hiding behind
  an unresolvable call does not silently satisfy the check.

Stdlib-only, like the rest of ``repro.analysis``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, as a graph edge.

    ``source`` is the canonical name of the importing module;
    ``target`` the absolute dotted name it imports (which may or may
    not be part of the analyzed tree).  ``lineno``/``column`` anchor
    findings at the statement.
    """

    source: str
    target: str
    lineno: int
    column: int
    typing_only: bool = False


class ImportGraph:
    """Module import edges restricted to (and queryable over) the
    analyzed module set."""

    def __init__(self, nodes: Iterable[str]) -> None:
        self.nodes: set[str] = set(nodes)
        self.edges: list[ImportEdge] = []
        # Runtime (non-typing) adjacency over known nodes only.
        self._adjacency: dict[str, set[str]] = {node: set() for node in self.nodes}
        # Every edge (typing or not, known target or not), keyed by source.
        self._by_source: dict[str, list[ImportEdge]] = {
            node: [] for node in self.nodes
        }

    def add_edge(self, edge: ImportEdge) -> None:
        """Record one import statement."""
        if edge.source not in self.nodes:
            self.nodes.add(edge.source)
            self._adjacency[edge.source] = set()
            self._by_source[edge.source] = []
        self.edges.append(edge)
        self._by_source[edge.source].append(edge)
        if not edge.typing_only and edge.target in self.nodes:
            self._adjacency[edge.source].add(edge.target)

    def successors(self, node: str) -> set[str]:
        """Runtime-imported modules of ``node`` within the model."""
        return set(self._adjacency.get(node, set()))

    def edges_from(self, node: str) -> list[ImportEdge]:
        """Every recorded import edge leaving ``node``."""
        return list(self._by_source.get(node, []))

    def edge_between(self, source: str, target: str) -> ImportEdge | None:
        """The first recorded edge ``source -> target`` (for anchoring
        findings at the actual import statement)."""
        for edge in self._by_source.get(source, []):
            if edge.target == target:
                return edge
        return None

    # ------------------------------------------------------------------
    def strongly_connected_components(self) -> list[list[str]]:
        """Tarjan's SCCs over the runtime adjacency (iterative).

        Components are returned with their members sorted, and the
        component list itself sorted by first member, so reports are
        deterministic.
        """
        index_of: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[list[str]] = []
        counter = 0

        for root in sorted(self.nodes):
            if root in index_of:
                continue
            # Each work item: (node, iterator over successors).
            work: list[tuple[str, Iterator[str]]] = [
                (root, iter(sorted(self._adjacency.get(root, set()))))
            ]
            index_of[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index_of:
                        index_of[succ] = lowlink[succ] = counter
                        counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append(
                            (succ, iter(sorted(self._adjacency.get(succ, set()))))
                        )
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(sorted(component))
        return sorted(components)

    def cycles(self) -> list[list[str]]:
        """Import cycles: SCCs of size > 1, plus self-importing modules."""
        found = [c for c in self.strongly_connected_components() if len(c) > 1]
        for node in sorted(self.nodes):
            if node in self._adjacency.get(node, set()):
                found.append([node])
        return found

    def shortest_path(self, source: str, targets: set[str]) -> list[str] | None:
        """BFS path from ``source`` to any node in ``targets`` over the
        runtime adjacency, or None.  Deterministic (sorted expansion)."""
        if source in targets:
            return [source]
        parent: dict[str, str] = {source: source}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            for succ in sorted(self._adjacency.get(node, set())):
                if succ in parent:
                    continue
                parent[succ] = node
                if succ in targets:
                    path = [succ]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                frontier.append(succ)
        return None


@dataclass
class CallGraph:
    """Conservative "may call" edges between function symbols.

    Function keys are ``"<canonical module>:<qualname>"`` (e.g.
    ``"repro.core.monitor:StreamMonitor.apply"``).
    """

    certain: dict[str, set[str]] = field(default_factory=dict)
    dynamic: dict[str, set[str]] = field(default_factory=dict)

    def add_edge(self, caller: str, callee: str, certain: bool) -> None:
        """Record that ``caller`` may invoke ``callee``."""
        table = self.certain if certain else self.dynamic
        table.setdefault(caller, set()).add(callee)

    def callees(self, caller: str, include_dynamic: bool = True) -> set[str]:
        """Direct callees of one function."""
        result = set(self.certain.get(caller, set()))
        if include_dynamic:
            result |= self.dynamic.get(caller, set())
        return result

    def reachable(
        self, entries: Iterable[str], include_dynamic: bool = True
    ) -> set[str]:
        """Every function reachable from ``entries`` (inclusive)."""
        seen: set[str] = set()
        frontier = deque(entries)
        while frontier:
            node = frontier.popleft()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self.callees(node, include_dynamic) - seen)
        return seen
