"""Rule framework: the per-module analysis context and the registry.

A *rule* inspects one parsed module at a time and yields
:class:`~repro.analysis.findings.Finding` objects.  Rules declare which
*units* (top-level packages, see :mod:`repro.analysis.layering`) they
apply to, so e.g. the unseeded-RNG rule only fires inside
``repro.datasets`` / ``repro.experiments`` while the mutable-default
rule runs everywhere.

Rules register themselves via :func:`register`; the engine instantiates
every registered rule unless the caller selects a subset.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .findings import Finding, Severity


@dataclass
class ModuleContext:
    """Everything a rule may look at for one source file."""

    path: str  # display path (as given on the command line)
    module_name: str  # dotted name, e.g. "repro.nnt.tree"; best effort
    unit: str  # layering unit, e.g. "repro.nnt" or "benchmarks"
    tree: ast.Module
    source: str
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def finding(
        self,
        node: ast.AST,
        rule_id: str,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        """A finding anchored at ``node``'s location in this module."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
            severity=severity,
        )


class Rule:
    """Base class for analysis rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``units`` restricts where the rule applies: ``None`` means every
    analyzed module, otherwise a module runs the rule only when its
    layering unit is in the set.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""  # which paper invariant the rule protects
    units: frozenset[str] | None = None

    def applies_to(self, context: ModuleContext) -> bool:
        """Does this rule run on ``context``'s module?"""
        return self.units is None or context.unit in self.units

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError


REGISTRY: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule_id = rule_class.rule_id
    if not rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule_id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    REGISTRY[rule_id] = rule_class
    return rule_class


def all_rules() -> list[Rule]:
    """One instance of every registered rule, sorted by id."""
    return [REGISTRY[rule_id]() for rule_id in sorted(REGISTRY)]


def make_rules(select: list[str] | None = None) -> list[Rule]:
    """Instantiate the selected rules (all when ``select`` is None)."""
    if select is None:
        return all_rules()
    unknown = [rule_id for rule_id in select if rule_id not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [REGISTRY[rule_id]() for rule_id in sorted(set(select))]
