"""The per-module rule pack (RP001-RP010, RP016-RP017), grounded in the paper.

Each rule protects one invariant the reproduction depends on:

========  ==========================================================
RP001     import layering / no isomorphism in the filtering path
          (Section II problem statement + Lemma 4.2 completeness)
RP002     no unseeded RNG in dataset/experiment code (Section V:
          experiments must be reproducible run-to-run)
RP003     no float ``==``/``!=`` in numeric filtering code
RP004     no mutable default arguments (shared-state corruption of
          long-lived monitor/index objects)
RP005     no set-ordered iteration feeding returned/yielded
          sequences in the filtering path (answer determinism)
RP006     benchmarks must time with ``perf_counter`` (monotonic),
          not wall-clock ``time.time`` (Section V measurements)
RP007     no cross-object ``_private`` attribute access (the
          StreamMonitor/NNTIndex state machines own their caches)
RP008     no process/thread/queue primitives outside ``repro.runtime``
          (the filtering core stays deterministic and single-threaded;
          all parallelism lives behind the runtime facade)
RP009     no direct ``time.*`` timing in the instrumented packages
          (graph/nnt/join/core/runtime) outside ``repro.obs`` and
          ``repro.core.metrics`` — per-stage timing flows through
          spans/instruments so exposition accounts for all of it
RP010     only ``repro.obs.trace`` may mint trace/span ids (no
          ``uuid``/``secrets``/``os.urandom`` id fabrication in the
          instrumented packages) — distributed traces only assemble
          into one tree if every id comes from the single minting
          site and its deterministic pid+counter scheme
RP016     ``multiprocessing.shared_memory`` (and its
          ``resource_tracker``) may only be touched by
          ``repro.runtime.shm`` — segment naming, generation tags
          and crash-orphan cleanup are one protocol with one owner;
          a second allocation site leaks segments past
          ``ShardedMonitor.close()``
RP017     ``asyncio`` is confined to ``repro.serve`` — the serving
          edge owns the one event loop; a second loop in library or
          runtime code would wrap the synchronous coordinator
          request/reply protocol in hidden reentrancy the
          single-writer discipline exists to rule out
========  ==========================================================
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .layering import (
    FILTERING_PATH_UNITS,
    is_import_allowed,
    resolve_unit,
)
from .rules import ModuleContext, Rule, register

# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _resolve_relative(module_name: str, level: int, target: str | None) -> str | None:
    """Absolute dotted name of a relative import, or None if it escapes
    the package tree (``from .. import x`` at the top level)."""
    parts = module_name.split(".")
    # Module "repro.nnt.tree": level 1 is package "repro.nnt", level 2
    # is "repro" — i.e. drop the module stem plus (level - 1) packages.
    if level >= len(parts):
        return None
    base = parts[: len(parts) - level]
    if target:
        base = base + target.split(".")
    return ".".join(base)


def _imported_repro_modules(
    context: ModuleContext, node: ast.Import | ast.ImportFrom
) -> Iterator[str]:
    """Absolute ``repro.*`` module names referenced by an import node."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "repro" or alias.name.startswith("repro."):
                yield alias.name
        return
    if node.level == 0:
        if node.module and (
            node.module == "repro" or node.module.startswith("repro.")
        ):
            yield node.module
        return
    base = _resolve_relative(context.module_name, node.level, node.module)
    if base is None:
        return
    if base == "repro" or base.startswith("repro."):
        if node.module is None:
            # ``from . import x, y`` — each name may be a submodule.
            for alias in node.names:
                yield f"{base}.{alias.name}"
        else:
            yield base


def _is_set_expression(node: ast.expr) -> bool:
    """Conservatively: is this expression certainly a ``set``?

    Covers set literals, set comprehensions, ``set(...)``/``frozenset(...)``
    calls, and the set-algebra methods (``union``/``intersection``/
    ``difference``/``symmetric_difference``) — the shapes whose iteration
    order is salted per process.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if isinstance(func, ast.Attribute) and func.attr in {
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        }:
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # ``a | b`` etc. where either side is certainly a set.
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


def _is_float_constant(node: ast.expr) -> bool:
    """A float literal, possibly behind a unary sign."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


# ----------------------------------------------------------------------
# RP001 — import layering / isomorphism-free filtering path
# ----------------------------------------------------------------------


@register
class LayeringRule(Rule):
    """Imports must follow the declarative layering matrix; in
    particular the filtering path never imports the exact matcher."""

    rule_id = "RP001"
    title = "import layering (isomorphism-free filtering path)"
    rationale = (
        "Lemma 4.2 completeness: the per-timestamp filter must answer "
        "from NPV dominance alone; subgraph isomorphism may only appear "
        "in the optional verification stage (Section II)."
    )
    units = None  # checks everything; the matrix scopes per unit

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        source_unit = context.unit
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for target in _imported_repro_modules(context, node):
                target_unit = resolve_unit(target)
                if is_import_allowed(source_unit, target_unit):
                    continue
                if (
                    source_unit in FILTERING_PATH_UNITS
                    and target_unit == "repro.isomorphism"
                ):
                    message = (
                        f"filtering-path package {source_unit} must never import "
                        f"{target}: completeness comes from NPV dominance "
                        "(Lemma 4.2), not hidden isomorphism tests"
                    )
                else:
                    message = (
                        f"layering violation: {source_unit} may not import "
                        f"{target} (unit {target_unit}); see the matrix in "
                        "repro/analysis/layering.py"
                    )
                yield context.finding(node, self.rule_id, message)


# ----------------------------------------------------------------------
# RP002 — no unseeded RNG in datasets / experiments
# ----------------------------------------------------------------------

_NUMPY_ALIASES = {"numpy", "np"}
_SEEDABLE_FACTORIES = {"Random", "SystemRandom", "default_rng", "RandomState"}


@register
class UnseededRandomRule(Rule):
    """Dataset and experiment code must draw from explicitly seeded
    generator objects, never the process-global RNG."""

    rule_id = "RP002"
    title = "no unseeded randomness in datasets/experiments"
    rationale = (
        "Section V: figures are reproduced from synthetic datasets; an "
        "unseeded draw anywhere in generation silently changes every "
        "downstream number between runs."
    )
    units = frozenset({"repro.datasets", "repro.experiments"})

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            owner = func.value
            # random.<fn>(...) — module-level functions use the hidden
            # global Mersenne Twister.
            if isinstance(owner, ast.Name) and owner.id == "random":
                if func.attr in _SEEDABLE_FACTORIES:
                    if not node.args and not node.keywords:
                        yield context.finding(
                            node,
                            self.rule_id,
                            f"random.{func.attr}() without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
                    continue
                yield context.finding(
                    node,
                    self.rule_id,
                    f"module-level random.{func.attr}() uses the unseeded "
                    "global RNG; draw from an explicitly seeded "
                    "random.Random(seed) instance",
                )
            # numpy.random.<fn>(...) / np.random.<fn>(...)
            elif (
                isinstance(owner, ast.Attribute)
                and owner.attr == "random"
                and isinstance(owner.value, ast.Name)
                and owner.value.id in _NUMPY_ALIASES
            ):
                if func.attr in _SEEDABLE_FACTORIES:
                    if not node.args and not node.keywords:
                        yield context.finding(
                            node,
                            self.rule_id,
                            f"numpy random factory {func.attr}() without a "
                            "seed is nondeterministic; pass an explicit seed",
                        )
                    continue
                yield context.finding(
                    node,
                    self.rule_id,
                    f"numpy.random.{func.attr}() uses the unseeded global "
                    "state; use numpy.random.default_rng(seed)",
                )


# ----------------------------------------------------------------------
# RP003 — no float equality in numeric filtering code
# ----------------------------------------------------------------------


@register
class FloatEqualityRule(Rule):
    """Float literals must not be compared with ``==`` / ``!=``."""

    rule_id = "RP003"
    title = "no float == / != in numeric code"
    rationale = (
        "NPV projections, dominance counters and skyline scores are "
        "integer-exact in the paper; the moment a float sneaks in, "
        "equality tests silently mis-classify near-ties."
    )
    units = frozenset({"repro.nnt", "repro.join", "repro.core"})

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_constant(left) or _is_float_constant(right):
                    yield context.finding(
                        node,
                        self.rule_id,
                        "float equality comparison; use math.isclose() or "
                        "an explicit integer representation",
                    )
                    break


# ----------------------------------------------------------------------
# RP004 — no mutable default arguments
# ----------------------------------------------------------------------

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


@register
class MutableDefaultRule(Rule):
    """Function defaults must not be mutable objects."""

    rule_id = "RP004"
    title = "no mutable default arguments"
    rationale = (
        "Monitors and NNT indexes are long-lived; a mutable default "
        "shared across calls corrupts per-stream state invisibly."
    )
    units = None

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if default is None:
                    continue
                mutable = isinstance(
                    default,
                    (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
                ) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CALLS
                )
                if mutable:
                    name = getattr(node, "name", "<lambda>")
                    yield context.finding(
                        default,
                        self.rule_id,
                        f"mutable default argument in {name}(); default to "
                        "None and construct inside the body",
                    )


# ----------------------------------------------------------------------
# RP005 — no set-ordered results in the filtering path
# ----------------------------------------------------------------------


@register
class SetOrderedResultRule(Rule):
    """Returned/yielded sequences must not inherit set iteration order."""

    rule_id = "RP005"
    title = "no set-ordered sequences in filtering-path results"
    rationale = (
        "Match reporting must be deterministic run-to-run (the paper's "
        "answer is a *set* of pairs; any sequence we derive from it must "
        "be explicitly ordered, not hash-ordered)."
    )
    units = frozenset({"repro.nnt", "repro.join"})

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            value: ast.expr | None
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
            else:
                continue
            if value is None:
                continue
            for finding in self._check_value(context, node, value):
                yield finding

    def _check_value(
        self, context: ModuleContext, node: ast.AST, value: ast.expr
    ) -> Iterator[Finding]:
        # yield from <set-expr>
        if isinstance(node, ast.YieldFrom) and _is_set_expression(value):
            yield context.finding(
                node,
                self.rule_id,
                "yielding directly from a set leaks hash order into the "
                "result stream; yield from sorted(...) instead",
            )
            return
        # return/yield list(<set-expr>) or tuple(<set-expr>)
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in {"list", "tuple"}
            and value.args
            and _is_set_expression(value.args[0])
        ):
            yield context.finding(
                value,
                self.rule_id,
                f"{value.func.id}() over a set freezes nondeterministic hash "
                "order into a result sequence; use sorted(...)",
            )
        # return/yield [x for x in <set-expr>]
        if isinstance(value, ast.ListComp) and value.generators:
            first = value.generators[0]
            if _is_set_expression(first.iter):
                yield context.finding(
                    value,
                    self.rule_id,
                    "list comprehension iterating a set produces "
                    "hash-ordered results; iterate sorted(...)",
                )


# ----------------------------------------------------------------------
# RP006 — benchmarks must use a monotonic timer
# ----------------------------------------------------------------------


@register
class WallClockTimingRule(Rule):
    """Benchmark timing must use ``time.perf_counter``."""

    rule_id = "RP006"
    title = "no wall-clock timing in benchmarks"
    rationale = (
        "Section V reports elapsed filtering cost; time.time() is "
        "NTP-adjustable wall clock with coarse resolution — intervals "
        "must come from time.perf_counter()."
    )
    units = frozenset({"benchmarks", "repro.experiments"})

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                    and func.attr in {"time", "clock"}
                ):
                    yield context.finding(
                        node,
                        self.rule_id,
                        f"time.{func.attr}() is not a monotonic interval "
                        "timer; use time.perf_counter()",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in {"time", "clock"}:
                        yield context.finding(
                            node,
                            self.rule_id,
                            f"importing time.{alias.name} for timing; import "
                            "perf_counter instead",
                        )


# ----------------------------------------------------------------------
# RP007 — no cross-object private attribute access
# ----------------------------------------------------------------------


@register
class PrivateAccessRule(Rule):
    """``obj._attr`` is only legal on ``self`` / ``cls``."""

    rule_id = "RP007"
    title = "no cross-object _private attribute access"
    rationale = (
        "StreamMonitor and NNTIndex encapsulate per-stream caches whose "
        "consistency the incremental procedures (Figures 4-5, 8) depend "
        "on; foreign code must go through the public API."
    )
    units = frozenset(
        {
            "repro.graph",
            "repro.nnt",
            "repro.join",
            "repro.core",
            "repro.isomorphism",
            "repro.datasets",
            "repro.baselines",
            "repro.experiments",
            "repro.cli",
            "repro.render",
            "repro.analysis",
        }
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        # A class "owns" the private names it touches on self/cls; peer
        # instances of the same class may use them (the copy()/__eq__
        # idiom).  Everything else is a foreign reach.
        yield from self._walk(context, context.tree, owned=frozenset())

    def _walk(
        self, context: ModuleContext, node: ast.AST, owned: frozenset[str]
    ) -> Iterator[Finding]:
        if isinstance(node, ast.ClassDef):
            owned = owned | self._self_private_names(node)
        for child in ast.iter_child_nodes(node):
            yield from self._walk(context, child, owned)
        if not isinstance(node, ast.Attribute):
            return
        name = node.attr
        if not name.startswith("_") or name.startswith("__"):
            return
        owner = node.value
        if isinstance(owner, ast.Name) and owner.id in {"self", "cls"}:
            return
        if name in owned:
            return
        yield context.finding(
            node,
            self.rule_id,
            f"access to private attribute .{name} on a foreign object; "
            "add/extend a public accessor instead",
        )

    @staticmethod
    def _self_private_names(class_node: ast.ClassDef) -> frozenset[str]:
        names = set()
        for node in ast.walk(class_node):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in {"self", "cls"}
                and node.attr.startswith("_")
                and not node.attr.startswith("__")
            ):
                names.add(node.attr)
        return frozenset(names)


# ----------------------------------------------------------------------
# RP008 — concurrency primitives only inside repro.runtime
# ----------------------------------------------------------------------

_CONCURRENCY_TOP_MODULES = {
    "multiprocessing",
    "threading",
    "_thread",
    "queue",
    "concurrent",
}


@register
class ConcurrencyContainmentRule(Rule):
    """Process/thread/queue machinery may only appear in the runtime."""

    rule_id = "RP008"
    title = "no concurrency primitives outside repro.runtime"
    rationale = (
        "The incremental maintenance procedures (Figures 4-5, 8) are "
        "state machines whose correctness argument assumes sequential "
        "application; answers must be deterministic run-to-run.  All "
        "parallelism therefore lives behind the repro.runtime facade, "
        "which shards *whole streams* across single-threaded workers."
    )
    # Everywhere the analyzer looks except the runtime itself; the
    # test/example trees may drive the runtime (and thus reach for
    # process tools) without tripping the core invariant.
    units = None

    _EXEMPT_UNITS = frozenset({"repro.runtime", "tests", "examples"})

    def applies_to(self, context: ModuleContext) -> bool:
        return context.unit not in self._EXEMPT_UNITS

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    continue  # relative imports cannot reach the stdlib
                names = [node.module or ""]
            else:
                continue
            for name in names:
                top = name.split(".")[0]
                if top in _CONCURRENCY_TOP_MODULES:
                    yield context.finding(
                        node,
                        self.rule_id,
                        f"import of {name!r} outside repro.runtime: the "
                        "filtering core is deterministic and "
                        "single-threaded; route parallelism through "
                        "repro.runtime.ShardedMonitor",
                    )
                    break


# ----------------------------------------------------------------------
# RP009 — timing goes through repro.obs, not ad-hoc time.* reads
# ----------------------------------------------------------------------

_CLOCK_FUNCTIONS = {
    "time",
    "clock",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "thread_time",
    "thread_time_ns",
}


@register
class AdHocTimingRule(Rule):
    """Instrumented packages must not read clocks directly."""

    rule_id = "RP009"
    title = "no direct time.* timing in instrumented packages"
    rationale = (
        "The observability layer (repro.obs) is the single source of "
        "timing truth for the filtering and runtime packages: every "
        "measured interval must flow through spans/instruments (or the "
        "Stopwatch in repro.core.metrics) so that exposition accounts "
        "for where each timestamp's milliseconds go.  An ad-hoc "
        "perf_counter pair is invisible to `repro stats` and drifts "
        "out of the merged fleet histograms."
    )
    units = frozenset(
        {"repro.graph", "repro.nnt", "repro.join", "repro.core", "repro.runtime"}
    )

    #: Modules that implement the timing primitives themselves.
    _EXEMPT_MODULES = frozenset({"repro.core.metrics"})

    def applies_to(self, context: ModuleContext) -> bool:
        if context.module_name in self._EXEMPT_MODULES:
            return False
        return super().applies_to(context)

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                    and func.attr in _CLOCK_FUNCTIONS
                ):
                    yield context.finding(
                        node,
                        self.rule_id,
                        f"direct time.{func.attr}() in an instrumented "
                        "package; time stages with repro.obs.span() / "
                        "histograms (or repro.core.metrics.Stopwatch) so "
                        "the interval reaches exposition",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _CLOCK_FUNCTIONS:
                        yield context.finding(
                            node,
                            self.rule_id,
                            f"importing time.{alias.name} in an instrumented "
                            "package; route timing through repro.obs (or "
                            "repro.core.metrics.Stopwatch)",
                        )


# ----------------------------------------------------------------------
# RP010 — trace/span ids are minted only by repro.obs.trace
# ----------------------------------------------------------------------

_ID_MINTING_MODULES = {"uuid", "secrets"}
_MINT_FUNCTIONS = {"new_trace_id", "new_span_id"}


@register
class TraceIdMintingRule(Rule):
    """Trace identity has exactly one minting site."""

    rule_id = "RP010"
    title = "trace/span ids are minted only by repro.obs.trace"
    rationale = (
        "A distributed trace is one tree only if every span's ids come "
        "from the single minting site: repro.obs.trace derives ids from "
        "pid + a per-process counter, which keeps them unique across "
        "fork, deterministic for replay, and free of entropy reads on "
        "the filtering path.  A second id source (uuid/secrets/"
        "os.urandom, or a re-implemented new_trace_id) silently "
        "produces spans no exporter can attach to their parents."
    )
    units = frozenset(
        {
            "repro.graph",
            "repro.nnt",
            "repro.join",
            "repro.core",
            "repro.runtime",
            "repro.obs",
        }
    )

    #: The minting site itself.
    _EXEMPT_MODULES = frozenset({"repro.obs.trace"})

    def applies_to(self, context: ModuleContext) -> bool:
        if context.module_name in self._EXEMPT_MODULES:
            return False
        return super().applies_to(context)

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _ID_MINTING_MODULES:
                        yield context.finding(
                            node,
                            self.rule_id,
                            f"import of {root!r} in an instrumented package; "
                            "trace/span ids come from repro.obs.trace "
                            "(new_trace_id/new_span_id), not ad-hoc entropy",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module:
                    root = node.module.split(".")[0]
                    if root in _ID_MINTING_MODULES:
                        yield context.finding(
                            node,
                            self.rule_id,
                            f"import from {root!r} in an instrumented package; "
                            "trace/span ids come from repro.obs.trace",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "os"
                    and func.attr == "urandom"
                ):
                    yield context.finding(
                        node,
                        self.rule_id,
                        "os.urandom() in an instrumented package; trace/span "
                        "ids come from repro.obs.trace, not entropy reads",
                    )
            elif isinstance(node, ast.FunctionDef) and node.name in _MINT_FUNCTIONS:
                yield context.finding(
                    node,
                    self.rule_id,
                    f"re-definition of {node.name}() outside repro.obs.trace; "
                    "there is exactly one trace-id minting site",
                )


# ----------------------------------------------------------------------
# RP016 — shared-memory segments are owned by repro.runtime.shm
# ----------------------------------------------------------------------

_SHM_MODULES = {
    "multiprocessing.shared_memory",
    "multiprocessing.resource_tracker",
}

#: The one module allowed to allocate/attach/unlink segments.
_SHM_HOME = "repro.runtime.shm"


@register
class SharedMemoryContainmentRule(Rule):
    """Shared-memory segment lifecycle has exactly one owner."""

    rule_id = "RP016"
    title = "shared-memory segments are touched only by repro.runtime.shm"
    rationale = (
        "The NPV plane's segments carry generation-tagged headers, "
        "pid-scoped names and a crash-orphan sweep; those three only "
        "compose into 'no leaked segments after close()' if every "
        "allocate/attach/unlink goes through repro.runtime.shm.  A "
        "second call site would mint segments the sweep cannot name "
        "and fight the resource_tracker's registration bookkeeping "
        "(Python 3.11 unlink() already unregisters — double "
        "bookkeeping causes tracker KeyError spam or early reclaim)."
    )
    # RP008 already bans multiprocessing outside repro.runtime; this
    # rule tightens the invariant *inside* the runtime (and everywhere
    # else the analyzer looks).  Tests/examples may attach segments to
    # assert on leaks without tripping it.
    units = None

    _EXEMPT_UNITS = frozenset({"tests", "examples"})

    def applies_to(self, context: ModuleContext) -> bool:
        if context.module_name == _SHM_HOME:
            return False
        return context.unit not in self._EXEMPT_UNITS

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    continue  # relative imports cannot reach the stdlib
                module = node.module or ""
                names = [module] + [
                    f"{module}.{alias.name}" for alias in node.names
                ]
            else:
                continue
            for name in names:
                if name in _SHM_MODULES or any(
                    name.startswith(owned + ".") for owned in _SHM_MODULES
                ):
                    yield context.finding(
                        node,
                        self.rule_id,
                        f"import of {name!r} outside repro.runtime.shm: "
                        "segment allocation, attachment and unlink are "
                        "one protocol with one owner; go through "
                        "repro.runtime.shm (NpvPlane/PlaneReader/"
                        "ShmRing/cleanup_segments)",
                    )
                    break


# ----------------------------------------------------------------------
# RP017 — asyncio is confined to the serving layer
# ----------------------------------------------------------------------

#: The one unit allowed to run an event loop.
_ASYNC_HOME_UNIT = "repro.serve"


@register
class AsyncioContainmentRule(Rule):
    """Event-loop machinery may only appear in ``repro.serve``."""

    rule_id = "RP017"
    title = "asyncio only inside repro.serve"
    rationale = (
        "The serving layer multiplexes sessions on one event loop and "
        "funnels every monitor call through a single writer task; that "
        "discipline is what makes the sharded coordinator's synchronous "
        "request/reply protocol safe without locks.  An asyncio import "
        "anywhere else (filter core, runtime, CLI) would either start a "
        "second loop or re-enter the first, reintroducing exactly the "
        "interleaving hazards RP008 removes — and coroutines in the "
        "filtering path would break the paper's sequential-application "
        "correctness argument (Figures 4-5, 8)."
    )
    # Like RP008/RP016: everywhere the analyzer looks except the owner
    # itself; the test/example trees may drive the server with asyncio
    # clients without tripping the invariant.
    units = None

    _EXEMPT_UNITS = frozenset({"tests", "examples"})

    def applies_to(self, context: ModuleContext) -> bool:
        if context.unit == _ASYNC_HOME_UNIT:
            return False
        return context.unit not in self._EXEMPT_UNITS

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    continue  # relative imports cannot reach the stdlib
                names = [node.module or ""]
            else:
                continue
            for name in names:
                if name.split(".")[0] == "asyncio":
                    yield context.finding(
                        node,
                        self.rule_id,
                        f"import of {name!r} outside repro.serve: the "
                        "serving layer owns the event loop; expose a "
                        "synchronous entry point (like serve.run_server) "
                        "instead of importing asyncio here",
                    )
                    break
