"""The cross-file rule pack (RP011-RP015, RP018), over the semantic model.

These rules protect the *inter-component* protocols the sharded runtime
depends on — invariants no single-file rule can see:

========  ==========================================================
RP011     pickle-boundary safety: values placed on runtime queues or
          into journal records must be built from pickle-safe,
          fork-safe types (no lambdas, generator expressions, locally
          defined functions/classes, or references to module-level
          mutable state — resolved across files)
RP012     span coverage: the public functions on the instrumented hot
          paths (the table in ``docs/observability.md``) must open an
          ``obs.span`` themselves or via a resolvable callee
RP013     no swallowed exceptions on the runtime control path: bare or
          ``except Exception``/``BaseException`` handlers whose body
          does nothing, in any function the call graph reaches from
          the coordinator/worker public surface
RP014     checkpoint round-trip symmetry: every manifest key written
          by checkpoint ``save`` code must be consumed somewhere by
          ``restore``/stats code, and every non-defaulted read must
          have a writer — diffed at the symbol level across files
RP015     whole-graph import layering: module-level import cycles, and
          transitive (multi-hop) reach from a filtering-path module to
          ``repro.isomorphism`` — upgrades RP001's per-file edge check
          to a property of the whole import graph
RP018     metric-catalog membership: every dotted metric-name string
          consumed by the dashboard or the SLO engine must be a key of
          ``repro.obs.catalog.CATALOG`` — a typo'd name silently
          evaluates against no data, so the panel renders empty and
          the SLO reports "ok" forever
========  ==========================================================
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding, Severity
from .layering import FILTERING_PATH_UNITS, resolve_unit
from .project import (
    ModuleInfo,
    ProjectModel,
    ProjectRule,
    _flatten_attribute,
    register_project,
)

# ----------------------------------------------------------------------
# RP011 — pickle-boundary safety for runtime commands / journal records
# ----------------------------------------------------------------------

#: Callees whose arguments cross the coordinator<->worker process
#: boundary (queue puts, journal appends, trace-envelope stamping).
_BOUNDARY_CALLS = frozenset({"put", "put_nowait", "record", "stamp_envelope"})

#: Prefix naming the runtime's command-tuple constants.
_COMMAND_PREFIX = "CMD_"


@register_project
class PickleBoundaryRule(ProjectRule):
    """Runtime queue commands and journal records must be pickle-safe
    and fork-safe."""

    rule_id = "RP011"
    title = "pickle-boundary safety for runtime commands/journal records"
    rationale = (
        "Every command crosses the coordinator->worker process boundary "
        "twice: once over a multiprocessing queue (pickled), and again "
        "on recovery when the journal tail is replayed into a respawned "
        "worker.  A lambda or locally defined callable fails to pickle "
        "at the worst possible moment (mid-recovery); a reference to "
        "module-level mutable state silently forks into divergent "
        "copies, so the replayed worker converges to a *different* "
        "state than the one that died — breaking the no-false-negative "
        "recovery guarantee (Lemma 4.2 applied shard-locally)."
    )

    def check(self, model: ProjectModel) -> Iterator[Finding]:
        for info in model.infos:
            if info.unit != "repro.runtime":
                continue
            yield from self._check_module(model, info)

    def _check_module(
        self, model: ProjectModel, info: ModuleInfo
    ) -> Iterator[Finding]:
        # A CMD_* tuple passed straight into put()/record() is yielded
        # both as a call payload and as a command tuple; dedupe so each
        # offending expression is reported once.
        seen: set[tuple[int, int, str]] = set()
        for symbol in info.symbols.functions.values():
            local_defs = self._local_definitions(symbol.node)
            for node in ast.walk(symbol.node):
                for site in self._boundary_payloads(node):
                    for finding in self._check_payload(
                        model, info, site, local_defs
                    ):
                        key = (finding.line, finding.column, finding.message)
                        if key in seen:
                            continue
                        seen.add(key)
                        yield finding

    @staticmethod
    def _local_definitions(fn: ast.AST) -> set[str]:
        """Names bound to functions/classes defined *inside* ``fn``
        (pickle resolves by qualified name and cannot reach these)."""
        names: set[str] = set()
        for node in ast.walk(fn):
            if node is fn:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
        return names

    @staticmethod
    def _boundary_payloads(node: ast.AST) -> Iterator[ast.expr]:
        """Expressions that cross the process boundary at ``node``."""
        if isinstance(node, ast.Call):
            chain = _flatten_attribute(node.func)
            if chain and chain[-1] in _BOUNDARY_CALLS:
                yield from node.args
        elif isinstance(node, ast.Tuple):
            first = node.elts[0] if node.elts else None
            if isinstance(first, ast.Name) and first.id.startswith(_COMMAND_PREFIX):
                yield node

    def _check_payload(
        self,
        model: ProjectModel,
        info: ModuleInfo,
        payload: ast.expr,
        local_defs: set[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(payload):
            if isinstance(node, ast.Lambda):
                yield info.finding(
                    node,
                    self.rule_id,
                    "lambda in a runtime command/journal payload: lambdas "
                    "cannot be pickled across the worker boundary (and fail "
                    "again at journal replay); use a module-level function",
                )
            elif isinstance(node, ast.GeneratorExp):
                yield info.finding(
                    node,
                    self.rule_id,
                    "generator expression in a runtime command/journal "
                    "payload: generators cannot be pickled; materialize an "
                    "explicit list/tuple first",
                )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in local_defs:
                    yield info.finding(
                        node,
                        self.rule_id,
                        f"locally defined {node.id!r} in a runtime "
                        "command/journal payload: pickle resolves callables "
                        "by qualified name and cannot reach function-local "
                        "definitions; move it to module level",
                    )
                    continue
                resolved = model.resolve_global(info, node.id)
                if resolved is None:
                    continue
                owner, name = resolved
                if name in owner.symbols.mutable_globals:
                    yield info.finding(
                        node,
                        self.rule_id,
                        f"module-level mutable {name!r} (defined in "
                        f"{owner.canonical}) referenced in a runtime "
                        "command/journal payload: each fork gets a divergent "
                        "copy, so journal replay reconstructs different "
                        "state than the worker that died; pass an immutable "
                        "snapshot instead",
                    )


# ----------------------------------------------------------------------
# RP012 — span coverage on the instrumented hot paths
# ----------------------------------------------------------------------

#: The instrumented hot paths: the "What is instrumented" table of
#: ``docs/observability.md``, as (canonical module, qualname) pairs.
#: Every entry must open an ``obs.span`` lexically or via a callee the
#: call graph certainly resolves; waive a deliberate exception with
#: ``# repro: noqa[RP012]`` on the ``def`` line.
HOT_PATHS: tuple[tuple[str, str], ...] = (
    ("repro.core.monitor", "StreamMonitor.apply"),
    ("repro.core.monitor", "StreamMonitor.matches"),
    ("repro.core.monitor", "StreamMonitor.events"),
    ("repro.core.monitor", "StreamMonitor.verified_matches"),
    ("repro.core.verify", "CachingVerifier.verified_matches"),
    ("repro.core.verify", "PrecisionProbe.sample"),
    ("repro.join.base", "JoinEngine.candidates"),
    ("repro.runtime.coordinator", "ShardedMonitor.apply"),
    ("repro.runtime.coordinator", "ShardedMonitor.matches"),
    ("repro.runtime.coordinator", "ShardedMonitor.events"),
    ("repro.runtime.worker", "ShardState.execute"),
)


@register_project
class SpanCoverageRule(ProjectRule):
    """Instrumented hot paths must actually open spans."""

    rule_id = "RP012"
    title = "span coverage on the instrumented hot paths"
    rationale = (
        "docs/observability.md promises that every hot path feeds a "
        "`<name>.seconds` histogram and the coordinator->worker trace "
        "tree; a refactor that drops the `with obs.span(...)` from one "
        "of these functions silently un-instruments it — `repro stats` "
        "and `repro top` keep rendering, with a hole where that stage's "
        "latency used to be.  The call graph accepts spans opened by a "
        "certainly-resolved callee (events() timing via matches() is "
        "fine); anything weaker needs an explicit waiver."
    )

    def check(self, model: ProjectModel) -> Iterator[Finding]:
        for module, qualname in HOT_PATHS:
            info = model.modules.get(module)
            if info is None:
                continue  # partial tree (fixtures, single-package runs)
            symbol = info.symbols.functions.get(qualname)
            if symbol is None:
                yield Finding(
                    path=info.path,
                    line=1,
                    column=1,
                    rule_id=self.rule_id,
                    message=(
                        f"hot-path function {module}.{qualname} is listed in "
                        "the span-coverage table but no longer exists; "
                        "update HOT_PATHS in repro/analysis/project_rules.py "
                        "and the docs/observability.md table together"
                    ),
                    severity=Severity.WARNING,
                )
                continue
            if not model.opens_span(symbol.key):
                yield info.finding(
                    symbol.node,
                    self.rule_id,
                    f"hot-path function {qualname}() opens no obs.span "
                    "(directly or via a resolvable callee); every "
                    "instrumented stage in docs/observability.md must feed "
                    "its `<name>.seconds` histogram and the trace tree",
                    severity=Severity.WARNING,
                )


# ----------------------------------------------------------------------
# RP013 — no swallowed exceptions on the runtime control path
# ----------------------------------------------------------------------

_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:`` or one naming Exception/BaseException."""
    if handler.type is None:
        return True
    candidates: list[ast.expr] = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for expr in candidates:
        chain = _flatten_attribute(expr)
        if chain and chain[-1] in _BROAD_EXCEPTIONS:
            return True
    return False


def _body_does_nothing(handler: ast.ExceptHandler) -> bool:
    """Only ``pass``, ``...`` or ``continue`` — the caller learns nothing."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Continue):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


@register_project
class SwallowedExceptionRule(ProjectRule):
    """Broad do-nothing excepts reachable from the runtime surface."""

    rule_id = "RP013"
    title = "no swallowed exceptions on the runtime control path"
    rationale = (
        "The runtime's failure model is crash-and-recover: a worker "
        "that hits an unexpected error reports it on the outbox and "
        "dies loudly, the coordinator respawns it from checkpoint + "
        "journal.  A broad `except: pass` anywhere the control flow "
        "reaches converts a detectable crash into silent state "
        "divergence — the exact failure the journal/checkpoint "
        "machinery exists to prevent, and the kind soak tests only "
        "catch probabilistically.  Narrow, typed handlers (e.g. "
        "`except (WorkerDied, TimeoutError): pass` on a best-effort "
        "close) stay legal; it is the broad do-nothing handler that is "
        "banned."
    )

    def check(self, model: ProjectModel) -> Iterator[Finding]:
        entries = [
            symbol.key
            for info in model.infos
            if info.unit == "repro.runtime"
            for symbol in info.symbols.functions.values()
            if symbol.is_public
        ]
        if not entries:
            return
        reachable = model.call_graph.reachable(entries, include_dynamic=True)
        for key in sorted(reachable):
            symbol = model.function_by_key(key)
            if symbol is None:
                continue
            info = model.modules.get(symbol.module)
            if info is None or not info.unit.startswith("repro."):
                continue
            for node in ast.walk(symbol.node):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if _is_broad_handler(node) and _body_does_nothing(node):
                    yield info.finding(
                        node,
                        self.rule_id,
                        f"broad do-nothing except in {symbol.qualname}(), "
                        "which is reachable from the runtime control path "
                        f"(entry surface of repro.runtime); crash loudly so "
                        "checkpoint/journal recovery can restore a "
                        "consistent shard, or narrow the handler to the "
                        "specific exceptions being tolerated",
                    )


# ----------------------------------------------------------------------
# RP014 — checkpoint manifest round-trip symmetry
# ----------------------------------------------------------------------

#: The manifest convention: checkpoint writers/readers exchange schema
#: through a dict named ``manifest`` (see repro/core/checkpoint.py).
_MANIFEST_NAME = "manifest"

#: Units that participate in the checkpoint protocol.
_CHECKPOINT_UNITS = frozenset({"repro.core", "repro.runtime"})


@register_project
class CheckpointSymmetryRule(ProjectRule):
    """Manifest fields written by save must be consumed by restore."""

    rule_id = "RP014"
    title = "checkpoint manifest round-trip symmetry"
    rationale = (
        "Recovery correctness is a two-sided contract: save_monitor "
        "records what a restored worker will need, load_monitor/"
        "checkpoint_stats consume it.  A key written but never read is "
        "dead state the snapshot hauls forever (and a likely sign the "
        "restore path forgot it — the vertex-id-kind bug class); a key "
        "read with [] but never written crashes every restore, i.e. "
        "exactly when a worker already died.  The two live in "
        "different functions (and potentially files), so only a "
        "symbol-level whole-program diff can keep them symmetric.  "
        "Deliberately tolerant reads use .get(key, default) and are "
        "exempt (the back-compat idiom for manifests written by older "
        "versions)."
    )

    def check(self, model: ProjectModel) -> Iterator[Finding]:
        writes: dict[str, list[tuple[ModuleInfo, ast.AST]]] = {}
        strict_reads: dict[str, list[tuple[ModuleInfo, ast.AST]]] = {}
        tolerant_reads: set[str] = set()
        for info in model.infos:
            if info.unit not in _CHECKPOINT_UNITS:
                continue
            self._scan_module(info, writes, strict_reads, tolerant_reads)
        if not writes and not strict_reads:
            return
        read_keys = set(strict_reads) | tolerant_reads
        for key in sorted(set(writes) - read_keys):
            for info, node in writes[key]:
                yield info.finding(
                    node,
                    self.rule_id,
                    f"manifest key {key!r} is written by checkpoint save "
                    "code but never read by any restore/stats path; either "
                    "consume it in load_monitor/checkpoint_stats or stop "
                    "writing dead state into every snapshot",
                )
        for key in sorted(set(strict_reads) - set(writes)):
            for info, node in strict_reads[key]:
                yield info.finding(
                    node,
                    self.rule_id,
                    f"manifest key {key!r} is read with [] but no checkpoint "
                    "save path ever writes it — every restore will raise "
                    "KeyError; write it in save_monitor or use "
                    ".get() with an explicit default",
                )

    @staticmethod
    def _scan_module(
        info: ModuleInfo,
        writes: dict[str, list[tuple[ModuleInfo, ast.AST]]],
        strict_reads: dict[str, list[tuple[ModuleInfo, ast.AST]]],
        tolerant_reads: set[str],
    ) -> None:
        def is_manifest(expr: ast.expr) -> bool:
            return isinstance(expr, ast.Name) and expr.id == _MANIFEST_NAME

        def constant_key(expr: ast.expr) -> str | None:
            if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
                return expr.value
            return None

        for node in ast.walk(info.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                value = node.value
                if value is None:
                    continue
                for target in targets:
                    # manifest = {"key": ..., ...}
                    if is_manifest(target) and isinstance(value, ast.Dict):
                        for key_node in value.keys:
                            if key_node is None:
                                continue
                            key = constant_key(key_node)
                            if key is not None:
                                writes.setdefault(key, []).append((info, key_node))
                    # manifest["key"] = ...
                    elif (
                        isinstance(target, ast.Subscript)
                        and is_manifest(target.value)
                    ):
                        key = constant_key(target.slice)
                        if key is not None:
                            writes.setdefault(key, []).append((info, target))
            elif isinstance(node, ast.Subscript) and is_manifest(node.value):
                if isinstance(node.ctx, ast.Load):
                    key = constant_key(node.slice)
                    if key is not None:
                        strict_reads.setdefault(key, []).append((info, node))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and is_manifest(node.func.value)
                and node.args
            ):
                key = constant_key(node.args[0])
                if key is not None:
                    if len(node.args) > 1 or node.keywords:
                        tolerant_reads.add(key)
                    else:
                        # .get(key) with no default: still a read, but it
                        # hides a missing writer behind None — count it as
                        # tolerant (the value is checked by the caller).
                        tolerant_reads.add(key)


# ----------------------------------------------------------------------
# RP015 — whole-graph import layering (cycles + transitive reach)
# ----------------------------------------------------------------------


@register_project
class WholeGraphLayeringRule(ProjectRule):
    """Import cycles and transitive isomorphism reach, on the real graph."""

    rule_id = "RP015"
    title = "whole-graph import layering (cycles, transitive isomorphism)"
    rationale = (
        "RP001 checks each import statement against the layering matrix "
        "one file at a time; two properties only exist at the graph "
        "level.  (1) Cycles: every module involved in an import cycle "
        "is initialized in an order that depends on who gets imported "
        "first — checkpoint restore, journal replay and worker fork all "
        "import modules in different orders, so cyclic modules can see "
        "each other half-initialized exactly during recovery.  "
        "(2) Transitive reach: the matrix can be edited edge-by-edge "
        "into a state where a filtering-path unit reaches "
        "repro.isomorphism through an intermediary, violating the "
        "Lemma 4.2 contract (the filter must answer from NPV dominance "
        "alone) without any single import looking wrong.  TYPE_CHECKING "
        "imports never execute and are exempt from both checks."
    )

    def check(self, model: ProjectModel) -> Iterator[Finding]:
        yield from self._check_cycles(model)
        yield from self._check_transitive_isomorphism(model)

    def _check_cycles(self, model: ProjectModel) -> Iterator[Finding]:
        for cycle in model.import_graph.cycles():
            anchor_module = cycle[0]
            follows = cycle[1] if len(cycle) > 1 else cycle[0]
            edge = model.import_graph.edge_between(anchor_module, follows)
            if edge is None:
                # The SCC guarantees *some* intra-cycle edge from the
                # anchor; find the first one deterministically.
                members = set(cycle)
                for candidate in model.import_graph.edges_from(anchor_module):
                    if candidate.target in members and not candidate.typing_only:
                        edge = candidate
                        break
            info = model.modules.get(anchor_module)
            if info is None or edge is None:
                continue
            path = " -> ".join([*cycle, cycle[0]])
            yield Finding(
                path=info.path,
                line=edge.lineno,
                column=edge.column + 1,
                rule_id=self.rule_id,
                message=(
                    f"import cycle: {path}; cyclic modules observe each "
                    "other half-initialized depending on import order "
                    "(which differs between normal start, checkpoint "
                    "restore and worker fork) — break the cycle or move "
                    "the import under TYPE_CHECKING if it is typing-only"
                ),
            )

    def _check_transitive_isomorphism(
        self, model: ProjectModel
    ) -> Iterator[Finding]:
        # Targets: analyzed isomorphism modules, plus direct edges whose
        # target resolves to the isomorphism unit even when that module
        # is outside the analyzed set.
        iso_nodes = {
            name
            for name in model.import_graph.nodes
            if resolve_unit(name) == "repro.isomorphism"
        }
        for info in model.infos:
            if info.unit not in FILTERING_PATH_UNITS:
                continue
            # One hop beyond the model: an in-model path to a module
            # whose *raw* imports leave for repro.isomorphism.
            path = model.import_graph.shortest_path(info.canonical, iso_nodes)
            if path is None:
                path = self._path_via_raw_edge(model, info)
            if path is None or len(path) < 2:
                # Direct (len == 2 with iso target is still worth RP015
                # only when RP001 cannot see it; a direct edge is RP001's
                # finding — skip to avoid double-reporting.
                continue
            if len(path) == 2 and resolve_unit(path[1]) == "repro.isomorphism":
                continue  # direct import: RP001 reports this one
            edge = model.import_graph.edge_between(path[0], path[1])
            if edge is None:
                continue
            yield Finding(
                path=info.path,
                line=edge.lineno,
                column=edge.column + 1,
                rule_id=self.rule_id,
                message=(
                    f"filtering-path module {info.canonical} transitively "
                    f"reaches repro.isomorphism: {' -> '.join(path)}; "
                    "completeness must come from NPV dominance alone "
                    "(Lemma 4.2) — no import chain from the filter may end "
                    "at the exact matcher"
                ),
            )

    @staticmethod
    def _path_via_raw_edge(
        model: ProjectModel, info: ModuleInfo
    ) -> list[str] | None:
        """A path whose final hop is a raw (outside-the-model) import of
        a ``repro.isomorphism`` module."""
        bridging = {
            name
            for name, candidate in model.modules.items()
            if any(
                resolve_unit(target) == "repro.isomorphism" and not typing_only
                for target, _, _, typing_only in candidate.repro_imports
            )
        }
        if not bridging:
            return None
        path = model.import_graph.shortest_path(info.canonical, bridging)
        if path is None:
            return None
        bridge = model.modules[path[-1]]
        for target, _, _, typing_only in bridge.repro_imports:
            if resolve_unit(target) == "repro.isomorphism" and not typing_only:
                return [*path, target]
        return None


# ----------------------------------------------------------------------
# RP018 — metric names consumed by dashboards/SLOs must be catalogued
# ----------------------------------------------------------------------

import re

#: The single source of metric-name truth (a literal dict; RP018 reads
#: its keys straight out of the AST, never importing the module).
_CATALOG_MODULE = "repro.obs.catalog"

#: Modules that *consume* metric names — where a typo turns into a
#: silently-empty panel or a permanently-"ok" SLO.
_METRIC_CONSUMERS = ("repro.dashboard", "repro.obs.slo")

#: The shape of a dotted metric name: lowercase family, >= 1 dotted
#: segment (``serve.commit.seconds``).  Anchored so label fragments,
#: format strings, and sentence prose never match.
_METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")


def _docstring_constants(tree: ast.AST) -> set[int]:
    """ids of the Constant nodes that are docstrings (module, class,
    function) — prose routinely names metrics and module paths, which
    would otherwise false-positive against the metric-name regex."""
    out: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        body = node.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            out.add(id(body[0].value))
    return out


def _catalog_names(info: ModuleInfo) -> set[str] | None:
    """The literal keys of ``CATALOG`` in the catalog module's AST, or
    None when no literal CATALOG dict is found."""
    for node in ast.walk(info.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        if not any(
            isinstance(target, ast.Name) and target.id == "CATALOG"
            for target in targets
        ):
            continue
        if not isinstance(node.value, ast.Dict):
            continue
        names: set[str] = set()
        for key in node.value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                names.add(key.value)
        return names
    return None


@register_project
class MetricCatalogRule(ProjectRule):
    """Dashboard/SLO metric names must exist in the central catalog."""

    rule_id = "RP018"
    title = "metric names consumed by dashboards/SLOs must be catalogued"
    rationale = (
        "A metric-name typo in a dashboard panel or SLO rule does not "
        "fail — it evaluates against *no data*, so the panel renders "
        "empty and the SLO reports 'ok' forever (the no-data state is "
        "deliberately healthy: an idle subsystem is not burning).  The "
        "mint sites cannot catch this: they happily create whatever "
        "name they are given, and the consumer never meets the minted "
        "series.  The only place the two spellings can be diffed is a "
        "central catalog; repro.obs.catalog.CATALOG is that catalog, "
        "kept literal precisely so this rule can read its keys from "
        "the AST without importing anything."
    )

    def check(self, model: ProjectModel) -> Iterator[Finding]:
        catalog_info = model.modules.get(_CATALOG_MODULE)
        if catalog_info is None:
            return  # partial tree (fixtures, single-package runs)
        names = _catalog_names(catalog_info)
        if names is None:
            yield catalog_info.finding(
                catalog_info.tree,
                self.rule_id,
                "repro.obs.catalog defines no literal CATALOG dict; the "
                "catalog must stay a literal so metric names can be "
                "checked without importing the module",
            )
            return
        for consumer in _METRIC_CONSUMERS:
            info = model.modules.get(consumer)
            if info is None:
                continue
            yield from self._check_consumer(info, names)

    def _check_consumer(
        self, info: ModuleInfo, names: set[str]
    ) -> Iterator[Finding]:
        docstrings = _docstring_constants(info.tree)
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Constant) or not isinstance(node.value, str):
                continue
            if id(node) in docstrings:
                continue
            text = node.value
            if not _METRIC_NAME.match(text):
                continue
            if text in names:
                continue
            yield info.finding(
                node,
                self.rule_id,
                f"metric name {text!r} is not in repro.obs.catalog.CATALOG; "
                "a name nothing mints evaluates against no data — the "
                "panel renders empty and an SLO over it reports 'ok' "
                "forever.  Fix the spelling, or mint the metric and add "
                "it to the catalog",
            )
