"""Repo-native static analysis (``repro lint``).

A small AST-based analyzer that machine-checks the invariants the
reproduction's correctness argument rests on — an isomorphism-free
filtering path, seeded dataset generation, deterministic result
ordering — instead of trusting every future PR to preserve them by
convention.  See ``docs/static_analysis.md`` for the rule catalog.

Public API::

    from repro.analysis import Analyzer, Finding, Severity
    findings = Analyzer().analyze_paths(["src", "benchmarks"])
"""

from .engine import Analyzer, iter_python_files
from .findings import Finding, Severity
from .layering import ALLOWED_IMPORTS, FILTERING_PATH_UNITS, resolve_unit
from .rules import REGISTRY, ModuleContext, Rule, all_rules, make_rules, register

__all__ = [
    "ALLOWED_IMPORTS",
    "Analyzer",
    "FILTERING_PATH_UNITS",
    "Finding",
    "ModuleContext",
    "REGISTRY",
    "Rule",
    "Severity",
    "all_rules",
    "iter_python_files",
    "make_rules",
    "register",
    "resolve_unit",
]
