"""Repo-native static analysis (``repro lint``).

A small AST-based analyzer that machine-checks the invariants the
reproduction's correctness argument rests on — an isomorphism-free
filtering path, seeded dataset generation, deterministic result
ordering — instead of trusting every future PR to preserve them by
convention.  See ``docs/static_analysis.md`` for the rule catalog.

Two rule tiers share one finding/suppression pipeline:

* per-module rules (:class:`Rule`) see one :class:`ModuleContext`;
* project rules (:class:`ProjectRule`, RP011+) query the whole-program
  :class:`ProjectModel` — import graph, symbol tables, call graph —
  and run under ``repro lint --project``.

Public API::

    from repro.analysis import Analyzer, Finding, Severity
    findings = Analyzer().analyze_paths(["src", "benchmarks"])
    findings = Analyzer().analyze_project(["src", "benchmarks"])
"""

from .engine import Analyzer, iter_python_files
from .findings import Finding, Severity
from .layering import ALLOWED_IMPORTS, FILTERING_PATH_UNITS, resolve_unit
from .project import (
    PROJECT_REGISTRY,
    ProjectModel,
    ProjectRule,
    all_project_rules,
    make_project_rules,
    register_project,
)
from .rules import REGISTRY, ModuleContext, Rule, all_rules, make_rules, register

__all__ = [
    "ALLOWED_IMPORTS",
    "Analyzer",
    "FILTERING_PATH_UNITS",
    "Finding",
    "ModuleContext",
    "PROJECT_REGISTRY",
    "ProjectModel",
    "ProjectRule",
    "REGISTRY",
    "Rule",
    "Severity",
    "all_project_rules",
    "all_rules",
    "iter_python_files",
    "make_project_rules",
    "make_rules",
    "register",
    "register_project",
    "resolve_unit",
]
