"""Per-line suppression comments: ``# repro: noqa[RULE-ID]``.

A finding reported at line ``n`` is dropped when line ``n`` carries a
suppression comment naming its rule id (comma-separated ids allowed),
or a bare ``# repro: noqa`` which silences every rule on that line.
Suppressions are deliberately line-scoped — there is no file- or
block-level escape hatch, so every waiver is visible next to the code
it excuses.
"""

from __future__ import annotations

import re

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s-]+)\])?",
)


class SuppressionIndex:
    """Which rule ids are waived on which physical lines of one file."""

    def __init__(self, source: str) -> None:
        # line number (1-based) -> set of rule ids, or None for "all"
        self._by_line: dict[int, set[str] | None] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            ids: set[str] = set()
            bare = False
            for match in _NOQA.finditer(text):
                rules = match.group("rules")
                if rules is None:
                    bare = True  # bare noqa: silence everything
                else:
                    ids |= {
                        part.strip().upper()
                        for part in rules.split(",")
                        if part.strip()
                    }
            if bare:
                self._by_line[lineno] = None
            elif ids:
                self._by_line[lineno] = ids

    def is_suppressed(self, lineno: int, rule_id: str) -> bool:
        """Is ``rule_id`` waived on ``lineno``?"""
        if lineno not in self._by_line:
            return False
        rules = self._by_line[lineno]
        return rules is None or rule_id.upper() in rules
