"""The analyzer: file discovery, parsing, rule dispatch, suppression.

Stdlib-only by design (the layering matrix pins ``repro.analysis`` to
zero internal imports) so it can lint the very tree it lives in without
import-order hazards.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from .findings import Finding, Severity
from .layering import module_name_for_path, resolve_unit
from .rules import ModuleContext, Rule, make_rules
from . import rulepack  # noqa: F401 - importing registers the rule pack

#: Directory names never descended into during discovery.
_SKIP_DIRS = {
    ".git",
    ".hg",
    "__pycache__",
    ".mypy_cache",
    ".pytest_cache",
    ".venv",
    "venv",
    "build",
    "dist",
    "results",
}


def iter_python_files(paths: Sequence[Path | str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    files.add(candidate)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


class Analyzer:
    """Runs a rule set over source files and returns structured findings."""

    def __init__(self, rules: Sequence[Rule] | None = None) -> None:
        self.rules: list[Rule] = list(rules) if rules is not None else make_rules()

    # ------------------------------------------------------------------
    def analyze_source(
        self,
        source: str,
        path: str = "<string>",
        module_name: str | None = None,
        unit: str | None = None,
    ) -> list[Finding]:
        """Analyze one in-memory module.

        ``module_name`` / ``unit`` override the path-derived identity —
        fitness tests use this to run fixture files *as if* they lived
        in a specific package.
        """
        if module_name is None:
            module_name = module_name_for_path(Path(path)) if path != "<string>" else path
        if unit is None:
            unit = resolve_unit(module_name)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return [
                Finding(
                    path=path,
                    line=error.lineno or 1,
                    column=(error.offset or 0) + 1,
                    rule_id="RP000",
                    message=f"syntax error: {error.msg}",
                    severity=Severity.ERROR,
                )
            ]
        context = ModuleContext(
            path=path, module_name=module_name, unit=unit, tree=tree, source=source
        )
        findings: list[Finding] = []
        for rule in self.rules:
            if rule.applies_to(context):
                findings.extend(rule.check(context))
        return self._apply_suppressions(source, findings)

    def analyze_file(
        self,
        path: Path | str,
        module_name: str | None = None,
        unit: str | None = None,
    ) -> list[Finding]:
        """Analyze one file on disk."""
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        return self.analyze_source(
            source, path=str(path), module_name=module_name, unit=unit
        )

    def analyze_paths(self, paths: Sequence[Path | str]) -> list[Finding]:
        """Analyze files and directory trees; sorted, suppression-filtered."""
        findings: list[Finding] = []
        for file in iter_python_files(paths):
            findings.extend(self.analyze_file(file))
        return sorted(findings)

    # ------------------------------------------------------------------
    @staticmethod
    def _apply_suppressions(
        source: str, findings: Iterable[Finding]
    ) -> list[Finding]:
        from .suppressions import SuppressionIndex

        index = SuppressionIndex(source)
        return sorted(
            finding
            for finding in findings
            if not index.is_suppressed(finding.line, finding.rule_id)
        )
