"""The analyzer: file discovery, parsing, rule dispatch, suppression.

Stdlib-only by design (the layering matrix pins ``repro.analysis`` to
zero internal imports) so it can lint the very tree it lives in without
import-order hazards.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from .findings import Finding, Severity
from .layering import module_name_for_path, resolve_unit
from .project import ProjectRule, all_project_rules
from .rules import ModuleContext, Rule, make_rules
from . import rulepack  # noqa: F401 - importing registers the rule pack
from . import project_rules  # noqa: F401 - registers the project rule pack

#: Directory names never descended into during discovery.
_SKIP_DIRS = {
    ".git",
    ".hg",
    "__pycache__",
    ".mypy_cache",
    ".pytest_cache",
    ".venv",
    "venv",
    "build",
    "dist",
    "results",
}


def iter_python_files(paths: Sequence[Path | str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    files.add(candidate)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


class Analyzer:
    """Runs a rule set over source files and returns structured findings."""

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        project_rules: Sequence[ProjectRule] | None = None,
    ) -> None:
        self.rules: list[Rule] = list(rules) if rules is not None else make_rules()
        self.project_rules: list[ProjectRule] = (
            list(project_rules) if project_rules is not None else all_project_rules()
        )

    # ------------------------------------------------------------------
    def analyze_source(
        self,
        source: str,
        path: str = "<string>",
        module_name: str | None = None,
        unit: str | None = None,
    ) -> list[Finding]:
        """Analyze one in-memory module.

        ``module_name`` / ``unit`` override the path-derived identity —
        fitness tests use this to run fixture files *as if* they lived
        in a specific package.
        """
        if module_name is None:
            module_name = module_name_for_path(Path(path)) if path != "<string>" else path
        if unit is None:
            unit = resolve_unit(module_name)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return [
                Finding(
                    path=path,
                    line=error.lineno or 1,
                    column=(error.offset or 0) + 1,
                    rule_id="RP000",
                    message=f"syntax error: {error.msg}",
                    severity=Severity.ERROR,
                )
            ]
        context = ModuleContext(
            path=path, module_name=module_name, unit=unit, tree=tree, source=source
        )
        findings: list[Finding] = []
        for rule in self.rules:
            if rule.applies_to(context):
                findings.extend(rule.check(context))
        return self._apply_suppressions(source, findings)

    def analyze_file(
        self,
        path: Path | str,
        module_name: str | None = None,
        unit: str | None = None,
    ) -> list[Finding]:
        """Analyze one file on disk."""
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        return self.analyze_source(
            source, path=str(path), module_name=module_name, unit=unit
        )

    def analyze_paths(self, paths: Sequence[Path | str]) -> list[Finding]:
        """Analyze files and directory trees; sorted, suppression-filtered.

        One unreadable or non-UTF-8 file degrades to an ``RP000`` ERROR
        finding for that file — the rest of the run continues.
        """
        findings: list[Finding] = []
        for file in iter_python_files(paths):
            try:
                findings.extend(self.analyze_file(file))
            except (OSError, UnicodeDecodeError) as error:
                findings.append(
                    Finding(
                        path=str(file),
                        line=1,
                        column=1,
                        rule_id="RP000",
                        message=f"unreadable file: {error}",
                        severity=Severity.ERROR,
                    )
                )
        return sorted(findings)

    def analyze_project(self, paths: Sequence[Path | str]) -> list[Finding]:
        """Whole-program analysis: per-module rules *plus* the
        cross-file project rules (RP011+), over one shared parse.

        The :class:`~repro.analysis.project.ProjectModel` is built once
        and every rule queries it, so ``--project`` costs one tree walk
        more than the per-file mode, not one per rule.  Suppression
        comments apply to project findings exactly as to per-module
        ones.
        """
        from .project import ProjectModel

        model = ProjectModel.build(paths)
        findings: list[Finding] = list(model.errors)
        for info in model.infos:
            context = info.context()
            per_file: list[Finding] = []
            for rule in self.rules:
                if rule.applies_to(context):
                    per_file.extend(rule.check(context))
            findings.extend(self._apply_suppressions(info.source, per_file))
        cross_file: list[Finding] = []
        for project_rule in self.project_rules:
            cross_file.extend(project_rule.check(model))
        sources = {info.path: info.source for info in model.infos}
        by_path: dict[str, list[Finding]] = {}
        for finding in cross_file:
            by_path.setdefault(finding.path, []).append(finding)
        for path, group in by_path.items():
            source = sources.get(path)
            if source is None:
                findings.extend(group)
            else:
                findings.extend(self._apply_suppressions(source, group))
        return sorted(findings)

    # ------------------------------------------------------------------
    @staticmethod
    def _apply_suppressions(
        source: str, findings: Iterable[Finding]
    ) -> list[Finding]:
        from .suppressions import SuppressionIndex

        index = SuppressionIndex(source)
        return sorted(
            finding
            for finding in findings
            if not index.is_suppressed(finding.line, finding.rule_id)
        )
