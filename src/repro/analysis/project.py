"""The whole-program semantic model (``repro lint --project``).

Per-module rules (:mod:`repro.analysis.rulepack`) see one file at a
time; the invariants that keep the sharded runtime sound span files —
what crosses the coordinator→worker pickle boundary, whether hot paths
carry spans, whether checkpoint ``save``/``restore`` agree on the
manifest schema.  :class:`ProjectModel` parses the analyzed tree *once*
and derives three queryable views:

* a per-module **symbol table** (classes with typed attributes and
  methods, functions, module-level assignments, import bindings);
* the **import graph** (:class:`~repro.analysis.graphs.ImportGraph`)
  over the analyzed modules, with ``TYPE_CHECKING``-only edges marked;
* a conservative **call graph**
  (:class:`~repro.analysis.graphs.CallGraph`) over everything the
  binding structure can resolve — local calls, imported symbols,
  ``self.method()``, annotation-typed attribute calls — plus dynamic
  name-match edges for the rest.

:class:`ProjectRule` is the whole-program counterpart of
:class:`~repro.analysis.rules.Rule`: it inspects the model instead of a
single :class:`~repro.analysis.rules.ModuleContext`.  Project rules
register into :data:`PROJECT_REGISTRY` and run only under
``--project`` (they are meaningless on isolated files).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from .findings import Finding, Severity
from .layering import module_name_for_path, resolve_unit
from .rules import ModuleContext

# ----------------------------------------------------------------------
# symbols
# ----------------------------------------------------------------------

#: Calls whose module-level result is shared mutable state.
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}
)


@dataclass
class FunctionSymbol:
    """One function or method definition."""

    module: str  # canonical module name
    qualname: str  # "f" or "Cls.m"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None

    @property
    def key(self) -> str:
        """The call-graph node id."""
        return f"{self.module}:{self.qualname}"

    @property
    def name(self) -> str:
        """The bare (method) name."""
        return self.node.name

    @property
    def is_public(self) -> bool:
        """Part of the module/class public surface (dunders excluded)."""
        return not self.node.name.startswith("_")


@dataclass
class ClassSymbol:
    """One class definition with its methods and typed attributes."""

    module: str
    name: str
    node: ast.ClassDef
    methods: dict[str, FunctionSymbol] = field(default_factory=dict)
    bases: list[str] = field(default_factory=list)
    #: attribute name -> annotated type name (from class-body and
    #: ``self.x: T`` annotations; dataclass fields land here too).
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleSymbols:
    """Everything name-shaped one module defines or binds."""

    functions: dict[str, FunctionSymbol] = field(default_factory=dict)
    classes: dict[str, ClassSymbol] = field(default_factory=dict)
    #: module-level name -> the assigned value expression.
    global_assigns: dict[str, ast.expr] = field(default_factory=dict)
    #: module-level names bound to mutable containers.
    mutable_globals: set[str] = field(default_factory=set)
    #: local name -> (absolute module, attribute-or-None).  ``import a.b``
    #: binds ``a.b`` -> ("a.b", None); ``from m import f as g`` binds
    #: ``g`` -> ("m", "f").
    import_bindings: dict[str, tuple[str, str | None]] = field(default_factory=dict)


def _annotation_name(annotation: ast.expr | None) -> str | None:
    """The plain type name of an annotation, unwrapping Optional-ish
    shapes conservatively (``X``, ``"X"``, ``X | None``)."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.split("[")[0].strip()
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        left = _annotation_name(annotation.left)
        if left is not None and left != "None":
            return left
        return _annotation_name(annotation.right)
    return None


def _is_mutable_literal(value: ast.expr) -> bool:
    """Is this expression certainly a mutable container?"""
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in _MUTABLE_FACTORIES
    )


# ----------------------------------------------------------------------
# per-module info
# ----------------------------------------------------------------------


def canonical_module_name(module_name: str) -> str:
    """Graph-node identity: ``repro.obs.__init__`` and ``repro.obs`` are
    the same module."""
    if module_name.endswith(".__init__"):
        return module_name[: -len(".__init__")]
    return module_name


@dataclass
class ModuleInfo:
    """One parsed module plus its derived symbol table."""

    path: str
    module_name: str  # as per-file analysis sees it (``pkg.__init__`` kept)
    canonical: str  # graph-node identity (``pkg``)
    unit: str
    tree: ast.Module
    source: str
    symbols: ModuleSymbols = field(default_factory=ModuleSymbols)
    #: every absolute ``repro.*`` target this module imports, with the
    #: import statement's location (superset of the import-graph edges —
    #: targets outside the analyzed tree are kept here).  The final bool
    #: marks *lazy* imports — inside ``if TYPE_CHECKING:`` or a function
    #: body — which do not execute at module init and therefore do not
    #: participate in cycle detection.
    repro_imports: list[tuple[str, int, int, bool]] = field(default_factory=list)

    def context(self) -> ModuleContext:
        """The per-module rule context (so per-file rules reuse this
        parse in project mode)."""
        return ModuleContext(
            path=self.path,
            module_name=self.module_name,
            unit=self.unit,
            tree=self.tree,
            source=self.source,
        )

    def finding(
        self,
        node: ast.AST,
        rule_id: str,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        """A finding anchored at ``node`` in this module."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
            severity=severity,
        )


# ----------------------------------------------------------------------
# model construction
# ----------------------------------------------------------------------


def _in_type_checking_block(
    node: ast.stmt, parents: dict[ast.AST, ast.AST]
) -> bool:
    """Is this statement lexically inside ``if TYPE_CHECKING:``?"""
    current: ast.AST | None = parents.get(node)
    while current is not None:
        if isinstance(current, ast.If):
            test = current.test
            if (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
                isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
            ):
                return True
        current = parents.get(current)
    return False


def _in_function_body(node: ast.stmt, parents: dict[ast.AST, ast.AST]) -> bool:
    """Is this statement lexically inside a function body?  Such imports
    run on call, not at module init — they are the canonical way to
    *break* an import cycle and must not be reported as part of one."""
    current: ast.AST | None = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return True
        current = parents.get(current)
    return False


def _collect_symbols(info: ModuleInfo) -> None:
    """Fill ``info.symbols`` from the module body (one pass)."""
    symbols = info.symbols
    for stmt in info.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols.functions[stmt.name] = FunctionSymbol(
                module=info.canonical, qualname=stmt.name, node=stmt
            )
        elif isinstance(stmt, ast.ClassDef):
            cls = ClassSymbol(
                module=info.canonical,
                name=stmt.name,
                node=stmt,
                bases=[b for b in (_annotation_name(base) for base in stmt.bases) if b],
            )
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    symbol = FunctionSymbol(
                        module=info.canonical,
                        qualname=f"{stmt.name}.{member.name}",
                        node=member,
                        class_name=stmt.name,
                    )
                    cls.methods[member.name] = symbol
                    symbols.functions[symbol.qualname] = symbol
                elif isinstance(member, ast.AnnAssign) and isinstance(
                    member.target, ast.Name
                ):
                    annotated = _annotation_name(member.annotation)
                    if annotated:
                        cls.attr_types[member.target.id] = annotated
            # ``self.x: T = ...`` annotations inside methods count too.
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Attribute)
                    and isinstance(node.target.value, ast.Name)
                    and node.target.value.id == "self"
                ):
                    annotated = _annotation_name(node.annotation)
                    if annotated:
                        cls.attr_types.setdefault(node.target.attr, annotated)
            symbols.classes[stmt.name] = cls
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    symbols.global_assigns[target.id] = stmt.value
                    if _is_mutable_literal(stmt.value):
                        symbols.mutable_globals.add(target.id)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                symbols.global_assigns[stmt.target.id] = stmt.value
                if _is_mutable_literal(stmt.value):
                    symbols.mutable_globals.add(stmt.target.id)


def _resolve_relative(module_name: str, level: int, target: str | None) -> str | None:
    """Absolute dotted name of a relative import (same convention as the
    rulepack: the ``__init__``-suffixed module name makes package-local
    levels resolve correctly)."""
    parts = module_name.split(".")
    if level >= len(parts):
        return None
    base = parts[: len(parts) - level]
    if target:
        base = base + target.split(".")
    return ".".join(base)


def _collect_imports(info: ModuleInfo, parents: dict[ast.AST, ast.AST]) -> None:
    """Record import bindings and absolute ``repro.*`` import targets."""
    symbols = info.symbols
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            lazy = _in_type_checking_block(node, parents) or _in_function_body(
                node, parents
            )
            for alias in node.names:
                bound = alias.asname or alias.name
                symbols.import_bindings[bound] = (alias.name, None)
                if alias.name == "repro" or alias.name.startswith("repro."):
                    info.repro_imports.append(
                        (alias.name, node.lineno, node.col_offset, lazy)
                    )
        elif isinstance(node, ast.ImportFrom):
            lazy = _in_type_checking_block(node, parents) or _in_function_body(
                node, parents
            )
            if node.level == 0:
                base = node.module
            else:
                base = _resolve_relative(info.module_name, node.level, node.module)
            if base is None:
                continue
            if node.module is None:
                # ``from . import x, y`` — each alias is a submodule.
                for alias in node.names:
                    target = f"{base}.{alias.name}"
                    bound = alias.asname or alias.name
                    symbols.import_bindings[bound] = (target, None)
                    if target.startswith("repro."):
                        info.repro_imports.append(
                            (target, node.lineno, node.col_offset, lazy)
                        )
                continue
            for alias in node.names:
                bound = alias.asname or alias.name
                symbols.import_bindings[bound] = (base, alias.name)
            if base == "repro" or base.startswith("repro."):
                info.repro_imports.append(
                    (base, node.lineno, node.col_offset, lazy)
                )


def _flatten_attribute(expr: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-name chains."""
    parts: list[str] = []
    current = expr
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return list(reversed(parts))


class ProjectModel:
    """The parsed tree plus derived import/symbol/call views."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}  # canonical name -> info
        self.infos: list[ModuleInfo] = []  # every parsed module, in path order
        self.errors: list[Finding] = []  # unreadable / unparsable files
        from .graphs import CallGraph, ImportGraph

        self.import_graph: ImportGraph = ImportGraph([])
        self.call_graph: CallGraph = CallGraph()
        #: bare method name -> every FunctionSymbol key using it.
        self._method_index: dict[str, set[str]] = {}
        self._span_cache: dict[str, bool] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, paths: Sequence[Path | str]) -> "ProjectModel":
        """Parse every ``.py`` file under ``paths`` into one model.

        Unreadable or syntactically broken files degrade to ``RP000``
        findings in :attr:`errors`; the model still covers the rest.
        """
        from .engine import iter_python_files

        model = cls()
        entries: list[tuple[str, str, str | None, str | None]] = []
        for file in iter_python_files(paths):
            try:
                source = file.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as error:
                model.errors.append(
                    Finding(
                        path=str(file),
                        line=1,
                        column=1,
                        rule_id="RP000",
                        message=f"unreadable file: {error}",
                        severity=Severity.ERROR,
                    )
                )
                continue
            entries.append((source, str(file), None, None))
        cls._ingest(model, entries)
        return model

    @classmethod
    def from_sources(
        cls, entries: Sequence[tuple[str, str, str | None, str | None]]
    ) -> "ProjectModel":
        """Build from in-memory ``(source, path, module_name, unit)``
        tuples — the fitness tests use this to model fixture files *as
        if* they lived at declared module paths."""
        model = cls()
        cls._ingest(model, entries)
        return model

    def _ingest(
        self, entries: Sequence[tuple[str, str, str | None, str | None]]
    ) -> None:
        for source, path, module_name, unit in entries:
            if module_name is None:
                module_name = module_name_for_path(Path(path))
            if unit is None:
                unit = resolve_unit(module_name)
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as error:
                self.errors.append(
                    Finding(
                        path=path,
                        line=error.lineno or 1,
                        column=(error.offset or 0) + 1,
                        rule_id="RP000",
                        message=f"syntax error: {error.msg}",
                        severity=Severity.ERROR,
                    )
                )
                continue
            info = ModuleInfo(
                path=path,
                module_name=module_name,
                canonical=canonical_module_name(module_name),
                unit=unit,
                tree=tree,
                source=source,
            )
            self.infos.append(info)
            self.modules[info.canonical] = info
        self._derive()

    def _derive(self) -> None:
        """Compute symbols, the import graph, and the call graph."""
        from .graphs import ImportEdge, ImportGraph

        for info in self.infos:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(info.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            _collect_symbols(info)
            _collect_imports(info, parents)

        self.import_graph = ImportGraph(self.modules)
        for info in self.infos:
            for target, lineno, column, typing_only in info.repro_imports:
                self.import_graph.add_edge(
                    ImportEdge(
                        source=info.canonical,
                        target=canonical_module_name(target),
                        lineno=lineno,
                        column=column,
                        typing_only=typing_only,
                    )
                )

        for info in self.infos:
            for symbol in info.symbols.functions.values():
                self._method_index.setdefault(symbol.name, set()).add(symbol.key)
        for info in self.infos:
            for symbol in info.symbols.functions.values():
                self._add_call_edges(info, symbol)

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------
    def _resolve_module(self, dotted: str) -> ModuleInfo | None:
        """The analyzed module for an absolute dotted name, if any."""
        return self.modules.get(canonical_module_name(dotted))

    def _resolve_chain(
        self, info: ModuleInfo, symbol: FunctionSymbol, chain: list[str]
    ) -> tuple[str | None, bool]:
        """Resolve a flattened call chain to a function key.

        Returns ``(key, certain)``; ``(None, _)`` when nothing in the
        model matches.  Dynamic fallback (bare method-name match) is
        signalled by ``certain=False`` with a sentinel ``key`` of None —
        the caller consults the method index instead.
        """
        bindings = info.symbols.import_bindings
        if len(chain) == 1:
            name = chain[0]
            local = info.symbols.functions.get(name)
            if local is not None:
                return local.key, True
            cls = info.symbols.classes.get(name)
            if cls is not None:
                init = cls.methods.get("__init__")
                return (init.key if init is not None else None), True
            if name in bindings:
                module, attr = bindings[name]
                if attr is not None:
                    return self._resolve_imported(module, attr)
            return None, True

        head = chain[0]
        # self.method() / cls.method() inside a class.
        if head in {"self", "cls"} and symbol.class_name is not None:
            owner = info.symbols.classes.get(symbol.class_name)
            if owner is not None:
                if len(chain) == 2:
                    method = owner.methods.get(chain[1])
                    if method is not None:
                        return method.key, True
                    resolved = self._resolve_in_bases(info, owner, chain[1])
                    if resolved is not None:
                        return resolved, True
                elif len(chain) == 3:
                    # self.<attr>.<method>() through a typed attribute.
                    attr_type = owner.attr_types.get(chain[1])
                    if attr_type is not None:
                        resolved = self._resolve_typed_method(
                            info, attr_type, chain[2]
                        )
                        if resolved is not None:
                            return resolved, True
            return None, False

        # Longest dotted-module prefix, translating the head through an
        # import binding when one exists (``from .. import obs`` makes
        # ``obs.trace.reset`` resolve to ``repro.obs.trace:reset``).
        root = head
        binding = bindings.get(head)
        if binding is not None:
            module, attr = binding
            root = module if attr is None else f"{module}.{attr}"
        for split in range(len(chain) - 1, 0, -1):
            dotted = ".".join([root, *chain[1:split]])
            target = self._resolve_module(dotted)
            if target is None:
                continue
            rest = chain[split:]
            if len(rest) == 1:
                fn = target.symbols.functions.get(rest[0])
                if fn is not None:
                    return fn.key, True
                cls = target.symbols.classes.get(rest[0])
                if cls is not None:
                    init = cls.methods.get("__init__")
                    return (init.key if init is not None else None), True
                onward = target.symbols.import_bindings.get(rest[0])
                if onward is not None and onward[1] is not None:
                    return self._resolve_imported(onward[0], onward[1])
            elif len(rest) == 2:
                method = target.symbols.functions.get(f"{rest[0]}.{rest[1]}")
                if method is not None:
                    return method.key, True
            return None, True
        return None, False

    def _resolve_imported(self, module: str, attr: str) -> tuple[str | None, bool]:
        """``from module import attr`` used as a callable."""
        target = self._resolve_module(module)
        if target is None:
            submodule = self._resolve_module(f"{module}.{attr}")
            if submodule is not None:
                return None, True  # a module object, not a callable
            return None, True
        fn = target.symbols.functions.get(attr)
        if fn is not None:
            return fn.key, True
        cls = target.symbols.classes.get(attr)
        if cls is not None:
            init = cls.methods.get("__init__")
            return (init.key if init is not None else None), True
        # Re-exported name: follow one binding hop.
        onward = target.symbols.import_bindings.get(attr)
        if onward is not None and onward[1] is not None and onward[0] != module:
            return self._resolve_imported(onward[0], onward[1])
        return None, True

    def _resolve_typed_method(
        self, info: ModuleInfo, type_name: str, method: str
    ) -> str | None:
        """Resolve ``<TypeName>.<method>`` from ``info``'s namespace."""
        cls = info.symbols.classes.get(type_name)
        if cls is None:
            binding = info.symbols.import_bindings.get(type_name)
            if binding is None or binding[1] is None:
                return None
            target = self._resolve_module(binding[0])
            if target is None:
                return None
            cls = target.symbols.classes.get(binding[1])
        if cls is None:
            return None
        found = cls.methods.get(method)
        if found is not None:
            return found.key
        owner = self.modules.get(cls.module)
        if owner is not None:
            return self._resolve_in_bases(owner, cls, method)
        return None

    def _resolve_in_bases(
        self, info: ModuleInfo, cls: ClassSymbol, method: str, depth: int = 0
    ) -> str | None:
        """Look a method up through resolvable base classes (bounded)."""
        if depth > 4:
            return None
        for base_name in cls.bases:
            base = info.symbols.classes.get(base_name)
            base_info = info
            if base is None:
                binding = info.symbols.import_bindings.get(base_name)
                if binding is None or binding[1] is None:
                    continue
                target = self._resolve_module(binding[0])
                if target is None:
                    continue
                base = target.symbols.classes.get(binding[1])
                base_info = target
            if base is None:
                continue
            found = base.methods.get(method)
            if found is not None:
                return found.key
            inherited = self._resolve_in_bases(base_info, base, method, depth + 1)
            if inherited is not None:
                return inherited
        return None

    def _add_call_edges(self, info: ModuleInfo, symbol: FunctionSymbol) -> None:
        """Record every call lexically inside ``symbol`` (nested defs
        are attributed to the enclosing symbol — an over-approximation
        that keeps reachability sound)."""
        for node in ast.walk(symbol.node):
            if not isinstance(node, ast.Call):
                continue
            chain = _flatten_attribute(node.func)
            if chain is None:
                continue
            key, certain = self._resolve_chain(info, symbol, chain)
            if key is not None:
                self.call_graph.add_edge(symbol.key, key, certain=certain)
                continue
            if certain:
                continue  # resolved to "definitely nothing in the model"
            # Dynamic fallback: any method with this bare name.
            for candidate in self._method_index.get(chain[-1], set()):
                if candidate != symbol.key:
                    self.call_graph.add_edge(symbol.key, candidate, certain=False)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def function(self, module: str, qualname: str) -> FunctionSymbol | None:
        """Look one function symbol up by canonical module + qualname."""
        info = self.modules.get(module)
        if info is None:
            return None
        return info.symbols.functions.get(qualname)

    def function_by_key(self, key: str) -> FunctionSymbol | None:
        """Look a symbol up by its ``module:qualname`` call-graph key."""
        module, _, qualname = key.partition(":")
        return self.function(module, qualname)

    def opens_span(self, key: str) -> bool:
        """Does this function open an ``obs.span`` — lexically, or via a
        *certainly*-resolved callee (transitively)?"""
        for reached in self.call_graph.reachable([key], include_dynamic=False):
            if self._opens_span_lexically(reached):
                return True
        return False

    def _opens_span_lexically(self, key: str) -> bool:
        cached = self._span_cache.get(key)
        if cached is not None:
            return cached
        symbol = self.function_by_key(key)
        result = False
        if symbol is not None:
            for node in ast.walk(symbol.node):
                if not isinstance(node, (ast.With, ast.AsyncWith)):
                    continue
                for item in node.items:
                    expr = item.context_expr
                    if not isinstance(expr, ast.Call):
                        continue
                    chain = _flatten_attribute(expr.func)
                    if chain and chain[-1] == "span":
                        result = True
        self._span_cache[key] = result
        return result

    def resolve_global(
        self, info: ModuleInfo, name: str
    ) -> tuple[ModuleInfo, str] | None:
        """Follow import bindings from ``name`` in ``info`` to the
        module that actually assigns it (bounded hops)."""
        current_info, current_name = info, name
        for _ in range(8):
            symbols = current_info.symbols
            if (
                current_name in symbols.global_assigns
                or current_name in symbols.functions
                or current_name in symbols.classes
            ):
                return current_info, current_name
            binding = symbols.import_bindings.get(current_name)
            if binding is None or binding[1] is None:
                return None
            target = self._resolve_module(binding[0])
            if target is None:
                return None
            current_info, current_name = target, binding[1]
        return None


# ----------------------------------------------------------------------
# project rules
# ----------------------------------------------------------------------


class ProjectRule:
    """Base class for whole-program rules.

    Same contract as :class:`~repro.analysis.rules.Rule`, but
    :meth:`check` sees the :class:`ProjectModel` instead of one module;
    findings still anchor to file/line so per-line ``# repro: noqa``
    suppression applies unchanged.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, model: ProjectModel) -> Iterator[Finding]:
        """Yield findings over the whole model."""
        raise NotImplementedError


PROJECT_REGISTRY: dict[str, type[ProjectRule]] = {}


def register_project(rule_class: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding a project rule to the registry."""
    rule_id = rule_class.rule_id
    if not rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule_id in PROJECT_REGISTRY:
        raise ValueError(f"duplicate project rule id {rule_id!r}")
    PROJECT_REGISTRY[rule_id] = rule_class
    return rule_class


def all_project_rules() -> list[ProjectRule]:
    """One instance of every registered project rule, sorted by id."""
    return [PROJECT_REGISTRY[rule_id]() for rule_id in sorted(PROJECT_REGISTRY)]


def make_project_rules(select: list[str] | None = None) -> list[ProjectRule]:
    """Instantiate the selected project rules (all when None).

    Unlike :func:`~repro.analysis.rules.make_rules`, unknown ids are
    skipped rather than raised — the CLI validates the combined
    selection against both registries before calling either factory.
    """
    if select is None:
        return all_project_rules()
    return [
        PROJECT_REGISTRY[rule_id]()
        for rule_id in sorted(set(select))
        if rule_id in PROJECT_REGISTRY
    ]
