"""Continuous subgraph pattern monitoring — the library's main entry point.

:class:`StreamMonitor` wires the whole paper together: a fixed query set
projected once (Section IV-A), one incrementally maintained
:class:`~repro.nnt.incremental.NNTIndex` per registered stream
(Section III), and a dominance join engine (Section IV-B: ``nl``,
``dsc`` or ``skyline``; plus the vectorized ``matrix`` backend) fed by
coalesced NPV delta batches (``docs/performance.md`` describes the
delivery pipeline and when to pick which engine).  At any timestamp
:meth:`matches` reports the *possible joinable* pairs of Definition 2.8 —
guaranteed to include every truly joinable pair (no false negatives) —
and :meth:`verified_matches` optionally confirms them with exact
subgraph isomorphism.

>>> from repro import StreamMonitor, LabeledGraph, EdgeChange
>>> pattern = LabeledGraph.from_vertices_and_edges(
...     [(0, "A"), (1, "B")], [(0, 1, "x")])
>>> monitor = StreamMonitor({"q0": pattern})
>>> monitor.add_stream("s0")
>>> monitor.apply("s0", EdgeChange.insert(10, 11, "x", "A", "B"))
>>> monitor.matches()
{('s0', 'q0')}
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Iterable, Literal, Mapping

from .. import obs
from ..graph.labeled_graph import LabeledGraph
from ..graph.operations import EdgeChange, GraphChangeOperation
from ..isomorphism.vf2 import SubgraphMatcher
from ..join import QuerySet, StreamListenerAdapter, make_engine
from ..join.base import Pair, QueryId, StreamId
from ..nnt.incremental import NNTIndex
from ..nnt.projection import DimensionScheme, PAPER_SCHEME
from .metrics import Stopwatch


@dataclass(frozen=True)
class MatchEvent:
    """A transition of one (stream, query) pair between two polls."""

    kind: Literal["appeared", "vanished"]
    stream_id: StreamId
    query_id: QueryId


#: Classes that already emitted the ``poll_events`` deprecation warning
#: (the warning fires once per class per process, not once per call).
_POLL_EVENTS_WARNED: set[str] = set()


def warn_poll_events_deprecated(cls_name: str) -> None:
    """Emit the ``poll_events -> events`` :class:`DeprecationWarning`,
    once per class per process.  Shared by every monitor front-end that
    keeps the legacy alias (:class:`StreamMonitor`,
    :class:`repro.runtime.ShardedMonitor`,
    :class:`repro.core.window.SlidingWindowMonitor`)."""
    if cls_name in _POLL_EVENTS_WARNED:
        return
    _POLL_EVENTS_WARNED.add(cls_name)
    warnings.warn(
        f"{cls_name}.poll_events() is deprecated and will be removed; "
        f"call {cls_name}.events() instead (identical semantics)",
        DeprecationWarning,
        stacklevel=3,
    )


def diff_polls(previous: set[Pair], current: set[Pair]) -> list[MatchEvent]:
    """The sorted transition events between two candidate-set polls —
    the one place the appeared/vanished semantics live, shared by
    :meth:`StreamMonitor.events` and the runtime coordinator."""
    events = [MatchEvent("appeared", s, q) for s, q in current - previous]
    events += [MatchEvent("vanished", s, q) for s, q in previous - current]
    return sorted(events, key=lambda e: (e.kind, str(e.stream_id), str(e.query_id)))


class StreamMonitor:
    """Continuous filter over many graph streams for a fixed query set.

    Parameters
    ----------
    queries:
        The fixed pattern set (Definition 2.7) as ``{query_id: graph}``.
    method:
        Join engine: ``"dsc"`` (default, Figure 8), ``"skyline"``
        (Figure 11), ``"nl"`` (the baseline nested loop) or
        ``"matrix"`` (dense vectorized dominance, for large query sets).
    depth_limit:
        NNT depth ``l``; the paper's self-test settles on 3.
    scheme:
        NPV dimension scheme (the paper's label-pair scheme by default).
    coalesce:
        Net out cancelling NPV deltas per edge change / timestamp batch
        before delivering them to the engine (default).  ``False``
        restores one engine call per spliced tree edge — kept for
        differential testing and benchmarking only.
    engine_options:
        Engine-specific constructor keywords forwarded to
        :func:`repro.join.make_engine` — e.g. the matrix engine's
        ``store_factory`` for shared-memory row storage.
    """

    def __init__(
        self,
        queries: Mapping[QueryId, LabeledGraph],
        method: str = "dsc",
        depth_limit: int = 3,
        scheme: DimensionScheme = PAPER_SCHEME,
        coalesce: bool = True,
        engine_options: Mapping[str, Any] | None = None,
    ) -> None:
        self.query_set = QuerySet(queries, depth_limit, scheme)
        self.method = method.lower()
        self.engine_options = dict(engine_options) if engine_options else None
        self.engine = make_engine(self.method, self.query_set, self.engine_options)
        self.depth_limit = depth_limit
        self.scheme = scheme
        self.coalesce = coalesce
        self._indexes: dict[StreamId, NNTIndex] = {}
        self._adapters: dict[StreamId, StreamListenerAdapter] = {}
        self._last_poll: set[Pair] = set()

    # ------------------------------------------------------------------
    # stream lifecycle
    # ------------------------------------------------------------------
    def add_stream(self, stream_id: StreamId, initial: LabeledGraph | None = None) -> None:
        """Start monitoring a stream, optionally from an initial graph."""
        if stream_id in self._indexes:
            raise ValueError(f"stream {stream_id!r} is already monitored")
        index = NNTIndex(initial, self.depth_limit, self.scheme, coalesce=self.coalesce)
        self.engine.register_stream(stream_id, index.npvs)
        adapter = StreamListenerAdapter(self.engine, stream_id)
        index.add_listener(adapter)
        self._indexes[stream_id] = index
        self._adapters[stream_id] = adapter

    def remove_stream(self, stream_id: StreamId) -> None:
        """Stop monitoring a stream and free its state."""
        del self._indexes[stream_id]
        del self._adapters[stream_id]
        self.engine.remove_stream(stream_id)
        self._last_poll = {pair for pair in self._last_poll if pair[0] != stream_id}

    # ------------------------------------------------------------------
    # query lifecycle (the paper leaves dynamic query sets as future
    # work; queries register and deregister *live* — the engine snapshots
    # the streams' current NPVs into the newcomer's dominance state, so
    # there is no rebuild hiccup and no false-negative window)
    # ------------------------------------------------------------------
    def register_query(self, query_id: QueryId, query: LabeledGraph) -> None:
        """Register a pattern against the live streams.

        The engine's :meth:`~repro.join.base.JoinEngine.add_query` seam
        folds the current per-stream NPVs straight into the new query's
        rows/counters; from this call on the query is indistinguishable
        from one registered at construction time.
        """
        if query_id in self.query_set.queries:
            raise ValueError(f"query {query_id!r} is already monitored")
        with Stopwatch() as timer:
            with obs.span("monitor.register_query", query=str(query_id)):
                stream_npvs = {
                    stream_id: index.npvs for stream_id, index in self._indexes.items()
                }
                self.engine.add_query(query_id, query, stream_npvs)
        if obs.enabled():
            obs.histogram(
                "query.register.seconds",
                help="live query registration latency",
            ).observe(timer.total)
            obs.counter(
                "monitor.query_registrations", help="queries registered live"
            ).inc()
            obs.gauge(
                "queries_registered", help="currently monitored queries"
            ).set(len(self.query_set))

    def deregister_query(self, query_id: QueryId) -> None:
        """Drop a pattern, retiring its rows/counters (the engine keeps
        shared dedup-group state alive while other members remain)."""
        if query_id not in self.query_set.queries:
            raise KeyError(f"query {query_id!r} is not monitored")
        with obs.span("monitor.deregister_query", query=str(query_id)):
            self.engine.remove_query(query_id)
        self._last_poll = {pair for pair in self._last_poll if pair[1] != query_id}
        if obs.enabled():
            obs.counter(
                "monitor.query_deregistrations", help="queries deregistered live"
            ).inc()
            obs.gauge(
                "queries_registered", help="currently monitored queries"
            ).set(len(self.query_set))

    def add_query(self, query_id: QueryId, query: LabeledGraph) -> None:
        """Alias of :meth:`register_query` (historical name)."""
        self.register_query(query_id, query)

    def remove_query(self, query_id: QueryId) -> None:
        """Alias of :meth:`deregister_query` (historical name)."""
        self.deregister_query(query_id)

    def query_ids(self) -> list[QueryId]:
        """Ids of the currently monitored patterns."""
        return self.query_set.query_ids()

    def stream_ids(self) -> list[StreamId]:
        """Ids of the currently monitored streams."""
        return list(self._indexes)

    def graph(self, stream_id: StreamId) -> LabeledGraph:
        """The stream's current graph (live — treat as read-only)."""
        return self._indexes[stream_id].graph

    def mutation_version(self, stream_id: StreamId) -> int:
        """Monotone per-stream mutation counter.

        Advances on every edge insertion or deletion applied to the
        stream (all graph mutations are edge changes — vertices appear
        and vanish with their edges), so two calls returning the same
        value bracket a quiescent period: the stream's graph, NNT index
        and NPVs are all unchanged between them.  Verification caches
        key on this.
        """
        stats = self._indexes[stream_id].stats
        return stats["edges_inserted"] + stats["edges_deleted"]

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def apply(
        self, stream_id: StreamId, update: GraphChangeOperation | EdgeChange
    ) -> None:
        """Apply one edge change or a whole timestamp batch to a stream."""
        index = self._indexes[stream_id]
        with obs.span("monitor.apply", stream=stream_id):
            if isinstance(update, EdgeChange):
                index.apply_change(update)
                num_changes = 1
            else:
                index.apply(update)
                num_changes = len(update)
        if obs.enabled():
            obs.counter(
                "monitor.changes",
                help="individual edge changes applied across all streams",
            ).inc(num_changes)

    def apply_many(
        self, updates: Mapping[StreamId, GraphChangeOperation | EdgeChange]
    ) -> None:
        """Apply one timestamp's updates across several streams; each
        value may be a whole batch or a single edge change (the same
        union :meth:`apply` takes)."""
        for stream_id, update in updates.items():
            self.apply(stream_id, update)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def matches(self) -> set[Pair]:
        """All currently *possible joinable* ``(stream_id, query_id)``
        pairs (the approximate answer of Definition 2.8; superset of the
        exact answer)."""
        with obs.span("monitor.matches", engine=self.method):
            result = self.engine.candidates()
        if obs.enabled():
            obs.counter(
                "monitor.polls", help="candidate-set reads answered"
            ).inc()
            obs.quality.record_candidates(result)
        return result

    def is_match(self, stream_id: StreamId, query_id: QueryId) -> bool:
        """Does one pair currently pass the filter?"""
        return self.engine.is_candidate(stream_id, query_id)

    def stats(self) -> dict[str, Any]:
        """Aggregate maintenance statistics across all streams: graph
        sizes, NNT index sizes, and cumulative churn counters."""
        per_stream: dict[StreamId, dict[str, Any]] = {}
        for stream_id, index in self._indexes.items():
            per_stream[stream_id] = {
                "num_vertices": index.graph.num_vertices,
                "num_edges": index.graph.num_edges,
                "tree_nodes": index.num_tree_nodes,
                **index.stats,
            }
        return {
            "num_streams": len(self._indexes),
            "num_queries": len(self.query_set),
            "num_query_groups": self.query_set.num_groups,
            "num_query_dimensions": len(self.query_set.dimension_universe),
            "streams": per_stream,
        }

    def events(self) -> list[MatchEvent]:
        """Transitions since the previous :meth:`events` call: pairs
        that newly pass the filter ("appeared") and pairs that stopped
        passing it ("vanished"), sorted for determinism.

        This is the common event surface of the library and runtime
        paths: :class:`repro.runtime.ShardedMonitor` aggregates its
        workers' candidate sets and diffs them with exactly these
        semantics (via :func:`diff_polls`), so both report transitions
        in the same format.
        """
        with obs.span("monitor.events"):
            current = self.matches()
            events = diff_polls(self._last_poll, current)
            self._last_poll = current
        if obs.enabled() and events:
            obs.counter(
                "monitor.events", help="appeared/vanished transitions reported"
            ).inc(len(events))
        return events

    def poll_events(self) -> list[MatchEvent]:
        """Deprecated alias for :meth:`events` (same semantics; warns
        once per process)."""
        warn_poll_events_deprecated(type(self).__name__)
        return self.events()

    def verified_matches(self, pairs: Iterable[Pair] | None = None) -> set[Pair]:
        """Exact joinable pairs: the filter's candidates confirmed by
        subgraph isomorphism checking (expensive; for when exactness
        matters more than latency)."""
        if pairs is None:
            pairs = self.matches()
        confirmed: set[Pair] = set()
        matchers: dict[StreamId, SubgraphMatcher] = {}
        checked = 0
        with obs.span("monitor.verify"):
            for stream_id, query_id in pairs:
                matcher = matchers.get(stream_id)
                if matcher is None:
                    matcher = SubgraphMatcher(self._indexes[stream_id].graph)
                    matchers[stream_id] = matcher
                checked += 1
                if matcher.is_subgraph(self.query_set.queries[query_id]):
                    confirmed.add((stream_id, query_id))
        if obs.enabled() and checked:
            obs.counter(
                "monitor.verifier_calls",
                help="exact subgraph-isomorphism checks performed",
            ).inc(checked)
        return confirmed

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Free engine-held external resources (shared-memory row
        stores); a no-op for purely in-process engines.  The monitor
        must not be used afterwards."""
        closer = getattr(self.engine, "close", None)
        if closer is not None:
            closer()
