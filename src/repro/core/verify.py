"""Caching exact verification on top of a :class:`StreamMonitor`.

``monitor.verified_matches()`` rebuilds a matcher per stream and
re-verifies every candidate pair on each call.  When verification is
polled frequently but most streams are quiet between polls,
:class:`CachingVerifier` avoids that: it keys each stream's matcher and
each pair's verdict on the stream's *mutation version* (derived from
the NNT index's churn counters), so only pairs whose stream actually
changed — or which just entered the candidate set — are re-verified.

:class:`PrecisionProbe` reuses the same version-keyed matcher trick for
a different question: *how precise is the filter right now?*  It runs
exact VF2 on a rate-sampled, time-budgeted fraction of the emitted
candidate pairs — strictly off the filtering path, the filter's output
is never altered — and feeds the cumulative false-positive tallies to
:func:`repro.obs.quality.record_probe`, which keeps the live
``filter.fp_ratio_estimate`` gauge.  Deadline arithmetic lives in
:class:`repro.obs.quality.ProbeBudget` because rule RP009 keeps clocks
out of this package.
"""

from __future__ import annotations

import random
from typing import Any, Iterable

from .. import obs
from ..isomorphism.vf2 import SubgraphMatcher
from ..join.base import Pair, StreamId
from .monitor import StreamMonitor


class CachingVerifier:
    """Incremental exact verification of a monitor's candidate pairs."""

    def __init__(self, monitor: StreamMonitor) -> None:
        self.monitor = monitor
        self._matchers: dict[StreamId, tuple[int, SubgraphMatcher]] = {}
        self._verdicts: dict[Pair, tuple[int, bool]] = {}
        self.stats: dict[str, int] = {"verifications": 0, "cache_hits": 0}

    def _version(self, stream_id: StreamId) -> int:
        return self.monitor.mutation_version(stream_id)

    def _matcher(self, stream_id: StreamId, version: int) -> SubgraphMatcher:
        cached = self._matchers.get(stream_id)
        if cached is not None and cached[0] == version:
            return cached[1]
        matcher = SubgraphMatcher(self.monitor.graph(stream_id))
        self._matchers[stream_id] = (version, matcher)
        return matcher

    def verified_matches(self) -> set[Pair]:
        """Exact joinable pairs, re-verifying only what changed."""
        confirmed: set[Pair] = set()
        candidates = self.monitor.matches()
        checked = 0
        with obs.span("monitor.verify", cached=True):
            for pair in candidates:
                stream_id, query_id = pair
                version = self._version(stream_id)
                cached = self._verdicts.get(pair)
                if cached is not None and cached[0] == version:
                    self.stats["cache_hits"] += 1
                    verdict = cached[1]
                else:
                    matcher = self._matcher(stream_id, version)
                    verdict = matcher.is_subgraph(
                        self.monitor.query_set.queries[query_id]
                    )
                    self._verdicts[pair] = (version, verdict)
                    self.stats["verifications"] += 1
                    checked += 1
                if verdict:
                    confirmed.add(pair)
        if obs.enabled() and checked:
            obs.counter(
                "monitor.verifier_calls",
                help="exact subgraph-isomorphism checks performed",
            ).inc(checked)
        # Drop verdicts for pairs no longer in the candidate set so the
        # cache cannot grow beyond streams x queries.
        self._verdicts = {
            pair: value for pair, value in self._verdicts.items() if pair in candidates
        }
        return confirmed


class PrecisionProbe:
    """Budgeted sampled estimate of the filter's false-positive ratio.

    The paper measures filter quality offline (Figs 13-14) as::

        FP ratio = candidates failing exact isomorphism / candidates

    This probe estimates the same ratio *while serving*: each
    :meth:`sample` pass walks the candidate pairs in deterministic
    order, verifies an unbiased ``rate`` fraction of them with exact
    VF2 (a seeded :class:`random.Random`, so runs are reproducible),
    and stops consuming CPU once the wall-clock budget of its
    :class:`~repro.obs.quality.ProbeBudget` expires — every pair not
    verified is *skipped and counted*, never guessed.

    Soundness: the probe only ever reads — ``matches()`` output, the
    stream graph, the query set — and publishes to observability
    instruments.  It cannot change what the filter emits, so enabling
    it affects latency only by the budget it is given, and disabling
    it (``rate=0`` or not constructing one) is behaviourally invisible.

    At ``rate=1.0`` with no time budget every emitted candidate is
    verified, and :attr:`fp_ratio_estimate` equals the offline ratio
    exactly; at lower rates it is a Bernoulli-sampled estimate whose
    standard error is ``sqrt(p * (1-p) / checked)``.
    """

    def __init__(
        self,
        monitor: StreamMonitor,
        rate: float = 0.1,
        budget_seconds: float | None = 0.050,
        seed: int = 0,
    ) -> None:
        self.monitor = monitor
        self.budget = obs.quality.ProbeBudget(rate, budget_seconds)
        self._rng = random.Random(seed)
        self._matchers: dict[StreamId, tuple[int, SubgraphMatcher]] = {}
        #: Cumulative tallies across every :meth:`sample` pass.
        self.stats: dict[str, int] = {"checked": 0, "false_positives": 0, "skipped": 0}

    def _matcher(self, stream_id: StreamId, version: int) -> SubgraphMatcher:
        cached = self._matchers.get(stream_id)
        if cached is not None and cached[0] == version:
            return cached[1]
        matcher = SubgraphMatcher(self.monitor.graph(stream_id))
        self._matchers[stream_id] = (version, matcher)
        return matcher

    def sample(self, candidates: Iterable[Pair] | None = None) -> dict[str, Any]:
        """Run one probe pass; returns this pass's tallies.

        ``candidates`` defaults to a fresh ``matches()`` poll.  The
        pass visits pairs in sorted order (determinism), rate-samples
        each one, and honours the time budget between verifications.
        """
        if candidates is None:
            candidates = self.monitor.matches()
        ordered = sorted(candidates, key=str)
        checked = false_positives = skipped = 0
        self.budget.start()
        with obs.span("monitor.probe", pairs=len(ordered)):
            for stream_id, query_id in ordered:
                if self._rng.random() >= self.budget.rate:
                    skipped += 1
                    continue
                if self.budget.expired():
                    skipped += 1
                    continue
                version = self.monitor.mutation_version(stream_id)
                matcher = self._matcher(stream_id, version)
                checked += 1
                if not matcher.is_subgraph(self.monitor.query_set.queries[query_id]):
                    false_positives += 1
        self.stats["checked"] += checked
        self.stats["false_positives"] += false_positives
        self.stats["skipped"] += skipped
        obs.quality.record_probe(checked, false_positives, skipped)
        return {
            "checked": checked,
            "false_positives": false_positives,
            "skipped": skipped,
            "fp_ratio": false_positives / checked if checked else None,
        }

    @property
    def fp_ratio_estimate(self) -> float | None:
        """Cumulative FP-ratio estimate (None before any verification)."""
        if not self.stats["checked"]:
            return None
        return self.stats["false_positives"] / self.stats["checked"]
