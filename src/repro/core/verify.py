"""Caching exact verification on top of a :class:`StreamMonitor`.

``monitor.verified_matches()`` rebuilds a matcher per stream and
re-verifies every candidate pair on each call.  When verification is
polled frequently but most streams are quiet between polls,
:class:`CachingVerifier` avoids that: it keys each stream's matcher and
each pair's verdict on the stream's *mutation version* (derived from
the NNT index's churn counters), so only pairs whose stream actually
changed — or which just entered the candidate set — are re-verified.
"""

from __future__ import annotations

from .. import obs
from ..isomorphism.vf2 import SubgraphMatcher
from ..join.base import Pair, StreamId
from .monitor import StreamMonitor


class CachingVerifier:
    """Incremental exact verification of a monitor's candidate pairs."""

    def __init__(self, monitor: StreamMonitor) -> None:
        self.monitor = monitor
        self._matchers: dict[StreamId, tuple[int, SubgraphMatcher]] = {}
        self._verdicts: dict[Pair, tuple[int, bool]] = {}
        self.stats: dict[str, int] = {"verifications": 0, "cache_hits": 0}

    def _version(self, stream_id: StreamId) -> int:
        return self.monitor.mutation_version(stream_id)

    def _matcher(self, stream_id: StreamId, version: int) -> SubgraphMatcher:
        cached = self._matchers.get(stream_id)
        if cached is not None and cached[0] == version:
            return cached[1]
        matcher = SubgraphMatcher(self.monitor.graph(stream_id))
        self._matchers[stream_id] = (version, matcher)
        return matcher

    def verified_matches(self) -> set[Pair]:
        """Exact joinable pairs, re-verifying only what changed."""
        confirmed: set[Pair] = set()
        candidates = self.monitor.matches()
        checked = 0
        with obs.span("monitor.verify", cached=True):
            for pair in candidates:
                stream_id, query_id = pair
                version = self._version(stream_id)
                cached = self._verdicts.get(pair)
                if cached is not None and cached[0] == version:
                    self.stats["cache_hits"] += 1
                    verdict = cached[1]
                else:
                    matcher = self._matcher(stream_id, version)
                    verdict = matcher.is_subgraph(
                        self.monitor.query_set.queries[query_id]
                    )
                    self._verdicts[pair] = (version, verdict)
                    self.stats["verifications"] += 1
                    checked += 1
                if verdict:
                    confirmed.add(pair)
        if obs.enabled() and checked:
            obs.counter(
                "monitor.verifier_calls",
                help="exact subgraph-isomorphism checks performed",
            ).inc(checked)
        # Drop verdicts for pairs no longer in the candidate set so the
        # cache cannot grow beyond streams x queries.
        self._verdicts = {
            pair: value for pair, value in self._verdicts.items() if pair in candidates
        }
        return confirmed
