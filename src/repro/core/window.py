"""Sliding-window monitoring on top of :class:`StreamMonitor`.

The paper's model feeds explicit edge deletions; many stream sources
(packet captures, proximity scans) instead emit *observations* that
should expire after a time window.  :class:`SlidingWindowMonitor` keeps,
per stream, the expiry time of every live edge: observing an edge
inserts it (or refreshes its expiry), and :meth:`tick` advances the
stream's clock, turning expirations into the underlying monitor's edge
deletions.  Everything else — patterns, engines, soundness — is the
wrapped :class:`StreamMonitor`.
"""

from __future__ import annotations

from typing import Mapping

from ..graph.labeled_graph import Label, LabeledGraph, VertexId, edge_key
from ..graph.operations import EdgeChange, GraphChangeOperation
from ..join.base import Pair, QueryId, StreamId
from ..nnt.projection import DimensionScheme, PAPER_SCHEME
from .monitor import MatchEvent, StreamMonitor, warn_poll_events_deprecated


class SlidingWindowMonitor:
    """Continuous pattern search where every observed edge lives for
    ``window`` ticks (re-observation refreshes the lease).

    >>> from repro import LabeledGraph
    >>> pattern = LabeledGraph.from_vertices_and_edges(
    ...     [(0, "A"), (1, "B")], [(0, 1, "-")])
    >>> monitor = SlidingWindowMonitor({"ab": pattern}, window=2)
    >>> monitor.add_stream("s")
    >>> monitor.observe("s", 1, 2, "-", "A", "B")
    >>> monitor.matches()
    {('s', 'ab')}
    >>> monitor.tick("s"), monitor.tick("s")
    (0, 1)
    >>> monitor.matches()
    set()
    """

    def __init__(
        self,
        queries: Mapping[QueryId, LabeledGraph],
        window: int,
        method: str = "dsc",
        depth_limit: int = 3,
        scheme: DimensionScheme = PAPER_SCHEME,
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1 tick")
        self.window = window
        self._monitor = StreamMonitor(queries, method, depth_limit, scheme)
        self._clock: dict[StreamId, int] = {}
        self._expiry: dict[StreamId, dict[tuple[VertexId, VertexId], int]] = {}

    # ------------------------------------------------------------------
    # stream lifecycle
    # ------------------------------------------------------------------
    def add_stream(self, stream_id: StreamId) -> None:
        """Start monitoring a stream (windowed streams start empty)."""
        self._monitor.add_stream(stream_id)
        self._clock[stream_id] = 0
        self._expiry[stream_id] = {}

    def remove_stream(self, stream_id: StreamId) -> None:
        """Stop monitoring a stream."""
        self._monitor.remove_stream(stream_id)
        del self._clock[stream_id]
        del self._expiry[stream_id]

    def clock(self, stream_id: StreamId) -> int:
        """The stream's current tick."""
        return self._clock[stream_id]

    # ------------------------------------------------------------------
    # observations and time
    # ------------------------------------------------------------------
    def observe(
        self,
        stream_id: StreamId,
        u: VertexId,
        v: VertexId,
        edge_label: Label = "-",
        u_label: Label | None = None,
        v_label: Label | None = None,
    ) -> None:
        """Record one edge observation: inserts the edge if absent, and
        (re)sets its expiry ``window`` ticks from now either way."""
        key = edge_key(u, v)
        leases = self._expiry[stream_id]
        if key not in leases:
            self._monitor.apply(
                stream_id, EdgeChange.insert(u, v, edge_label, u_label, v_label)
            )
        leases[key] = self._clock[stream_id] + self.window

    def retract(self, stream_id: StreamId, u: VertexId, v: VertexId) -> None:
        """Explicitly drop an edge before its lease expires."""
        key = edge_key(u, v)
        if self._expiry[stream_id].pop(key, None) is not None:
            self._monitor.apply(stream_id, EdgeChange.delete(u, v))

    def tick(self, stream_id: StreamId) -> int:
        """Advance the stream's clock by one and expire stale edges;
        returns the number of edges that expired."""
        self._clock[stream_id] += 1
        now = self._clock[stream_id]
        leases = self._expiry[stream_id]
        expired = [key for key, expire_at in leases.items() if expire_at <= now]
        if expired:
            changes: list[EdgeChange] = []
            for key in expired:
                del leases[key]
                u, v = key
                changes.append(EdgeChange.delete(u, v))
            self._monitor.apply(stream_id, GraphChangeOperation(changes))
        return len(expired)

    # ------------------------------------------------------------------
    # results (delegated)
    # ------------------------------------------------------------------
    def graph(self, stream_id: StreamId) -> LabeledGraph:
        """The stream's current windowed graph (live — treat as read-only)."""
        return self._monitor.graph(stream_id)

    def matches(self) -> set[Pair]:
        """Possible joinable pairs over the current windows."""
        return self._monitor.matches()

    def verified_matches(self) -> set[Pair]:
        """Exact joinable pairs over the current windows."""
        return self._monitor.verified_matches()

    def events(self) -> list[MatchEvent]:
        """Match transitions since the last poll (see StreamMonitor)."""
        return self._monitor.events()

    def poll_events(self) -> list[MatchEvent]:
        """Deprecated alias for :meth:`events` (same semantics; warns
        once per process)."""
        warn_poll_events_deprecated(type(self).__name__)
        return self.events()
