"""Public API: the streaming monitor, static database, and metrics."""

from .database import GraphDatabase
from .metrics import (
    Confusion,
    RunningStats,
    ShardCounters,
    Stopwatch,
    candidate_ratio,
    compare_with_truth,
    merge_counter_summaries,
)
from .checkpoint import checkpoint_stats, load_monitor, save_monitor
from .monitor import MatchEvent, StreamMonitor, diff_polls
from .verify import CachingVerifier
from .window import SlidingWindowMonitor

__all__ = [
    "CachingVerifier",
    "Confusion",
    "GraphDatabase",
    "MatchEvent",
    "RunningStats",
    "ShardCounters",
    "SlidingWindowMonitor",
    "Stopwatch",
    "StreamMonitor",
    "candidate_ratio",
    "checkpoint_stats",
    "compare_with_truth",
    "diff_polls",
    "load_monitor",
    "merge_counter_summaries",
    "save_monitor",
]
