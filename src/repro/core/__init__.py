"""Public API: the streaming monitor, static database, and metrics."""

from .database import GraphDatabase
from .metrics import (
    Confusion,
    RunningStats,
    Stopwatch,
    candidate_ratio,
    compare_with_truth,
)
from .checkpoint import load_monitor, save_monitor
from .monitor import MatchEvent, StreamMonitor
from .verify import CachingVerifier
from .window import SlidingWindowMonitor

__all__ = [
    "CachingVerifier",
    "Confusion",
    "GraphDatabase",
    "MatchEvent",
    "RunningStats",
    "SlidingWindowMonitor",
    "Stopwatch",
    "StreamMonitor",
    "candidate_ratio",
    "compare_with_truth",
    "load_monitor",
    "save_monitor",
]
