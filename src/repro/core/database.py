"""Static graph-database search with the NPV filter (the paper's static
experiments, Section V-A).

:class:`GraphDatabase` projects every data graph once and answers
subgraph queries with the filter-and-verify strategy: Lemma 4.2
dominance filtering first, optional exact verification second.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import numpy as np

from ..graph.labeled_graph import LabeledGraph
from ..isomorphism.vf2 import SubgraphMatcher
from ..join.dominance import pair_joinable_bruteforce
from ..nnt.builder import project_graph
from ..nnt.projection import Dimension, DimensionScheme, NPV, PAPER_SCHEME

GraphId = Hashable
DimIndex = dict[Dimension, int]  # projection dimension -> matrix column


class GraphDatabase:
    """A static collection of labeled graphs indexed by their NPVs.

    ``vectorized=True`` additionally materializes each graph's NPVs as a
    dense numpy matrix over that graph's dimension universe; dominance
    checks then run as vectorized column comparisons.  Answers are
    identical (property-tested); it pays off when data graphs are large
    and most vertices must be scanned per check — on the paper's small
    graphs the sparse early-exit path is just as fast.
    """

    def __init__(
        self,
        graphs: Mapping[GraphId, LabeledGraph],
        depth_limit: int = 3,
        scheme: DimensionScheme = PAPER_SCHEME,
        vectorized: bool = False,
    ) -> None:
        self.depth_limit = depth_limit
        self.scheme = scheme
        self.vectorized = vectorized
        self.graphs: dict[GraphId, LabeledGraph] = dict(graphs)
        self._vectors = {
            graph_id: list(project_graph(graph, depth_limit, scheme).values())
            for graph_id, graph in self.graphs.items()
        }
        # graph_id -> (dim -> column index, matrix of shape (n_vertices, n_dims))
        self._matrices: dict[GraphId, tuple[DimIndex, np.ndarray]] = {}
        if vectorized:
            for graph_id, vectors in self._vectors.items():
                self._matrices[graph_id] = _build_matrix(vectors)

    @classmethod
    def from_list(
        cls,
        graphs: list[LabeledGraph],
        depth_limit: int = 3,
        scheme: DimensionScheme = PAPER_SCHEME,
        vectorized: bool = False,
    ) -> "GraphDatabase":
        """Index a list of graphs under integer ids 0..n-1."""
        return cls(dict(enumerate(graphs)), depth_limit, scheme, vectorized)

    def __len__(self) -> int:
        return len(self.graphs)

    def filter_candidates(self, query: LabeledGraph) -> set[GraphId]:
        """Data graphs passing the Lemma 4.2 dominance filter: every query
        vector dominated by some data-graph vector.  Sound: a superset of
        the exact answer set."""
        query_vectors = list(project_graph(query, self.depth_limit, self.scheme).values())
        if self.vectorized:
            return {
                graph_id
                for graph_id in self.graphs
                if _joinable_vectorized(query_vectors, *self._matrices[graph_id])
            }
        return {
            graph_id
            for graph_id, stream_vectors in self._vectors.items()
            if pair_joinable_bruteforce(query_vectors, stream_vectors)
        }

    def _joinable(self, query_vectors: list[NPV], graph_id: GraphId) -> bool:
        if self.vectorized:
            return _joinable_vectorized(query_vectors, *self._matrices[graph_id])
        return pair_joinable_bruteforce(query_vectors, self._vectors[graph_id])

    def search(self, query: LabeledGraph, verify: bool = True) -> set[GraphId]:
        """Subgraph search: the filtered candidates, exact if ``verify``."""
        candidates = self.filter_candidates(query)
        if not verify:
            return candidates
        return {
            graph_id
            for graph_id in candidates
            if SubgraphMatcher(self.graphs[graph_id]).is_subgraph(query)
        }


def _build_matrix(vectors: list[NPV]) -> tuple[DimIndex, np.ndarray]:
    """Dense (vertices x dims) matrix over the union of non-zero dims."""
    dims = sorted({dim for vector in vectors for dim in vector}, key=repr)
    dim_index = {dim: column for column, dim in enumerate(dims)}
    matrix = np.zeros((len(vectors), len(dims)), dtype=np.int64)
    for row, vector in enumerate(vectors):
        for dim, value in vector.items():
            matrix[row, dim_index[dim]] = value
    return dim_index, matrix


def _joinable_vectorized(
    query_vectors: list[NPV], dim_index: DimIndex, matrix: np.ndarray
) -> bool:
    """Vectorized Lemma 4.2 check: every query vector needs one row of
    ``matrix`` that dominates it on its non-zero dimensions."""
    if matrix.shape[0] == 0:
        return not query_vectors or all(not vector for vector in query_vectors)
    for vector in query_vectors:
        if not vector:
            continue  # the all-zero vector is dominated by any vertex
        columns = []
        values = []
        missing = False
        for dim, value in vector.items():
            column = dim_index.get(dim)
            if column is None:
                missing = True  # no data vertex has this dim non-zero
                break
            columns.append(column)
            values.append(value)
        if missing:
            return False
        needed = np.asarray(values, dtype=np.int64)
        if not (matrix[:, columns] >= needed).all(axis=1).any():
            return False
    return True
