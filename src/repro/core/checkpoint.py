"""Checkpoint / restore for :class:`StreamMonitor`.

A checkpoint directory holds a JSON manifest (method, depth, scheme,
id maps) plus one text file for the query set and one per stream graph
(the formats of :mod:`repro.graph.io`).  Restoring rebuilds the monitor
from the snapshots; engine state is re-derived (it is a pure function of
the graphs), so a restored monitor answers exactly like the original and
accepts further updates.

Note on identifiers: the text format serializes vertex ids and labels
as strings, so the manifest records each graph's vertex-id *kind* —
graphs whose ids are all ints restore with int ids (``"int"``), anything
else round-trips as strings (``"str"``, also the fallback for manifests
written before the kind was recorded).  Stream/query ids are stored in
the JSON manifest and must be JSON-representable.

Shard-scoped checkpoints: the multi-process runtime
(:mod:`repro.runtime`) snapshots each worker's private monitor with a
``shard`` annotation (shard id, shard count, journal sequence) so a
respawned worker can prove it restored the right slice; the annotation
is opaque to this module beyond being stored and returned.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from ..graph.io import read_graph_set, write_graph_set
from ..graph.labeled_graph import LabeledGraph
from ..nnt.projection import DimensionScheme
from .monitor import StreamMonitor

MANIFEST = "manifest.json"
QUERIES = "queries.txt"


def _id_kind(graph: LabeledGraph) -> str:
    """``"int"`` when every vertex id is an int (bools excluded), else
    ``"str"`` — the two kinds the text format can round-trip exactly."""
    vertices = list(graph.vertices())
    if vertices and all(
        isinstance(v, int) and not isinstance(v, bool) for v in vertices
    ):
        return "int"
    return "str"


def _coerce_ids(graph: LabeledGraph, kind: str) -> LabeledGraph:
    """Rebuild ``graph`` with vertex ids converted back to ``kind``."""
    if kind != "int":
        return graph
    restored = LabeledGraph()
    for vertex, label in graph.vertex_items():
        restored.add_vertex(int(vertex), label)
    for u, v, label in graph.edges():
        restored.add_edge(int(u), int(v), label)
    return restored


def save_monitor(
    monitor: StreamMonitor,
    directory: str | Path,
    shard: Mapping[str, Any] | None = None,
) -> Path:
    """Write a restorable snapshot of ``monitor`` into ``directory``.

    ``shard`` is an optional JSON-representable annotation (e.g. the
    runtime's ``{"shard_id": k, "num_shards": n}``) stored verbatim in
    the manifest and surfaced again by :func:`checkpoint_stats`.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    query_ids = list(monitor.query_set.queries)
    stream_ids = monitor.stream_ids()
    manifest: dict[str, Any] = {
        "format": 1,
        "method": monitor.method,
        "depth_limit": monitor.depth_limit,
        "include_edge_label": monitor.scheme.include_edge_label,
        "query_ids": query_ids,
        "stream_ids": stream_ids,
        "query_id_kinds": [
            _id_kind(monitor.query_set.queries[query_id]) for query_id in query_ids
        ],
        "stream_id_kinds": [
            _id_kind(monitor.graph(stream_id)) for stream_id in stream_ids
        ],
    }
    if shard is not None:
        manifest["shard"] = dict(shard)
    # Engines with exportable row storage (the shared-memory plane)
    # contribute a per-stream segment manifest — diagnostic provenance:
    # restore re-derives engine state from the graphs, never from the
    # segments, so a checkpoint outlives the segments it names.
    exporter = getattr(monitor.engine, "segment_manifest", None)
    if exporter is not None:
        segments = exporter()
        if segments:
            manifest["segments"] = segments
    (directory / MANIFEST).write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    write_graph_set(
        [monitor.query_set.queries[query_id] for query_id in query_ids],
        directory / QUERIES,
        names=[f"q{i}" for i in range(len(query_ids))],
    )
    for i, stream_id in enumerate(stream_ids):
        write_graph_set([monitor.graph(stream_id)], directory / f"stream_{i}.txt")
    return directory


def load_monitor(
    directory: str | Path,
    engine_options: Mapping[str, Any] | None = None,
) -> StreamMonitor:
    """Rebuild a :class:`StreamMonitor` from :func:`save_monitor` output.

    ``engine_options`` configures the *restored* monitor's engine (e.g.
    a fresh shared-memory ``store_factory``); the checkpoint itself is
    storage-agnostic — segments named in its manifest are provenance,
    not state to reattach.
    """
    directory = Path(directory)
    manifest = json.loads((directory / MANIFEST).read_text(encoding="utf-8"))
    if manifest.get("format") != 1:
        raise ValueError(f"unsupported checkpoint format: {manifest.get('format')!r}")

    query_graphs = [graph for _, graph in read_graph_set(directory / QUERIES)]
    query_ids = manifest["query_ids"]
    if len(query_graphs) != len(query_ids):
        raise ValueError("checkpoint query count does not match its manifest")
    query_kinds = manifest.get("query_id_kinds", ["str"] * len(query_ids))
    monitor = StreamMonitor(
        {
            query_id: _coerce_ids(graph, kind)
            for query_id, graph, kind in zip(query_ids, query_graphs, query_kinds)
        },
        method=manifest["method"],
        depth_limit=manifest["depth_limit"],
        scheme=DimensionScheme(include_edge_label=manifest["include_edge_label"]),
        engine_options=engine_options,
    )
    stream_ids = manifest["stream_ids"]
    stream_kinds = manifest.get("stream_id_kinds", ["str"] * len(stream_ids))
    for i, (stream_id, kind) in enumerate(zip(stream_ids, stream_kinds)):
        (_, graph), = read_graph_set(directory / f"stream_{i}.txt")
        monitor.add_stream(stream_id, _coerce_ids(graph, kind))
    return monitor


def checkpoint_stats(directory: str | Path) -> dict[str, Any]:
    """Summarize a checkpoint directory without rebuilding the monitor:
    manifest essentials, the shard annotation (if any), and on-disk
    footprint — what the runtime's recovery log and ``repro serve``
    report after each snapshot."""
    directory = Path(directory)
    manifest = json.loads((directory / MANIFEST).read_text(encoding="utf-8"))
    files = sorted(p for p in directory.iterdir() if p.is_file())
    return {
        "path": str(directory),
        "format": manifest.get("format"),
        "method": manifest.get("method"),
        "depth_limit": manifest.get("depth_limit"),
        "num_queries": len(manifest.get("query_ids", [])),
        "num_streams": len(manifest.get("stream_ids", [])),
        "shard": manifest.get("shard"),
        "segments": manifest.get("segments"),
        "num_files": len(files),
        "total_bytes": sum(p.stat().st_size for p in files),
    }
