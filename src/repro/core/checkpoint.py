"""Checkpoint / restore for :class:`StreamMonitor`.

A checkpoint directory holds a JSON manifest (method, depth, scheme,
id maps) plus one text file for the query set and one per stream graph
(the formats of :mod:`repro.graph.io`).  Restoring rebuilds the monitor
from the snapshots; engine state is re-derived (it is a pure function of
the graphs), so a restored monitor answers exactly like the original and
accepts further updates.

Note on identifiers: the text format serializes vertex ids and labels
as strings, so non-string vertex ids come back as strings (graph
*structure* round-trips exactly).  Stream/query ids are stored in the
JSON manifest and must be JSON-representable.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..graph.io import read_graph_set, write_graph_set
from ..nnt.projection import DimensionScheme
from .monitor import StreamMonitor

MANIFEST = "manifest.json"
QUERIES = "queries.txt"


def save_monitor(monitor: StreamMonitor, directory: str | Path) -> Path:
    """Write a restorable snapshot of ``monitor`` into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    query_ids = list(monitor.query_set.queries)
    stream_ids = monitor.stream_ids()
    manifest = {
        "format": 1,
        "method": monitor.method,
        "depth_limit": monitor.depth_limit,
        "include_edge_label": monitor.scheme.include_edge_label,
        "query_ids": query_ids,
        "stream_ids": stream_ids,
    }
    (directory / MANIFEST).write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    write_graph_set(
        [monitor.query_set.queries[query_id] for query_id in query_ids],
        directory / QUERIES,
        names=[f"q{i}" for i in range(len(query_ids))],
    )
    for i, stream_id in enumerate(stream_ids):
        write_graph_set([monitor.graph(stream_id)], directory / f"stream_{i}.txt")
    return directory


def load_monitor(directory: str | Path) -> StreamMonitor:
    """Rebuild a :class:`StreamMonitor` from :func:`save_monitor` output."""
    directory = Path(directory)
    manifest = json.loads((directory / MANIFEST).read_text(encoding="utf-8"))
    if manifest.get("format") != 1:
        raise ValueError(f"unsupported checkpoint format: {manifest.get('format')!r}")

    query_graphs = [graph for _, graph in read_graph_set(directory / QUERIES)]
    query_ids = manifest["query_ids"]
    if len(query_graphs) != len(query_ids):
        raise ValueError("checkpoint query count does not match its manifest")
    monitor = StreamMonitor(
        dict(zip(query_ids, query_graphs)),
        method=manifest["method"],
        depth_limit=manifest["depth_limit"],
        scheme=DimensionScheme(include_edge_label=manifest["include_edge_label"]),
    )
    for i, stream_id in enumerate(manifest["stream_ids"]):
        (_, graph), = read_graph_set(directory / f"stream_{i}.txt")
        monitor.add_stream(stream_id, graph)
    return monitor
