"""Evaluation metrics and timing helpers used by every experiment.

The paper's two headline measures:

* **candidate ratio** — reported possible-joinable pairs over the total
  number of (stream, query) pairs ("candidate size" in Figures 2/13/14);
* **average cost per timestamp** — wall-clock milliseconds of filter
  maintenance + answering, averaged over timestamps (Figures 2/15/16/17).

Plus the soundness bookkeeping (false positives / false negatives against
an exact oracle) that the paper's guarantees are stated in, and the
per-worker throughput/latency counters the sharded runtime
(:mod:`repro.runtime`) aggregates at poll time.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Hashable, Iterable


def candidate_ratio(num_candidates: int, num_streams: int, num_queries: int) -> float:
    """Candidates over total pairs, in [0, 1]."""
    total = num_streams * num_queries
    if total == 0:
        return 0.0
    return num_candidates / total


@dataclass(frozen=True)
class Confusion:
    """Filter output vs exact truth over the same pair universe."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        reported = self.true_positives + self.false_positives
        return self.true_positives / reported if reported else 1.0

    @property
    def sound(self) -> bool:
        """The paper's hard requirement: not a single false negative."""
        return self.false_negatives == 0


def compare_with_truth(
    reported: Iterable[Hashable], truth: Iterable[Hashable]
) -> Confusion:
    """Confusion counts of a reported candidate set against the truth."""
    reported_set = set(reported)
    truth_set = set(truth)
    return Confusion(
        true_positives=len(reported_set & truth_set),
        false_positives=len(reported_set - truth_set),
        false_negatives=len(truth_set - reported_set),
    )


@dataclass
class RunningStats:
    """Streaming mean/min/max/stdev accumulator (Welford)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def summary(self) -> dict[str, float]:
        """Plain-dict snapshot (count/mean/stdev/min/max)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }


@dataclass
class ShardCounters:
    """Throughput/latency accounting for one runtime worker.

    Each worker owns one instance and folds in every change batch and
    poll it services; the coordinator collects the plain-dict summaries
    and merges them into a fleet view with :func:`merge_counter_summaries`.
    """

    batches: int = 0  # change batches applied (one per apply command)
    changes: int = 0  # individual edge changes inside those batches
    polls: int = 0  # candidate-set reads served
    checkpoints: int = 0  # shard snapshots written
    busy_seconds: float = 0.0  # wall time spent inside commands
    batch_latency: RunningStats = field(default_factory=RunningStats)

    def record_batch(self, num_changes: int, seconds: float) -> None:
        """Fold one applied change batch into the counters."""
        self.batches += 1
        self.changes += num_changes
        self.busy_seconds += seconds
        self.batch_latency.add(seconds)

    def record_poll(self, seconds: float) -> None:
        """Fold one serviced poll into the counters."""
        self.polls += 1
        self.busy_seconds += seconds

    def record_checkpoint(self, seconds: float) -> None:
        """Fold one shard snapshot into the counters."""
        self.checkpoints += 1
        self.busy_seconds += seconds

    @property
    def changes_per_second(self) -> float:
        """Edge changes applied per busy second (0 before any work)."""
        if self.busy_seconds <= 0.0:
            return 0.0
        return self.changes / self.busy_seconds

    def summary(self) -> dict[str, float]:
        """Plain-dict snapshot (picklable, JSON-representable)."""
        return {
            "batches": self.batches,
            "changes": self.changes,
            "polls": self.polls,
            "checkpoints": self.checkpoints,
            "busy_seconds": self.busy_seconds,
            "changes_per_second": self.changes_per_second,
            "batch_latency": self.batch_latency.summary(),
        }


def merge_counter_summaries(summaries: Iterable[dict]) -> dict[str, float]:
    """Fleet-wide aggregate of per-worker :meth:`ShardCounters.summary`
    dicts: counters sum; the latency mean is batch-weighted; min/max are
    taken across workers."""
    merged: dict[str, float] = {
        "batches": 0,
        "changes": 0,
        "polls": 0,
        "checkpoints": 0,
        "busy_seconds": 0.0,
    }
    latency_count = 0
    latency_weighted = 0.0
    latency_min = math.inf
    latency_max = -math.inf
    for summary in summaries:
        for key in ("batches", "changes", "polls", "checkpoints", "busy_seconds"):
            merged[key] += summary.get(key, 0)
        latency = summary.get("batch_latency", {})
        count = int(latency.get("count", 0))
        if count:
            latency_count += count
            latency_weighted += latency.get("mean", 0.0) * count
            latency_min = min(latency_min, latency.get("min", math.inf))
            latency_max = max(latency_max, latency.get("max", -math.inf))
    merged["changes_per_second"] = (
        merged["changes"] / merged["busy_seconds"] if merged["busy_seconds"] > 0 else 0.0
    )
    merged["batch_latency"] = {
        "count": latency_count,
        "mean": latency_weighted / latency_count if latency_count else 0.0,
        "min": latency_min if latency_count else 0.0,
        "max": latency_max if latency_count else 0.0,
    }
    return merged


@dataclass
class Stopwatch:
    """Accumulating wall-clock timer; times are in seconds."""

    total: float = 0.0
    laps: RunningStats = field(default_factory=RunningStats)
    _started: float | None = None

    def start(self) -> None:
        """Begin a lap; error if one is already running."""
        if self._started is not None:
            raise RuntimeError("stopwatch is already running")
        self._started = time.perf_counter()

    def stop(self) -> float:
        """End the lap, accumulate it, and return its duration."""
        if self._started is None:
            raise RuntimeError("stopwatch is not running")
        lap = time.perf_counter() - self._started
        self._started = None
        self.total += lap
        self.laps.add(lap)
        return lap

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def mean_ms(self) -> float:
        """Average lap in milliseconds (the paper's per-timestamp unit)."""
        return self.laps.mean * 1000.0
