"""``repro top`` — a live plain-terminal dashboard over ``stats()``.

Pure stdlib and pure functions: :func:`render_dashboard` turns one
stats dict (the shape returned by ``StreamMonitor.stats()`` +
observability summary, or ``ShardedMonitor.stats()`` with its
``merged_obs``) into one fixed-width text frame, and :func:`run_top`
repaints frames from a caller-supplied poll callable using ANSI
clear-screen — no curses dependency, works in any VT100-ish terminal
and degrades to plain appended frames when piped.

The dashboard never touches the monitoring stack itself (layering: this
unit may import only :mod:`repro.obs`): the CLI decides whether the
poll callable reads a local monitor, replays a workload, or parses
``repro serve`` JSON lines.

Latency percentiles are **windowed** whenever a
:class:`~repro.obs.timeline.Timeline` is supplied (``run_top`` keeps
one internally): quantiles come from histogram-bucket *deltas* over the
trailing window, so one early spike no longer skews the numbers
forever; without a timeline (single ``--dump`` frames) they fall back
to the lifetime-cumulative histogram, marked ``lifetime``.  The
timeline also powers the overload panel — per-sample admitted /
rejected / shed rate sparklines plus the circuit-breaker state strip.

Shown per frame: apply-latency percentiles (from the
``monitor.apply.seconds`` histogram), poll/event counters, worker inbox
depths and backpressure drops/spills (sharded runs), the shared-memory
plane footprint and rescale status (``shm=True`` runs: segment count and
bytes, remap/ring-overflow counters, queue bytes pickled, last-rescale
duration and whether one is in flight), live query churn (registered
count, registration/retirement totals, dedup group count, and the
``query.register.seconds`` latency percentiles), the serving edge when the stats
came from a ``repro serve`` server (active sessions, admission queue
depth, breaker state, admit/reject/shed/dead-letter counts and commit
latency percentiles), per-dimension pruning power
(the ``join.<engine>.pruned{dim=...}`` counters of
:mod:`repro.obs.quality`), and the live false-positive-ratio estimate
gauge when the precision probe is running.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Mapping, TextIO

from .obs.timeline import Timeline

ANSI_CLEAR = "\x1b[2J\x1b[H"

#: Quantiles shown for latency histograms.
PERCENTILES = (0.50, 0.90, 0.99)

#: Glyph ramp for rate sparklines, lowest to highest.
_SPARK_LEVELS = " .:-=+*#%@"


def histogram_quantile(entry: Mapping[str, Any], q: float) -> float | None:
    """Approximate the q-quantile of a histogram summary entry.

    Standard Prometheus-style estimation: find the bucket where the
    cumulative count crosses ``q * count`` and interpolate linearly
    inside it (the overflow bucket reports its lower bound — there is
    no upper edge to interpolate towards).  Returns None for an empty
    histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = entry.get("count", 0)
    if not total:
        return None
    bounds = list(entry["bounds"])
    counts = list(entry["counts"])
    target = q * total
    cumulative = 0.0
    for i, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= target:
            if i >= len(bounds):  # overflow bucket: no upper edge
                return bounds[-1]
            lower = bounds[i - 1] if i else 0.0
            upper = bounds[i]
            if not count:
                return upper
            return lower + (upper - lower) * (target - previous) / count
    return bounds[-1]


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def _obs_summary(stats: Mapping[str, Any]) -> Mapping[str, Any]:
    """The observability summary inside a stats dict, whichever path
    produced it (sharded ``merged_obs``, worker ``obs``, or a bare
    summary passed directly)."""
    for key in ("merged_obs", "obs"):
        nested = stats.get(key)
        if isinstance(nested, Mapping):
            return nested
    # A registry summary itself (every value has a "kind").
    if all(isinstance(v, Mapping) and "kind" in v for v in stats.values()) and stats:
        return stats
    return {}


def _series(summary: Mapping[str, Any], base: str) -> list[tuple[dict, Mapping]]:
    """(labels, entry) pairs of every series of one metric base name."""
    out: list[tuple[dict, Mapping]] = []
    for key, entry in summary.items():
        if key == base or key.startswith(base + "{"):
            out.append((dict(entry.get("labels") or {}), entry))
    return out


def _value(summary: Mapping[str, Any], name: str) -> float:
    entry = summary.get(name)
    return float(entry["value"]) if entry else 0.0


def _sparkline(values: list[float], width: int = 30) -> str:
    """Values as a fixed-width ASCII sparkline, scaled to their max."""
    if not values:
        return " " * width
    shown = values[-width:]
    peak = max(shown)
    top = len(_SPARK_LEVELS) - 1
    glyphs = "".join(
        _SPARK_LEVELS[round(v / peak * top)] if peak > 0 else _SPARK_LEVELS[0]
        for v in shown
    )
    return glyphs.rjust(width)


def _windowed_histogram(
    summary: Mapping[str, Any], timeline: Timeline | None, name: str
) -> tuple[Mapping[str, Any] | None, bool]:
    """The histogram entry to show for ``name``: windowed bucket deltas
    when the timeline has observations in its window, else the
    lifetime-cumulative summary entry.  Returns (entry, windowed?)."""
    if timeline is not None:
        entry = timeline.window().histogram(name)
        if entry is not None and entry.get("count"):
            return entry, True
    return summary.get(name), False


def _latency_line(
    label: str,
    summary: Mapping[str, Any],
    timeline: Timeline | None,
    name: str,
) -> str | None:
    entry, windowed = _windowed_histogram(summary, timeline, name)
    if not entry:
        return None
    quantiles = "  ".join(
        f"p{int(q * 100):02d}={_fmt_seconds(histogram_quantile(entry, q))}"
        for q in PERCENTILES
    )
    scope = "window" if windowed else "lifetime"
    return f"{label}{quantiles}  (n={entry.get('count', 0)}, {scope})"


#: Breaker gauge codes (``serve.breaker_state``) -> strip glyph.
_BREAKER_GLYPHS = {0: ".", 1: "?", 2: "!"}


def _overload_panel(timeline: Timeline | None, width: int) -> list[str]:
    """The serving-edge overload timeline: per-sample rate sparklines
    for admitted/rejected/shed plus the breaker state strip, with the
    transitions called out.  Empty when there is no timeline or the
    edge has seen no admission traffic yet."""
    if timeline is None or len(timeline) < 2:
        return []
    spark_width = max(min(width - 26, 60), 10)
    series = {
        name: timeline.series(f"serve.{name}", points=spark_width)
        for name in ("admitted", "rejected", "shed")
    }
    breaker = timeline.series("serve.breaker_state", points=spark_width)
    if not any(any(values) for values in series.values()) and not any(breaker):
        return []
    lines = ["overload timeline (per-sample rates, newest right)"]
    for name, values in series.items():
        peak = max(values) if values else 0.0
        lines.append(
            f"  {name:<9} [{_sparkline(values, spark_width)}]  peak={peak:.1f}/s"
        )
    strip = "".join(_BREAKER_GLYPHS.get(int(code), "?") for code in breaker)
    transitions = sum(
        1 for prev, cur in zip(breaker, breaker[1:]) if int(prev) != int(cur)
    )
    lines.append(
        f"  {'breaker':<9} [{strip.rjust(spark_width)}]  "
        f"transitions={transitions} (.=closed ?=half-open !=open)"
    )
    return lines


def render_dashboard(
    stats: Mapping[str, Any],
    width: int = 78,
    timeline: Timeline | None = None,
) -> str:
    """One text frame of the dashboard from one stats snapshot.

    With a ``timeline``, latency percentiles are computed over the
    trailing window's histogram-bucket deltas and the overload panel
    (admitted/rejected/shed sparklines + breaker strip) is rendered.
    """
    summary = _obs_summary(stats)
    lines: list[str] = []
    rule = "-" * width
    lines.append("repro top" + " " * max(width - 9, 0))
    lines.append(rule)

    # -- workload shape ------------------------------------------------
    shape: list[str] = []
    for key, label in (
        ("num_streams", "streams"),
        ("num_queries", "queries"),
        ("num_workers", "workers"),
        ("method", "engine"),
    ):
        if key in stats:
            shape.append(f"{label}={stats[key]}")
    if shape:
        lines.append("  ".join(shape))

    # -- latency ---------------------------------------------------------
    apply_line = _latency_line(
        "apply latency   ", summary, timeline, "monitor.apply.seconds"
    )
    if apply_line:
        lines.append(apply_line)
    polls = _value(summary, "monitor.polls")
    changes = _value(summary, "monitor.changes")
    events = _value(summary, "monitor.events")
    lines.append(
        f"throughput      changes={changes:.0f}  polls={polls:.0f}  events={events:.0f}"
    )

    # -- runtime backpressure ---------------------------------------------
    depths = stats.get("inbox_depths")
    if isinstance(depths, Mapping):
        shown = "  ".join(f"shard{shard}={depth}" for shard, depth in sorted(depths.items()))
        lines.append(f"inbox depth     {shown}")
    backpressure = stats.get("backpressure")
    if isinstance(backpressure, Mapping):
        lines.append(
            "backpressure    policy={policy}  accepted={accepted_batches}  "
            "dropped={dropped}  spilled={spilled}  parked={parked}".format(**backpressure)
        )

    # -- shared-memory plane & resharding -----------------------------------
    shm = stats.get("shm")
    if isinstance(shm, Mapping):
        remaps = _value(summary, "shm.remaps")
        overflows = _value(summary, "shm.ring_overflow")
        queue_bytes = _value(summary, "runtime.bytes_pickled")
        lines.append(
            f"shm plane       segments={shm.get('segments', 0)}  "
            f"bytes={shm.get('bytes', 0)}  remaps={remaps:.0f}  "
            f"ring_overflows={overflows:.0f}  queue_bytes={queue_bytes:.0f}"
        )
    rescale = stats.get("rescale")
    if isinstance(rescale, Mapping):
        state = "in-flight" if rescale.get("active") else "idle"
        last = rescale.get("last_seconds") or None
        lines.append(
            f"rescale         count={rescale.get('count', 0)}  "
            f"last={_fmt_seconds(last)}  {state}"
        )

    # -- live query churn --------------------------------------------------
    churn = stats.get("queries")
    if isinstance(churn, Mapping):
        lines.append(
            f"query churn     registered={churn.get('registered', 0)}  "
            f"adds={churn.get('registrations', 0)}  "
            f"drops={churn.get('deregistrations', 0)}  "
            f"dedup_groups={churn.get('groups', 0)}"
        )
        register_line = _latency_line(
            "register latency ", summary, timeline, "query.register.seconds"
        )
        if register_line:
            lines.append(register_line)

    # -- serving edge ------------------------------------------------------
    serve = stats.get("serve")
    if isinstance(serve, Mapping):
        rejected = sum(
            value
            for key, value in serve.items()
            if key.startswith("rejected_") and isinstance(value, (int, float))
        )
        lines.append(
            f"serve           sessions={serve.get('sessions', 0)}  "
            f"queue={serve.get('queue_depth', 0)}  "
            f"breaker={serve.get('breaker', 'closed')}  "
            f"t={serve.get('timestamp', 0)}"
        )
        lines.append(
            f"admission       admitted={serve.get('admitted', 0)}  "
            f"rejected={rejected:.0f}  shed={serve.get('shed', 0)}  "
            f"dlq={serve.get('dead_letters', 0)}  "
            f"batches={serve.get('accepted_batches', 0)}"
        )
        commit_line = _latency_line(
            "commit latency  ", summary, timeline, "serve.commit.seconds"
        )
        if commit_line:
            lines.append(commit_line)

    # -- overload timeline -------------------------------------------------
    overload = _overload_panel(timeline, width)
    if overload:
        lines.append(rule)
        lines.extend(overload)

    # -- filter quality ----------------------------------------------------
    lines.append(rule)
    candidates = sum(entry["value"] for _, entry in _series(summary, "filter.candidates"))
    fp_entry = summary.get("filter.fp_ratio_estimate")
    probe_checked = _value(summary, "filter.probe.checked")
    probe_skipped = _value(summary, "filter.probe.skipped")
    fp_text = f"{fp_entry['value']:.3f}" if fp_entry else "-"
    lines.append(
        f"filter          candidates={candidates:.0f}  fp_ratio~{fp_text}  "
        f"probed={probe_checked:.0f}  probe_skipped={probe_skipped:.0f}"
    )
    pruned: dict[str, float] = {}
    for key, entry in summary.items():
        if ".pruned" in key and entry.get("kind") == "counter":
            dim = (entry.get("labels") or {}).get("dim", "?")
            pruned[dim] = pruned.get(dim, 0.0) + entry["value"]
    if pruned:
        total = sum(pruned.values())
        lines.append(f"pruning power   {total:.0f} pruned; top dimensions:")
        ranked = sorted(pruned.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
        for dim, count in ranked:
            share = count / total if total else 0.0
            bar = "#" * int(share * 30)
            lines.append(f"  {dim[:40]:<40} {count:>8.0f}  {share:>6.1%} {bar}")
    return "\n".join(lines) + "\n"


def run_top(
    poll: Callable[[], Mapping[str, Any]],
    out: TextIO,
    interval: float = 1.0,
    iterations: int | None = None,
    clear: bool = True,
    timeline: Timeline | None = None,
) -> int:
    """Repaint the dashboard from ``poll()`` until interrupted.

    ``iterations`` bounds the frame count (None = run until Ctrl-C);
    ``clear=False`` appends frames instead of clearing (for pipes and
    tests).  Each poll's observability summary is folded into a
    :class:`Timeline` (an internal one unless the caller supplies
    theirs), so percentiles are windowed and the overload panel is
    live.  Returns the number of frames painted.
    """
    frames = 0
    if timeline is None:
        timeline = Timeline()
    try:
        while iterations is None or frames < iterations:
            stats = poll()
            summary = _obs_summary(stats)
            if summary:
                timeline.sample(summary)
            frame = render_dashboard(stats, timeline=timeline)
            if clear:
                out.write(ANSI_CLEAR)
            out.write(frame)
            out.flush()
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return frames
