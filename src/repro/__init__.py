"""repro — Continuous Subgraph Pattern Search over Graph Streams.

A full reproduction of Wang & Chen (ICDE 2009): Node-Neighbor Tree
filtering features with incremental maintenance, node-projected-vector
dominance joins (nested loop, dominated set cover, skyline with early
stop), the GraphGrep and gIndex comparison baselines, dataset
generators, and an experiment harness regenerating every figure of the
paper's evaluation.

Quickstart::

    from repro import StreamMonitor, LabeledGraph, EdgeChange

    pattern = LabeledGraph.from_vertices_and_edges(
        [(0, "A"), (1, "B"), (2, "C")], [(0, 1, "-"), (1, 2, "-")])
    monitor = StreamMonitor({"triangle-feed": pattern}, method="dsc")
    monitor.add_stream("net0")
    monitor.apply("net0", EdgeChange.insert(7, 8, "-", "A", "B"))
    monitor.apply("net0", EdgeChange.insert(8, 9, "-", None, "C"))
    assert monitor.matches() == {("net0", "triangle-feed")}
"""

from .core import (
    Confusion,
    GraphDatabase,
    MatchEvent,
    RunningStats,
    SlidingWindowMonitor,
    Stopwatch,
    StreamMonitor,
    candidate_ratio,
    compare_with_truth,
)
from .graph import (
    EdgeChange,
    GraphChangeOperation,
    GraphError,
    GraphStream,
    LabeledGraph,
)
from .isomorphism import SubgraphMatcher, is_subgraph_isomorphic
from .join import QuerySet, make_engine
from .nnt import NNTIndex, build_nnt, project_graph
from .runtime import ShardedMonitor

__version__ = "1.0.0"

__all__ = [
    "Confusion",
    "EdgeChange",
    "GraphChangeOperation",
    "GraphDatabase",
    "GraphError",
    "GraphStream",
    "LabeledGraph",
    "MatchEvent",
    "NNTIndex",
    "QuerySet",
    "RunningStats",
    "ShardedMonitor",
    "SlidingWindowMonitor",
    "Stopwatch",
    "StreamMonitor",
    "SubgraphMatcher",
    "build_nnt",
    "candidate_ratio",
    "compare_with_truth",
    "is_subgraph_isomorphic",
    "make_engine",
    "project_graph",
    "__version__",
]
