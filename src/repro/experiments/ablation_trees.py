"""Ablation A6 — tree features vs graph features (the Tree+Delta idea).

The paper's reference [28] (Zhao et al., "tree + delta <= graph") argues
that frequent *trees* are far cheaper to mine than frequent graphs while
retaining most pruning power.  This ablation mines both feature spaces
over the same DB and compares mining time, feature count and candidate
ratio.
"""

from __future__ import annotations

import time

from ..baselines.gindex import GIndex, GIndexConfig
from .config import Scale, get_scale
from .reporting import FigureResult
from .workloads import build_synthetic_static_workload


def run(scale: Scale | None = None) -> FigureResult:
    """Execute the experiment at ``scale`` and return its rows."""
    scale = scale or get_scale()
    workload = build_synthetic_static_workload(scale)
    query_size = scale.static_query_sizes[min(1, len(scale.static_query_sizes) - 1)]
    queries = workload.query_sets[query_size]
    total_pairs = len(queries) * len(workload.graphs)
    max_edges = min(5, scale.gindex1_static_max_edges)

    result = FigureResult(
        "Ablation A6",
        "Feature space: frequent trees vs frequent graphs (Tree+Delta)",
    )
    for trees_only in (False, True):
        config = GIndexConfig(
            max_fragment_edges=max_edges,
            min_support_ratio=0.1,
            trees_only=trees_only,
        )
        build_start = time.perf_counter()
        index = GIndex(workload.graphs, config)
        build_seconds = time.perf_counter() - build_start
        candidates = sum(len(index.candidates_for(query)) for query in queries)
        result.add(
            features="trees only" if trees_only else "all graphs",
            num_features=index.num_features,
            mining_s=build_seconds,
            candidate_ratio=candidates / total_pairs if total_pairs else 0.0,
        )
    result.notes.append(
        "expected shape: the tree feature space is smaller and cheaper to "
        "mine, with candidate ratios close to the full graph feature space"
    )
    return result


def main() -> None:
    """Run at the environment-selected scale and print the table."""
    run().print()


if __name__ == "__main__":
    main()
