"""Ablation A2 — including edge labels in the projection dimensions.

The paper's Definition 4.1 keys dimensions on ``(depth, node label,
node label)`` only.  On edge-labeled data (bonds, in the AIDS-like set)
extending the key with the edge label yields a strictly finer — still
sound — projection.  This ablation measures the candidate-ratio gain and
the dimension-universe growth that the finer scheme costs.
"""

from __future__ import annotations

from ..core.database import GraphDatabase
from ..nnt.builder import project_graph
from ..nnt.projection import DimensionScheme
from .config import Scale, get_scale
from .reporting import FigureResult
from .workloads import build_aids_workload


def run(scale: Scale | None = None) -> FigureResult:
    """Execute the experiment at ``scale`` and return its rows."""
    scale = scale or get_scale()
    workload = build_aids_workload(scale)
    result = FigureResult(
        "Ablation A2",
        "Dimension scheme: (depth, labels) vs (depth, labels, edge label)",
    )
    for include_edge_labels in (False, True):
        scheme = DimensionScheme(include_edge_label=include_edge_labels)
        database = GraphDatabase(workload.graphs, depth_limit=3, scheme=scheme)
        universe = set()
        for graph in workload.graphs.values():
            for vector in project_graph(graph, 3, scheme).values():
                universe.update(vector)
        for query_size, queries in sorted(workload.query_sets.items()):
            total_pairs = len(queries) * len(workload.graphs)
            candidates = sum(len(database.filter_candidates(query)) for query in queries)
            result.add(
                scheme="with edge labels" if include_edge_labels else "paper (node labels)",
                query_size=query_size,
                candidate_ratio=candidates / total_pairs if total_pairs else 0.0,
                num_dimensions=len(universe),
            )
    result.notes.append(
        "edge-labeled dimensions can only shrink candidate sets (finer, "
        "still sound) at the price of a larger dimension universe"
    )
    return result


def main() -> None:
    """Run at the environment-selected scale and print the table."""
    run().print()


if __name__ == "__main__":
    main()
