"""Ablation A8 — incremental vs recompute-per-timestamp GraphGrep.

Our Figure 15 shows GraphGrep's per-timestamp fingerprint recomputation
dominating its cost.  The paper never fixes this (GraphGrep is its strawman),
but the NNT insight — maintain the feature structure under the change,
don't rebuild it — applies to path fingerprints too: an edge change only
touches the paths through that edge.  This ablation measures the
maintained filter against the classic recompute on the same streams
(candidate sets are identical by construction; the fingerprints are
equal, property-tested).
"""

from __future__ import annotations

import time

from ..baselines.graphgrep import GraphGrepStreamFilter
from ..baselines.graphgrep_incremental import IncrementalGraphGrep
from ..graph.operations import apply_operation
from .config import Scale, get_scale
from .reporting import FigureResult
from .workloads import build_reality_stream_workload


def run(scale: Scale | None = None) -> FigureResult:
    """Execute the experiment at ``scale`` and return its rows."""
    scale = scale or get_scale()
    workload = build_reality_stream_workload(scale, seed=97)
    timestamps = min(len(stream.operations) for stream in workload.streams.values())
    pairs = timestamps * len(workload.streams) * len(workload.queries)
    result = FigureResult(
        "Ablation A8",
        "GraphGrep maintenance: incremental path deltas vs full recompute",
    )

    incremental = IncrementalGraphGrep(workload.queries)
    for stream_id, stream in workload.streams.items():
        incremental.add_stream(stream_id, stream.initial)
    candidates = 0
    start = time.perf_counter()
    for t in range(timestamps):
        for stream_id, stream in workload.streams.items():
            incremental.apply(stream_id, stream.operations[t])
        candidates += len(incremental.candidates())
    elapsed = time.perf_counter() - start
    result.add(
        strategy="incremental (ours)",
        avg_time_ms=elapsed / timestamps * 1000 if timestamps else 0.0,
        candidate_ratio=candidates / pairs if pairs else 0.0,
    )

    recompute = GraphGrepStreamFilter(workload.queries)
    mirrors = {
        stream_id: stream.initial.copy() for stream_id, stream in workload.streams.items()
    }
    for stream_id, mirror in mirrors.items():
        recompute.update_stream(stream_id, mirror)
    candidates = 0
    start = time.perf_counter()
    for t in range(timestamps):
        for stream_id, stream in workload.streams.items():
            apply_operation(mirrors[stream_id], stream.operations[t])
            recompute.update_stream(stream_id, mirrors[stream_id])
        candidates += len(recompute.candidates())
    elapsed = time.perf_counter() - start
    result.add(
        strategy="full recompute (classic)",
        avg_time_ms=elapsed / timestamps * 1000 if timestamps else 0.0,
        candidate_ratio=candidates / pairs if pairs else 0.0,
    )
    result.notes.append(
        "identical candidate sets by construction; incremental maintenance "
        "turns GraphGrep's cost churn-proportional, like the paper does "
        "for NNTs"
    )
    return result


def main() -> None:
    """Run at the environment-selected scale and print the table."""
    run().print()


if __name__ == "__main__":
    main()
