"""Ablation A7 — closure-tree indexing vs NPV flat filtering (static).

The paper's related work credits the closure-tree [8] with very
effective pruning at a relatively high per-candidate cost.  This
ablation builds both indexes over the AIDS-like DB and compares build
time, per-query filter time and candidate ratio (ground truth included
so the pruning quality is interpretable).
"""

from __future__ import annotations

import time

from ..baselines.ctree import ClosureTree
from ..core.database import GraphDatabase
from ..isomorphism.vf2 import SubgraphMatcher
from .config import Scale, get_scale
from .reporting import FigureResult
from .workloads import build_aids_workload


def run(scale: Scale | None = None) -> FigureResult:
    """Execute the experiment at ``scale`` and return its rows."""
    scale = scale or get_scale()
    workload = build_aids_workload(scale)
    query_size = scale.static_query_sizes[min(1, len(scale.static_query_sizes) - 1)]
    queries = workload.query_sets[query_size]
    total_pairs = len(queries) * len(workload.graphs)

    result = FigureResult(
        "Ablation A7",
        "Closure-tree (CTree) vs NPV flat filter on the static DB",
    )

    build_start = time.perf_counter()
    database = GraphDatabase(workload.graphs, depth_limit=3)
    npv_build = time.perf_counter() - build_start
    query_start = time.perf_counter()
    npv_candidates = sum(len(database.filter_candidates(query)) for query in queries)
    npv_query = time.perf_counter() - query_start
    result.add(
        index="NPV (flat)",
        build_s=npv_build,
        mean_query_ms=npv_query / len(queries) * 1000 if queries else 0.0,
        candidate_ratio=npv_candidates / total_pairs if total_pairs else 0.0,
    )

    build_start = time.perf_counter()
    tree = ClosureTree(workload.graphs, fanout=4, level=2)
    ctree_build = time.perf_counter() - build_start
    query_start = time.perf_counter()
    ctree_candidates = sum(len(tree.candidates_for(query)) for query in queries)
    ctree_query = time.perf_counter() - query_start
    result.add(
        index="closure-tree",
        build_s=ctree_build,
        mean_query_ms=ctree_query / len(queries) * 1000 if queries else 0.0,
        candidate_ratio=ctree_candidates / total_pairs if total_pairs else 0.0,
    )

    truth = 0
    for query in queries:
        truth += sum(
            1
            for graph in workload.graphs.values()
            if SubgraphMatcher(graph).is_subgraph(query)
        )
    result.add(index="(exact truth)", candidate_ratio=truth / total_pairs if total_pairs else 0.0)
    result.notes.append(
        "expected shape: CTree's pseudo-isomorphism prunes tighter than NPV "
        "at a higher per-query cost — the pruning/cost trade the paper's "
        "related work describes"
    )
    return result


def main() -> None:
    """Run at the environment-selected scale and print the table."""
    run().print()


if __name__ == "__main__":
    main()
