"""Figure 12 — self-test on the maximum depth of the node-neighbor tree.

For both static datasets (AIDS-like and synthetic), sweep the NNT depth
and report the candidate ratio after NPV filtering.  Expected shape:
candidate size drops sharply up to depth ~3 and flattens beyond — the
paper concludes "it suffices to use depth at most 3".
"""

from __future__ import annotations

from ..core.database import GraphDatabase
from .config import Scale, get_scale
from .reporting import FigureResult
from .workloads import StaticWorkload, build_aids_workload, build_synthetic_static_workload


def _sweep(workload: StaticWorkload, scale: Scale, result: FigureResult, query_size: int) -> None:
    queries = workload.query_sets[query_size]
    total_pairs = len(queries) * len(workload.graphs)
    for depth in scale.depth_sweep:
        database = GraphDatabase(workload.graphs, depth_limit=depth)
        candidates = sum(len(database.filter_candidates(query)) for query in queries)
        result.add(
            dataset=workload.name,
            depth=depth,
            query_size=f"Q{query_size}",
            candidate_ratio=candidates / total_pairs if total_pairs else 0.0,
        )


def run(scale: Scale | None = None) -> FigureResult:
    """Execute the experiment at ``scale`` and return its rows."""
    scale = scale or get_scale()
    result = FigureResult(
        "Figure 12",
        "Candidate ratio vs NNT depth (static datasets, NPV filter)",
    )
    query_size = scale.static_query_sizes[min(1, len(scale.static_query_sizes) - 1)]
    _sweep(build_aids_workload(scale), scale, result, query_size)
    _sweep(build_synthetic_static_workload(scale), scale, result, query_size)
    result.notes.append(
        "expected shape: steep drop to depth 3, little gain beyond (paper "
        "fixes l=3)"
    )
    return result


def main() -> None:
    """Run at the environment-selected scale and print the table."""
    run().print()


if __name__ == "__main__":
    main()
