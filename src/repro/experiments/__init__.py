"""Experiment harness: one driver per paper figure plus ablations.

Run any driver directly (``python -m repro.experiments.fig14_stream_effectiveness``)
or through the benchmark suite under ``benchmarks/``.  Sizes come from
the ``REPRO_SCALE`` environment variable (smoke / default / paper).
"""

from . import (
    ablation_branch,
    ablation_ctree,
    ablation_dimensions,
    ablation_discriminative,
    ablation_incremental,
    ablation_incremental_ggrep,
    ablation_spectral,
    ablation_trees,
    fig02_preliminary,
    fig12_depth,
    fig13_static,
    fig14_stream_effectiveness,
    fig15_stream_efficiency,
    fig16_scale_queries,
    fig17_scale_streams,
)
from .config import DEFAULT, PAPER, PROFILES, SMOKE, Scale, get_scale
from .harness import (
    ENGINE_METHODS,
    STATIC_METHODS,
    STREAM_METHODS,
    StaticRunResult,
    StreamRunResult,
    run_static_method,
    run_stream_method,
)
from .reporting import FigureResult
from .workloads import (
    StaticWorkload,
    StreamWorkload,
    build_aids_workload,
    build_reality_stream_workload,
    build_synthetic_static_workload,
    build_synthetic_stream_workload,
)

ALL_FIGURES = {
    "fig02": fig02_preliminary,
    "fig12": fig12_depth,
    "fig13": fig13_static,
    "fig14": fig14_stream_effectiveness,
    "fig15": fig15_stream_efficiency,
    "fig16": fig16_scale_queries,
    "fig17": fig17_scale_streams,
    "ablation_a1": ablation_branch,
    "ablation_a2": ablation_dimensions,
    "ablation_a3": ablation_incremental,
    "ablation_a4": ablation_spectral,
    "ablation_a5": ablation_discriminative,
    "ablation_a6": ablation_trees,
    "ablation_a7": ablation_ctree,
    "ablation_a8": ablation_incremental_ggrep,
}

__all__ = [
    "ALL_FIGURES",
    "DEFAULT",
    "ENGINE_METHODS",
    "FigureResult",
    "PAPER",
    "PROFILES",
    "SMOKE",
    "STATIC_METHODS",
    "STREAM_METHODS",
    "Scale",
    "StaticRunResult",
    "StaticWorkload",
    "StreamRunResult",
    "StreamWorkload",
    "build_aids_workload",
    "build_reality_stream_workload",
    "build_synthetic_static_workload",
    "build_synthetic_stream_workload",
    "get_scale",
    "run_static_method",
    "run_stream_method",
]
