"""Workload builders shared by all figure drivers.

Each builder is deterministic given the scale profile and a seed, so
figures are reproducible run to run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..datasets.ggen import GGen, GGenConfig
from ..datasets.molecules import generate_molecule_set
from ..datasets.queries import extract_connected_query, make_query_set
from ..datasets.reality import RealityConfig, generate_reality_streams
from ..datasets.stream_gen import DENSE, SPARSE, inflate_graph, synthesize_streams
from ..graph.labeled_graph import LabeledGraph
from ..graph.stream import GraphStream
from .config import Scale


@dataclass
class StaticWorkload:
    """A static graph DB plus the paper's Q_m query sets."""

    name: str
    graphs: dict[int, LabeledGraph]
    query_sets: dict[int, list[LabeledGraph]]  # m (edges) -> queries


@dataclass
class StreamWorkload:
    """Fixed query patterns plus recorded graph streams."""

    name: str
    queries: dict[str, LabeledGraph]
    streams: dict[int, GraphStream]

    @property
    def timestamps(self) -> int:
        return min(len(stream) for stream in self.streams.values())

    def limited(
        self,
        num_queries: int | None = None,
        num_streams: int | None = None,
        timestamps: int | None = None,
    ) -> "StreamWorkload":
        """A restriction of the workload (for the scalability sweeps)."""
        query_ids = list(self.queries)[: num_queries or len(self.queries)]
        stream_ids = list(self.streams)[: num_streams or len(self.streams)]
        streams = {sid: self.streams[sid] for sid in stream_ids}
        if timestamps is not None:
            streams = {sid: stream.truncated(timestamps) for sid, stream in streams.items()}
        return StreamWorkload(
            name=self.name,
            queries={qid: self.queries[qid] for qid in query_ids},
            streams=streams,
        )


# ----------------------------------------------------------------------
# static workloads (Figures 12-13)
# ----------------------------------------------------------------------
def build_aids_workload(scale: Scale, seed: int = 11) -> StaticWorkload:
    """AIDS-like molecule DB + Q_m query sets (paper Section V-A)."""
    graphs = generate_molecule_set(scale.static_db_size, seed=seed)
    query_sets = {
        m: make_query_set(graphs, m, scale.static_queries_per_set, seed=seed + m)
        for m in scale.static_query_sizes
    }
    return StaticWorkload("aids-like", dict(enumerate(graphs)), query_sets)


def build_synthetic_static_workload(scale: Scale, seed: int = 23) -> StaticWorkload:
    """ggen DB (paper: D=10k, L=200, I=10, T=50, V=4, E=1, scaled here)."""
    config = GGenConfig(
        num_graphs=scale.static_db_size,
        num_seeds=max(4, scale.static_db_size // 8),
        seed_size=6.0,
        graph_size=20.0,
        num_vertex_labels=4,
        num_edge_labels=1,
        seed=seed,
    )
    graphs = GGen(config).generate()
    query_sets = {
        m: make_query_set(graphs, m, scale.static_queries_per_set, seed=seed + m)
        for m in scale.static_query_sizes
    }
    return StaticWorkload("synthetic-static", dict(enumerate(graphs)), query_sets)


# ----------------------------------------------------------------------
# stream workloads (Figures 2, 14-17)
# ----------------------------------------------------------------------
def build_synthetic_stream_workload(
    scale: Scale,
    density: str = "dense",
    seed: int = 31,
    num_queries: int | None = None,
    num_streams: int | None = None,
    timestamps: int | None = None,
) -> StreamWorkload:
    """The paper's synthetic stream setup: ggen basic query graphs,
    streams = 1.5x-inflated copies evolving by per-pair coin flips."""
    if density == "dense":
        p_appear, p_disappear = DENSE
    elif density == "sparse":
        p_appear, p_disappear = SPARSE
    else:
        raise ValueError(f"density must be 'dense' or 'sparse', got {density!r}")
    num_queries = num_queries or scale.syn_num_queries
    num_streams = num_streams or scale.syn_num_streams
    timestamps = timestamps or scale.syn_timestamps

    config = GGenConfig(
        num_graphs=max(num_queries, num_streams),
        num_seeds=8,
        seed_size=max(4.0, scale.syn_base_size * 0.8),
        graph_size=float(scale.syn_base_size),
        num_vertex_labels=scale.syn_num_labels,
        num_edge_labels=1,
        seed=seed,
        seed_extra_edge_ratio=1.2,
    )
    generator = GGen(config)
    bases = generator.generate()
    queries = {f"q{i}": bases[i] for i in range(num_queries)}

    rng = random.Random(seed + 1)
    stream_bases = [
        inflate_graph(bases[i], 1.5, rng, generator.vertex_labels, generator.edge_labels)
        for i in range(num_streams)
    ]
    streams = synthesize_streams(
        stream_bases,
        p_appear,
        p_disappear,
        timestamps,
        seed=seed + 2,
        all_pairs=scale.syn_all_pairs,
    )
    return StreamWorkload(
        name=f"synthetic-{density}",
        queries=queries,
        streams=dict(enumerate(streams)),
    )


def build_reality_stream_workload(
    scale: Scale,
    seed: int = 47,
    num_queries: int | None = None,
    num_streams: int | None = None,
    timestamps: int | None = None,
) -> StreamWorkload:
    """Reality-Mining-like Device Span workload (paper Section V-B)."""
    num_queries = num_queries or scale.real_num_queries
    num_streams = num_streams or scale.real_num_streams
    timestamps = timestamps or scale.real_timestamps
    config = RealityConfig(num_devices=scale.real_num_devices)
    streams = generate_reality_streams(num_streams, timestamps, seed=seed, config=config)
    rng = random.Random(seed + 1)
    snapshots = [stream.initial for stream in streams if stream.initial.num_edges > 0]
    queries = {
        f"q{i}": extract_connected_query(
            snapshots[i % len(snapshots)], scale.real_query_edges, rng
        )
        for i in range(num_queries)
    }
    return StreamWorkload(
        name="reality-like", queries=queries, streams=dict(enumerate(streams))
    )
