"""Figure 15 — efficiency on stream datasets.

Average processing cost per timestamp of gIndex1, gIndex2, GraphGrep and
our DSC method over the three stream workloads.

Expected shape: gIndex1 is far more costly than every other method (it
re-mines frequent fragments every timestamp); gIndex2, GraphGrep and our
method all stay low, with our method's cost dominated by incremental NNT
maintenance rather than mining.
"""

from __future__ import annotations

from .config import Scale, get_scale
from .fig14_stream_effectiveness import DISPLAY_NAMES
from .reporting import FigureResult
from .stream_comparison import stream_comparison_results


def run(scale: Scale | None = None) -> FigureResult:
    """Execute the experiment at ``scale`` and return its rows."""
    scale = scale or get_scale()
    result = FigureResult(
        "Figure 15",
        "Stream efficiency: average processing cost per timestamp (ms)",
    )
    for workload_name, runs in stream_comparison_results(scale).items():
        for run_result in runs:
            result.add(
                dataset=workload_name,
                method=DISPLAY_NAMES[run_result.method],
                avg_time_ms=run_result.mean_ms_per_timestamp,
                timestamps=run_result.timestamps,
            )
    result.notes.append("expected shape: gIndex1 >> gIndex2, GraphGrep, ours")
    result.notes.append(
        "gIndex runs honour the scale profile's baseline_timestamp_cap "
        "(per-timestamp re-mining is the cost the figure demonstrates)"
    )
    return result


def main() -> None:
    """Run at the environment-selected scale and print the table."""
    run().print()


if __name__ == "__main__":
    main()
