"""Experiment scaling profiles.

The paper's full workloads (10,000-graph AIDS sample, 70x70 streams with
1,000 timestamps) were run on a 2009 C++ testbed; this reproduction runs
them on a pure-Python simulator, so each experiment reads its sizes from
a profile:

* ``smoke``   — seconds-scale, used by the integration tests;
* ``default`` — minutes-scale, used by the benchmark harness; chosen (see
  DESIGN.md) so candidate ratios land in the paper's regime;
* ``paper``   — the paper's published sizes, for completeness (expect
  very long runs in Python).

Select with the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    """All experiment sizes for one profile."""

    name: str

    # -- static datasets (Figures 12-13) --------------------------------
    static_db_size: int
    static_queries_per_set: int
    static_query_sizes: tuple[int, ...]  # the paper's Q4..Q24 (edges)
    depth_sweep: tuple[int, ...]  # Figure 12 x-axis

    # -- synthetic streams (Figures 2, 14-17) ----------------------------
    syn_num_queries: int
    syn_num_streams: int
    syn_base_size: int  # ggen T for the basic query graphs
    syn_num_labels: int  # ggen V
    syn_timestamps: int
    syn_all_pairs: bool  # literal per-pair coin flips (paper text)

    # -- Reality-Mining-like streams (Figures 14-15, 17) -----------------
    real_num_queries: int
    real_num_streams: int
    real_num_devices: int
    real_timestamps: int
    real_query_edges: int

    # -- gIndex baseline settings ----------------------------------------
    gindex1_static_max_edges: int
    gindex1_stream_max_edges: int
    baseline_timestamp_cap: int  # cap on timestamps for per-ts re-mining

    # -- scalability sweeps (Figures 16-17) -------------------------------
    sweep_counts: tuple[int, ...]
    sweep_timestamps: int


SMOKE = Scale(
    name="smoke",
    static_db_size=30,
    static_queries_per_set=5,
    static_query_sizes=(4, 8),
    depth_sweep=(1, 2, 3),
    syn_num_queries=4,
    syn_num_streams=4,
    syn_base_size=5,
    syn_num_labels=4,
    syn_timestamps=6,
    syn_all_pairs=True,
    real_num_queries=4,
    real_num_streams=3,
    real_num_devices=24,
    real_timestamps=6,
    real_query_edges=4,
    gindex1_static_max_edges=4,
    gindex1_stream_max_edges=3,
    baseline_timestamp_cap=2,
    sweep_counts=(2, 4),
    sweep_timestamps=4,
)

DEFAULT = Scale(
    name="default",
    static_db_size=150,
    static_queries_per_set=20,
    static_query_sizes=(4, 8, 12, 16, 20, 24),
    depth_sweep=(1, 2, 3, 4, 5),
    syn_num_queries=10,
    syn_num_streams=10,
    syn_base_size=10,
    syn_num_labels=4,
    syn_timestamps=15,
    syn_all_pairs=True,
    real_num_queries=10,
    real_num_streams=8,
    real_num_devices=40,
    real_timestamps=25,
    real_query_edges=5,
    gindex1_static_max_edges=6,
    gindex1_stream_max_edges=4,
    baseline_timestamp_cap=5,
    sweep_counts=(4, 8, 12),
    sweep_timestamps=6,
)

PAPER = Scale(
    name="paper",
    static_db_size=10_000,
    static_queries_per_set=1_000,
    static_query_sizes=(4, 8, 12, 16, 20, 24),
    depth_sweep=(1, 2, 3, 4, 5),
    syn_num_queries=70,
    syn_num_streams=70,
    syn_base_size=40,
    syn_num_labels=4,
    syn_timestamps=1_000,
    syn_all_pairs=True,
    real_num_queries=25,
    real_num_streams=25,
    real_num_devices=97,
    real_timestamps=1_000,
    real_query_edges=8,
    gindex1_static_max_edges=10,
    gindex1_stream_max_edges=10,
    baseline_timestamp_cap=1_000,
    sweep_counts=(10, 25, 40, 55, 70),
    sweep_timestamps=100,
)

PROFILES = {scale.name: scale for scale in (SMOKE, DEFAULT, PAPER)}


def get_scale(name: str | None = None) -> Scale:
    """Resolve a profile by name, or from ``REPRO_SCALE`` (default profile
    when unset)."""
    chosen = name or os.environ.get("REPRO_SCALE", "default")
    try:
        return PROFILES[chosen]
    except KeyError:
        raise ValueError(
            f"unknown scale {chosen!r}; expected one of {sorted(PROFILES)}"
        ) from None
