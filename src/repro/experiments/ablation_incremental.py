"""Ablation A3 — incremental NNT maintenance vs full rebuild.

The paper's Section III argues that NNTs must be maintained
incrementally (Procedures Insert-Edge / Delete-Edge) rather than rebuilt
from scratch whenever the stream graph changes.  This ablation replays
the same synthetic stream twice — once through :class:`NNTIndex.apply`
and once rebuilding every NNT each timestamp — and compares the
per-timestamp maintenance cost.
"""

from __future__ import annotations

import time

import random

from ..datasets.ggen import GGenConfig, GGen
from ..datasets.stream_gen import inflate_graph, synthesize_streams
from ..graph.operations import apply_operation
from ..nnt.builder import project_graph
from ..nnt.incremental import NNTIndex
from .config import Scale, get_scale
from .reporting import FigureResult
from .workloads import StreamWorkload


def _temporal_locality_workload(scale: Scale, seed: int = 83) -> StreamWorkload:
    """A stream honouring Section II's temporal-locality premise: only a
    few base edges toggle per timestamp (p1=p2=3% over the base edge set).
    The dense all-pairs workload rewrites half the graph every timestamp,
    where a rebuild is legitimately competitive — the incremental
    procedures target exactly the low-churn regime."""
    config = GGenConfig(
        num_graphs=scale.syn_num_streams,
        num_seeds=8,
        seed_size=4.0,
        graph_size=float(scale.syn_base_size * 2),
        num_vertex_labels=scale.syn_num_labels,
        num_edge_labels=1,
        seed=seed,
    )
    generator = GGen(config)
    rng = random.Random(seed + 1)
    bases = [
        inflate_graph(base, 1.5, rng, generator.vertex_labels, generator.edge_labels)
        for base in generator.generate()
    ]
    streams = synthesize_streams(
        bases, 0.03, 0.03, scale.syn_timestamps, seed=seed + 2, all_pairs=False
    )
    return StreamWorkload(
        name="temporal-locality", queries={}, streams=dict(enumerate(streams))
    )


def run(scale: Scale | None = None) -> FigureResult:
    """Execute the experiment at ``scale`` and return its rows."""
    scale = scale or get_scale()
    workload = _temporal_locality_workload(scale)
    result = FigureResult(
        "Ablation A3",
        "NNT maintenance: incremental (Figs 4-5) vs per-timestamp rebuild",
    )
    timestamps = min(len(stream.operations) for stream in workload.streams.values())

    # Incremental maintenance through the index.
    indexes = {
        stream_id: NNTIndex(stream.initial, depth_limit=3)
        for stream_id, stream in workload.streams.items()
    }
    start = time.perf_counter()
    for t in range(timestamps):
        for stream_id, stream in workload.streams.items():
            indexes[stream_id].apply(stream.operations[t])
    incremental_seconds = time.perf_counter() - start
    churn = sum(
        index.stats["tree_nodes_added"] + index.stats["tree_nodes_removed"]
        for index in indexes.values()
    )
    result.add(
        strategy="incremental",
        avg_time_ms=incremental_seconds / timestamps * 1000,
        tree_nodes_touched=churn,
    )

    # Full rebuild: apply changes to a mirror graph, re-project everything.
    mirrors = {
        stream_id: stream.initial.copy() for stream_id, stream in workload.streams.items()
    }
    rebuilt_nodes = 0
    start = time.perf_counter()
    for t in range(timestamps):
        for stream_id, stream in workload.streams.items():
            apply_operation(mirrors[stream_id], stream.operations[t])
            vectors = project_graph(mirrors[stream_id], 3)
            rebuilt_nodes += sum(sum(vector.values()) for vector in vectors.values())
    rebuild_seconds = time.perf_counter() - start
    result.add(
        strategy="full rebuild",
        avg_time_ms=rebuild_seconds / timestamps * 1000,
        tree_nodes_touched=rebuilt_nodes,
    )
    result.notes.append(
        "expected shape: incremental maintenance touches a small fraction "
        "of the tree nodes a rebuild recreates each timestamp"
    )
    return result


def main() -> None:
    """Run at the environment-selected scale and print the table."""
    run().print()


if __name__ == "__main__":
    main()
