"""Shared stream-method comparison backing Figures 14 and 15.

Both figures report the same runs (one measures candidate ratio, the
other per-timestamp cost), so the runs are executed once per scale
profile and cached in-process.
"""

from __future__ import annotations

from .config import Scale
from .harness import StreamRunResult, run_stream_method
from .workloads import (
    build_reality_stream_workload,
    build_synthetic_stream_workload,
)

STREAM_COMPARISON_METHODS = ("gindex1", "gindex2", "ggrep", "dsc")

_CACHE: dict[str, dict[str, list[StreamRunResult]]] = {}


def comparison_workloads(scale: Scale) -> dict:
    """The three stream datasets of the paper's Section V-B."""
    return {
        "reality-like": build_reality_stream_workload(scale),
        "synthetic-sparse": build_synthetic_stream_workload(scale, "sparse"),
        "synthetic-dense": build_synthetic_stream_workload(scale, "dense"),
    }


def stream_comparison_results(scale: Scale) -> dict[str, list[StreamRunResult]]:
    """Per-workload results of every comparison method (cached)."""
    cached = _CACHE.get(scale.name)
    if cached is not None:
        return cached
    results: dict[str, list[StreamRunResult]] = {}
    for name, workload in comparison_workloads(scale).items():
        results[name] = [
            run_stream_method(workload, method, scale)
            for method in STREAM_COMPARISON_METHODS
        ]
    _CACHE[scale.name] = results
    return results
