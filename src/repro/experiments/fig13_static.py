"""Figure 13 — effectiveness on static datasets.

Candidate ratio vs query size (the paper's Q4..Q24 sets) for NPV,
GraphGrep and gIndex on the AIDS-like and synthetic static DBs.

Expected shape: gIndex (frequent fragments, maxL=10, sigma=0.1N) prunes
best; NPV is comparable; GraphGrep is clearly worse, increasingly so for
larger queries.
"""

from __future__ import annotations

from .config import Scale, get_scale
from .harness import run_static_method
from .reporting import FigureResult
from .workloads import build_aids_workload, build_synthetic_static_workload

DISPLAY_NAMES = {"npv": "NPV (ours)", "ggrep": "GraphGrep", "gindex1": "gIndex1", "gindex2": "gIndex2"}
METHODS = ("gindex1", "npv", "ggrep")


def run(scale: Scale | None = None) -> FigureResult:
    """Execute the experiment at ``scale`` and return its rows."""
    scale = scale or get_scale()
    result = FigureResult(
        "Figure 13",
        "Static effectiveness: candidate ratio vs query size",
    )
    for workload in (build_aids_workload(scale), build_synthetic_static_workload(scale)):
        for method in METHODS:
            for row in run_static_method(workload, method, scale):
                result.add(
                    dataset=workload.name,
                    method=DISPLAY_NAMES[method],
                    query_size=row.query_size,
                    candidate_ratio=row.candidate_ratio,
                    mean_query_ms=row.mean_query_ms,
                )
    result.notes.append(
        "expected shape: gIndex1 <= NPV < GraphGrep at every query size"
    )
    return result


def main() -> None:
    """Run at the environment-selected scale and print the table."""
    run().print()


if __name__ == "__main__":
    main()
