"""Experiment harness: replay workloads under every method and measure
the paper's two quantities — candidate ratio and average per-timestamp
processing cost.

Stream methods
--------------
``nl`` / ``dsc`` / ``skyline`` / ``matrix``
    Our NPV filter with the corresponding join engine, driven through
    :class:`repro.core.StreamMonitor` (incremental NNT maintenance,
    coalesced delta delivery).
``ggrep``
    GraphGrep: mirror graphs + per-timestamp fingerprint refresh.
``gindex1`` / ``gindex2``
    gIndex: mirror graphs + per-timestamp feature re-mining (the paper's
    dominant cost).  Expensive methods honour the scale profile's
    ``baseline_timestamp_cap``.

Static methods
--------------
``npv`` / ``ggrep`` / ``gindex1`` / ``gindex2`` over a
:class:`~repro.experiments.workloads.StaticWorkload`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..baselines.gindex import GIndex, GIndexConfig, GIndexStreamFilter
from ..baselines.graphgrep import GraphGrepFilter, GraphGrepStreamFilter
from ..core.database import GraphDatabase
from ..core.metrics import candidate_ratio
from ..core.monitor import StreamMonitor
from ..graph.operations import apply_operation
from .config import Scale
from .workloads import StaticWorkload, StreamWorkload

ENGINE_METHODS = ("nl", "dsc", "skyline", "matrix")
STREAM_METHODS = ENGINE_METHODS + ("ggrep", "gindex1", "gindex2")
STATIC_METHODS = ("npv", "ggrep", "gindex1", "gindex2")


@dataclass(frozen=True)
class StreamRunResult:
    """One method's measurements over one stream workload."""

    method: str
    workload: str
    num_queries: int
    num_streams: int
    timestamps: int
    mean_ms_per_timestamp: float
    candidate_ratio: float
    setup_seconds: float
    candidates_per_timestamp: tuple[int, ...] = ()
    # Engine runs split the per-timestamp cost into NNT maintenance
    # (independent of the query count) and join/answering (the part the
    # paper's scalability figures exercise); baselines leave these at 0.
    mean_maintain_ms_per_timestamp: float = 0.0
    mean_join_ms_per_timestamp: float = 0.0

    def ratio_over(self, first_n: int) -> float:
        """Candidate ratio over the first ``first_n`` timestamps only —
        lets methods measured over different horizons (the capped gIndex
        runs) be compared on a common window."""
        window = self.candidates_per_timestamp[:first_n]
        pairs = len(window) * self.num_streams * self.num_queries
        return sum(window) / pairs if pairs else 0.0


@dataclass(frozen=True)
class StaticRunResult:
    """One method's measurements over one static query set."""

    method: str
    workload: str
    query_size: int
    candidate_ratio: float
    mean_query_ms: float
    build_seconds: float


def _stream_gindex_config(method: str, scale: Scale) -> GIndexConfig:
    if method == "gindex1":
        return GIndexConfig(
            max_fragment_edges=scale.gindex1_stream_max_edges,
            min_support_ratio=0.1,
        )
    return GIndexConfig(max_fragment_edges=3, min_support_absolute=1)


def run_stream_method(
    workload: StreamWorkload, method: str, scale: Scale, workers: int | None = None
) -> StreamRunResult:
    """Replay a stream workload under one method, timing every timestamp
    (apply the batch, then read the candidate pair set).

    ``workers`` > 1 runs the engine methods through the sharded
    multi-process runtime (:class:`repro.runtime.ShardedMonitor`) instead
    of an in-process monitor; streams shard by consistent hash, so the
    candidate counts are identical either way.  The baselines are
    single-process only and ignore the flag.
    """
    if method in ENGINE_METHODS:
        return _run_engine(workload, method, workers=workers)
    if method == "ggrep":
        return _run_graphgrep(workload, scale)
    if method in ("gindex1", "gindex2"):
        return _run_gindex(workload, method, scale)
    raise ValueError(f"unknown stream method {method!r}; expected {STREAM_METHODS}")


def _replay_timestamps(workload: StreamWorkload) -> int:
    return min(len(stream.operations) for stream in workload.streams.values())


def _run_engine(
    workload: StreamWorkload, method: str, workers: int | None = None
) -> StreamRunResult:
    parallel = workers is not None and workers > 1
    setup_start = time.perf_counter()
    if parallel:
        from ..runtime import ShardedMonitor

        monitor = ShardedMonitor(workload.queries, method=method, num_workers=workers)
    else:
        monitor = StreamMonitor(workload.queries, method=method)
    try:
        for stream_id, stream in workload.streams.items():
            monitor.add_stream(stream_id, stream.initial)
        setup_seconds = time.perf_counter() - setup_start

        timestamps = _replay_timestamps(workload)
        pairs_total = timestamps * len(workload.streams) * len(workload.queries)
        per_timestamp: list[int] = []
        maintain = 0.0
        join = 0.0
        for t in range(timestamps):
            tick_start = time.perf_counter()
            for stream_id, stream in workload.streams.items():
                monitor.apply(stream_id, stream.operations[t])
            maintain_done = time.perf_counter()
            per_timestamp.append(len(monitor.matches()))
            join_done = time.perf_counter()
            maintain += maintain_done - tick_start
            join += join_done - maintain_done
        candidates = sum(per_timestamp)
        elapsed = maintain + join
    finally:
        if parallel:
            monitor.close()
    return StreamRunResult(
        method=f"{method}@{workers}w" if parallel else method,
        workload=workload.name,
        num_queries=len(workload.queries),
        num_streams=len(workload.streams),
        timestamps=timestamps,
        mean_ms_per_timestamp=elapsed / timestamps * 1000 if timestamps else 0.0,
        candidate_ratio=candidates / pairs_total if pairs_total else 0.0,
        setup_seconds=setup_seconds,
        candidates_per_timestamp=tuple(per_timestamp),
        mean_maintain_ms_per_timestamp=maintain / timestamps * 1000 if timestamps else 0.0,
        mean_join_ms_per_timestamp=join / timestamps * 1000 if timestamps else 0.0,
    )


def _run_graphgrep(workload: StreamWorkload, scale: Scale) -> StreamRunResult:
    setup_start = time.perf_counter()
    flt = GraphGrepStreamFilter(workload.queries)
    mirrors = {
        stream_id: stream.initial.copy() for stream_id, stream in workload.streams.items()
    }
    for stream_id, mirror in mirrors.items():
        flt.update_stream(stream_id, mirror)
    setup_seconds = time.perf_counter() - setup_start

    # GraphGrep's per-timestamp fingerprint refresh is cheap on sparse
    # graphs but explodes on dense ones (vertex-simple path enumeration);
    # it shares the baselines' timestamp cap.
    timestamps = min(_replay_timestamps(workload), scale.baseline_timestamp_cap)
    pairs_total = timestamps * len(workload.streams) * len(workload.queries)
    per_timestamp: list[int] = []
    elapsed = 0.0
    for t in range(timestamps):
        tick_start = time.perf_counter()
        for stream_id, stream in workload.streams.items():
            apply_operation(mirrors[stream_id], stream.operations[t])
            flt.update_stream(stream_id, mirrors[stream_id])
        per_timestamp.append(len(flt.candidates()))
        elapsed += time.perf_counter() - tick_start
    candidates = sum(per_timestamp)
    return StreamRunResult(
        method="ggrep",
        workload=workload.name,
        num_queries=len(workload.queries),
        num_streams=len(workload.streams),
        timestamps=timestamps,
        mean_ms_per_timestamp=elapsed / timestamps * 1000 if timestamps else 0.0,
        candidate_ratio=candidates / pairs_total if pairs_total else 0.0,
        setup_seconds=setup_seconds,
        candidates_per_timestamp=tuple(per_timestamp),
    )


def _run_gindex(workload: StreamWorkload, method: str, scale: Scale) -> StreamRunResult:
    config = _stream_gindex_config(method, scale)
    setup_start = time.perf_counter()
    flt = GIndexStreamFilter(workload.queries, config)
    mirrors = {
        stream_id: stream.initial.copy() for stream_id, stream in workload.streams.items()
    }
    setup_seconds = time.perf_counter() - setup_start

    timestamps = min(_replay_timestamps(workload), scale.baseline_timestamp_cap)
    pairs_total = timestamps * len(workload.streams) * len(workload.queries)
    per_timestamp: list[int] = []
    elapsed = 0.0
    for t in range(timestamps):
        tick_start = time.perf_counter()
        for stream_id, stream in workload.streams.items():
            apply_operation(mirrors[stream_id], stream.operations[t])
        flt.refresh(mirrors)  # per-timestamp re-mining: gIndex's cost
        per_timestamp.append(len(flt.candidates()))
        elapsed += time.perf_counter() - tick_start
    candidates = sum(per_timestamp)
    return StreamRunResult(
        method=method,
        workload=workload.name,
        num_queries=len(workload.queries),
        num_streams=len(workload.streams),
        timestamps=timestamps,
        mean_ms_per_timestamp=elapsed / timestamps * 1000 if timestamps else 0.0,
        candidate_ratio=candidates / pairs_total if pairs_total else 0.0,
        setup_seconds=setup_seconds,
        candidates_per_timestamp=tuple(per_timestamp),
    )


# ----------------------------------------------------------------------
# static experiments
# ----------------------------------------------------------------------
def build_static_filter(workload: StaticWorkload, method: str, scale: Scale, depth_limit: int = 3):
    """Build one static filter over the workload's graph DB."""
    if method == "npv":
        return GraphDatabase(workload.graphs, depth_limit=depth_limit)
    if method == "ggrep":
        return GraphGrepFilter(workload.graphs)
    if method == "gindex1":
        config = GIndexConfig(
            max_fragment_edges=scale.gindex1_static_max_edges, min_support_ratio=0.1
        )
        return GIndex(workload.graphs, config)
    if method == "gindex2":
        return GIndex(workload.graphs, GIndexConfig(max_fragment_edges=3, min_support_absolute=1))
    raise ValueError(f"unknown static method {method!r}; expected {STATIC_METHODS}")


def _static_candidates(filter_obj, query) -> set:
    if isinstance(filter_obj, GraphDatabase):
        return filter_obj.filter_candidates(query)
    return filter_obj.candidates_for(query)


def run_static_method(
    workload: StaticWorkload, method: str, scale: Scale, depth_limit: int = 3
) -> list[StaticRunResult]:
    """Candidate ratio + per-query time of one method over every Q_m set."""
    build_start = time.perf_counter()
    filter_obj = build_static_filter(workload, method, scale, depth_limit)
    build_seconds = time.perf_counter() - build_start
    results: list[StaticRunResult] = []
    db_size = len(workload.graphs)
    for query_size, queries in sorted(workload.query_sets.items()):
        total_candidates = 0
        query_start = time.perf_counter()
        for query in queries:
            total_candidates += len(_static_candidates(filter_obj, query))
        query_seconds = time.perf_counter() - query_start
        results.append(
            StaticRunResult(
                method=method,
                workload=workload.name,
                query_size=query_size,
                candidate_ratio=candidate_ratio(total_candidates, db_size, len(queries)),
                mean_query_ms=query_seconds / len(queries) * 1000 if queries else 0.0,
                build_seconds=build_seconds,
            )
        )
    return results
