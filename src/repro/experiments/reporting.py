"""Result containers and rendering (text / CSV / JSON / Markdown) for
the figure drivers."""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 10:
            return f"{value:.3f}"
        return f"{value:.1f}"
    return str(value)


@dataclass
class FigureResult:
    """Rows reproducing one paper figure, plus provenance notes."""

    figure_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **row: object) -> None:
        """Append one result row (column -> value)."""
        self.rows.append(row)

    def columns(self) -> list[str]:
        """Union of column names, in first-appearance order."""
        seen: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        return seen

    def format_table(self) -> str:
        """The rows as an aligned plain-text table."""
        columns = self.columns()
        if not columns:
            return "(no rows)"
        table = [columns] + [
            [_format_cell(row.get(column, "")) for column in columns] for row in self.rows
        ]
        widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
        lines = []
        header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(table[0]))
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for line in table[1:]:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        return "\n".join(lines)

    def render(self) -> str:
        """Header + table + notes, ready to print."""
        parts = [f"== {self.figure_id}: {self.title} ==", self.format_table()]
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def print(self) -> None:
        """Print :meth:`render` to stdout."""
        print(self.render())

    # ------------------------------------------------------------------
    # machine-readable exports
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Rows as CSV text (header = the union of columns)."""
        columns = self.columns()
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns)
        writer.writeheader()
        for row in self.rows:
            writer.writerow({column: row.get(column, "") for column in columns})
        return buffer.getvalue()

    def to_json(self) -> str:
        """The whole result (id, title, rows, notes) as a JSON document."""
        return json.dumps(
            {
                "figure_id": self.figure_id,
                "title": self.title,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=2,
            default=str,
        )

    def to_markdown(self) -> str:
        """GitHub-flavored Markdown section with the rows as a table."""
        columns = self.columns()
        lines = [f"## {self.figure_id} — {self.title}", ""]
        if columns:
            lines.append("| " + " | ".join(columns) + " |")
            lines.append("|" + "|".join("---" for _ in columns) + "|")
            for row in self.rows:
                lines.append(
                    "| "
                    + " | ".join(_format_cell(row.get(column, "")) for column in columns)
                    + " |"
                )
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines) + "\n"

    def save(self, path: str | Path) -> None:
        """Write the result in the format implied by the path suffix
        (.csv / .json / .md; anything else gets the plain-text table)."""
        path = Path(path)
        if path.suffix == ".csv":
            text = self.to_csv()
        elif path.suffix == ".json":
            text = self.to_json()
        elif path.suffix == ".md":
            text = self.to_markdown()
        else:
            text = self.render() + "\n"
        path.write_text(text, encoding="utf-8")

    def series(self, key_column: str, value_column: str, **filters: object) -> list[tuple]:
        """Extract an (x, y) series from the rows (used by tests to check
        the paper's qualitative shapes)."""
        out = []
        for row in self.rows:
            if all(row.get(column) == wanted for column, wanted in filters.items()):
                out.append((row[key_column], row[value_column]))
        return out
