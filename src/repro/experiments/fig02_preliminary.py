"""Figure 2 — preliminary test: average query processing time and
candidate size per timestamp of gIndex, GraphGrep and our NPV method on
a synthetic stream workload (the paper used 70 patterns x 70 streams).

Expected shape: gIndex has the smallest candidate set but by far the
highest per-timestamp time; GraphGrep is fast but reports around half of
all pairs; NPV is fast with a candidate set close to gIndex's.
"""

from __future__ import annotations

from .config import Scale, get_scale
from .harness import run_stream_method
from .reporting import FigureResult
from .workloads import build_synthetic_stream_workload

DISPLAY_NAMES = {"gindex1": "gIndex", "ggrep": "GraphGrep", "dsc": "NPV (ours)"}


def run(scale: Scale | None = None) -> FigureResult:
    """Execute the experiment at ``scale`` and return its rows."""
    scale = scale or get_scale()
    workload = build_synthetic_stream_workload(scale, "dense", seed=31)
    result = FigureResult(
        "Figure 2",
        "Preliminary comparison: avg processing time (ms/timestamp) and "
        "candidate ratio",
    )
    runs = [run_stream_method(workload, method, scale) for method in ("gindex1", "ggrep", "dsc")]
    window = min(run_result.timestamps for run_result in runs)
    for run_result in runs:
        result.add(
            method=DISPLAY_NAMES[run_result.method],
            avg_time_ms=run_result.mean_ms_per_timestamp,
            candidate_ratio=run_result.ratio_over(window),
            timestamps=window,
        )
    result.notes.append(
        f"scale={scale.name}: {len(workload.queries)} queries x "
        f"{len(workload.streams)} streams (paper: 70x70)"
    )
    result.notes.append(
        "expected shape: gIndex smallest candidates / largest time; "
        "GraphGrep large candidates; NPV fast with near-gIndex candidates"
    )
    return result


def main() -> None:
    """Run at the environment-selected scale and print the table."""
    run().print()


if __name__ == "__main__":
    main()
