"""Ablation A1 — NPV dominance vs Lemma 4.1 branch compatibility.

The branch-compatibility test (multiset containment of root-path
signatures) is strictly stronger than NPV dominance, but costs a full
NNT walk and multiset comparison per vertex pair.  This ablation
quantifies the trade-off the paper makes when it projects NNTs into
vectors: how many extra candidates does the projection admit, and how
much cheaper is it per pair?
"""

from __future__ import annotations

import time

from ..core.database import GraphDatabase
from ..nnt.branches import BranchFilter
from .config import Scale, get_scale
from .reporting import FigureResult
from .workloads import build_synthetic_static_workload


def run(scale: Scale | None = None) -> FigureResult:
    """Execute the experiment at ``scale`` and return its rows."""
    scale = scale or get_scale()
    workload = build_synthetic_static_workload(scale)
    # The branch filter rebuilds stream-side profiles per pair — cap the
    # DB slice so the ablation stays seconds-scale.
    db_ids = list(workload.graphs)[: max(20, scale.static_db_size // 5)]
    graphs = {graph_id: workload.graphs[graph_id] for graph_id in db_ids}
    query_size = scale.static_query_sizes[min(1, len(scale.static_query_sizes) - 1)]
    queries = workload.query_sets[query_size][: scale.static_queries_per_set]
    total_pairs = len(queries) * len(graphs)

    result = FigureResult(
        "Ablation A1",
        "NPV dominance vs branch compatibility (Lemma 4.1): pruning vs cost",
    )

    database = GraphDatabase(graphs, depth_limit=3)
    start = time.perf_counter()
    npv_candidates = sum(len(database.filter_candidates(query)) for query in queries)
    npv_seconds = time.perf_counter() - start
    result.add(
        filter="NPV dominance",
        candidate_ratio=npv_candidates / total_pairs,
        time_per_pair_us=npv_seconds / total_pairs * 1e6,
    )

    start = time.perf_counter()
    branch_candidates = 0
    for query in queries:
        branch = BranchFilter(query, depth_limit=3)
        branch_candidates += sum(1 for graph in graphs.values() if branch.admits(graph))
    branch_seconds = time.perf_counter() - start
    result.add(
        filter="branch compatibility",
        candidate_ratio=branch_candidates / total_pairs,
        time_per_pair_us=branch_seconds / total_pairs * 1e6,
    )
    result.notes.append(
        "branch compatibility is never weaker (its candidates are a subset "
        "of NPV's) but costs far more per pair — the projection trade-off"
    )
    return result


def main() -> None:
    """Run at the environment-selected scale and print the table."""
    run().print()


if __name__ == "__main__":
    main()
