"""Reconciling the live precision probe against the offline FP ratio.

The paper measures filter quality offline (Figures 13-14) as the share
of emitted candidate pairs that fail exact subgraph isomorphism::

    FP ratio = (candidates - verified matches) / candidates

:class:`repro.core.verify.PrecisionProbe` estimates the same quantity
*while serving*, from a rate-sampled, time-budgeted subset.  This
module replays one workload both ways so tests (and operators tuning
``--probe-rate``) can check the two numbers agree:

* :func:`offline_fp_ratio` — the figure-style exact measurement: every
  timestamp, verify the full candidate set.
* :func:`probed_fp_ratio` — the same replay, measured only through a
  probe sampling after every timestamp.
* :func:`reconcile` — both at once, plus the Bernoulli confidence bound
  ``z * sqrt(p * (1-p) / checked)``.  At ``rate=1.0`` with no time
  budget the probe verifies every emitted pair, so the estimate equals
  the offline ratio exactly and the bound is redundant; at lower rates
  the bound says how far apart the two may legitimately drift.

Both replays run on fresh monitors, so neither measurement can perturb
the other's timings or caches.
"""

from __future__ import annotations

from math import sqrt
from typing import Any

from ..core.monitor import StreamMonitor
from ..core.verify import PrecisionProbe
from .workloads import StreamWorkload


def _replay(workload: StreamWorkload, monitor: StreamMonitor, on_tick) -> int:
    """Apply every timestamp of the workload, calling ``on_tick`` after
    each one; returns the common horizon replayed."""
    for stream_id, stream in workload.streams.items():
        monitor.add_stream(stream_id, stream.initial)
    timestamps = min(len(stream.operations) for stream in workload.streams.values())
    for t in range(timestamps):
        for stream_id, stream in workload.streams.items():
            monitor.apply(stream_id, stream.operations[t])
        on_tick()
    return timestamps


def offline_fp_ratio(workload: StreamWorkload, method: str = "dsc") -> dict[str, Any]:
    """The offline (Figures 13-14 style) false-positive ratio: every
    timestamp's full candidate set verified with exact VF2."""
    monitor = StreamMonitor(workload.queries, method=method)
    tallies = {"candidates": 0, "false_positives": 0}

    def on_tick() -> None:
        emitted = monitor.matches()
        confirmed = monitor.verified_matches(emitted)
        tallies["candidates"] += len(emitted)
        tallies["false_positives"] += len(emitted) - len(confirmed)

    timestamps = _replay(workload, monitor, on_tick)
    candidates = tallies["candidates"]
    return {
        "method": method,
        "workload": workload.name,
        "timestamps": timestamps,
        "candidates": candidates,
        "false_positives": tallies["false_positives"],
        "fp_ratio": tallies["false_positives"] / candidates if candidates else 0.0,
    }


def probed_fp_ratio(
    workload: StreamWorkload,
    method: str = "dsc",
    rate: float = 1.0,
    budget_seconds: float | None = None,
    seed: int = 0,
) -> dict[str, Any]:
    """The live-probe estimate of the same ratio over the same replay:
    one :meth:`~repro.core.verify.PrecisionProbe.sample` pass per
    timestamp, nothing else verified."""
    monitor = StreamMonitor(workload.queries, method=method)
    probe = PrecisionProbe(
        monitor, rate=rate, budget_seconds=budget_seconds, seed=seed
    )
    timestamps = _replay(workload, monitor, probe.sample)
    checked = probe.stats["checked"]
    estimate = probe.fp_ratio_estimate
    stderr = (
        sqrt(estimate * (1.0 - estimate) / checked)
        if checked and estimate is not None
        else None
    )
    return {
        "method": method,
        "workload": workload.name,
        "timestamps": timestamps,
        "rate": rate,
        "budget_seconds": budget_seconds,
        "checked": checked,
        "skipped": probe.stats["skipped"],
        "false_positives": probe.stats["false_positives"],
        "fp_ratio_estimate": estimate,
        "stderr": stderr,
    }


def reconcile(
    workload: StreamWorkload,
    method: str = "dsc",
    rate: float = 1.0,
    budget_seconds: float | None = None,
    seed: int = 0,
    z: float = 3.0,
) -> dict[str, Any]:
    """Run both measurements and compare them.

    Returns the two result dicts plus ``bound`` (``z`` standard errors
    of the sampled estimate) and ``agrees`` — whether the offline ratio
    lies within that bound of the estimate.  With ``rate=1.0`` and no
    budget the difference must be exactly zero.
    """
    offline = offline_fp_ratio(workload, method)
    probed = probed_fp_ratio(workload, method, rate, budget_seconds, seed)
    estimate = probed["fp_ratio_estimate"]
    if estimate is None:
        return {"offline": offline, "probed": probed, "bound": None, "agrees": False}
    bound = z * (probed["stderr"] or 0.0)
    difference = abs(offline["fp_ratio"] - estimate)
    return {
        "offline": offline,
        "probed": probed,
        "bound": bound,
        "difference": difference,
        "agrees": difference <= bound + 1e-12,
    }
