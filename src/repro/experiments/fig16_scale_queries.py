"""Figure 16 — scalability in the number of queries.

Average processing cost per timestamp of the join engines (the paper's
NL, DSC and Skyline, plus our vectorized Matrix backend) as the query
count grows, with the stream count fixed at the workload maximum.

Expected shape: NL grows steeply with the number of queries; DSC and
Skyline grow mildly (DSC's incremental counters touch only crossed
positions; Skyline probes only maximal query vectors with early stops);
Matrix's broadcast sweep grows linearly but with a numpy constant, so
it overtakes NL as queries grow and beats it outright at the largest
count on the dense workload (sparse NPVs are small enough that NL's
early-exit sparse scans keep a lower constant there).
"""

from __future__ import annotations

from .config import Scale, get_scale
from .harness import ENGINE_METHODS, run_stream_method
from .reporting import FigureResult
from .workloads import build_synthetic_stream_workload

DISPLAY_NAMES = {"nl": "NL", "dsc": "DSC", "skyline": "Skyline", "matrix": "Matrix"}


def run(scale: Scale | None = None, workers: int | None = None) -> FigureResult:
    """Execute the experiment at ``scale`` and return its rows.

    ``workers`` > 1 replays through the sharded runtime
    (:mod:`repro.runtime`); candidate counts are unchanged, only the
    per-timestamp cost moves.
    """
    scale = scale or get_scale()
    suffix = f" ({workers} workers)" if workers and workers > 1 else ""
    result = FigureResult(
        "Figure 16",
        f"Scalability vs #queries: avg cost per timestamp (ms), streams fixed{suffix}",
    )
    max_queries = max(scale.sweep_counts)
    for density in ("sparse", "dense"):
        base = build_synthetic_stream_workload(
            scale,
            density,
            seed=61,
            num_queries=max_queries,
            timestamps=scale.sweep_timestamps,
        )
        for count in scale.sweep_counts:
            workload = base.limited(num_queries=count)
            for method in ENGINE_METHODS:
                run_result = run_stream_method(workload, method, scale, workers=workers)
                result.add(
                    dataset=workload.name,
                    num_queries=count,
                    method=DISPLAY_NAMES[method],
                    avg_time_ms=run_result.mean_ms_per_timestamp,
                    join_ms=run_result.mean_join_ms_per_timestamp,
                )
    result.notes.append("expected shape: NL's join_ms grows fastest; DSC/Skyline nearly flat")
    result.notes.append(
        "join_ms isolates the engine (NNT maintenance in avg_time_ms is "
        "query-count independent and dominates at simulator scale)"
    )
    return result


def main() -> None:
    """Run at the environment-selected scale and print the table."""
    run().print()


if __name__ == "__main__":
    main()
