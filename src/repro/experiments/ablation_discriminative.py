"""Ablation A5 — gIndex discriminative fragment selection.

gIndex keeps a fragment only when its posting list prunes substantially
beyond its sub-fragments' (ratio gamma).  This ablation measures the
trade: feature count, index build time, per-query time and candidate
ratio with and without selection (and across gamma values).
"""

from __future__ import annotations

import time

from ..baselines.gindex import GIndex, GIndexConfig
from .config import Scale, get_scale
from .reporting import FigureResult
from .workloads import build_aids_workload


def run(scale: Scale | None = None) -> FigureResult:
    """Execute the experiment at ``scale`` and return its rows."""
    scale = scale or get_scale()
    workload = build_aids_workload(scale)
    query_size = scale.static_query_sizes[min(1, len(scale.static_query_sizes) - 1)]
    queries = workload.query_sets[query_size]
    total_pairs = len(queries) * len(workload.graphs)

    result = FigureResult(
        "Ablation A5",
        "gIndex discriminative selection: feature count vs pruning power",
    )
    for gamma in (None, 1.25, 2.0):
        config = GIndexConfig(
            max_fragment_edges=min(4, scale.gindex1_static_max_edges),
            min_support_ratio=0.1,
            discriminative_ratio=gamma,
        )
        build_start = time.perf_counter()
        index = GIndex(workload.graphs, config)
        build_seconds = time.perf_counter() - build_start
        query_start = time.perf_counter()
        candidates = sum(len(index.candidates_for(query)) for query in queries)
        query_seconds = time.perf_counter() - query_start
        result.add(
            gamma="all features" if gamma is None else f"gamma={gamma}",
            num_features=index.num_features,
            build_s=build_seconds,
            mean_query_ms=query_seconds / len(queries) * 1000 if queries else 0.0,
            candidate_ratio=candidates / total_pairs if total_pairs else 0.0,
        )
    result.notes.append(
        "expected shape: selection shrinks the feature set (and per-query "
        "feature-containment cost) with little loss of pruning power"
    )
    return result


def main() -> None:
    """Run at the environment-selected scale and print the table."""
    run().print()


if __name__ == "__main__":
    main()
