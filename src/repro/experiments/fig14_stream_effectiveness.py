"""Figure 14 — effectiveness on stream datasets.

Average candidate ratio of gIndex1, gIndex2, GraphGrep and our DSC
method over the three stream workloads (Reality-Mining-like, synthetic
sparse, synthetic dense).

Expected shape: GraphGrep reports around half of all pairs; gIndex1 is
tightest; our method sits close to gIndex1 and clearly below gIndex2;
dense streams yield larger candidate sets than sparse ones.
"""

from __future__ import annotations

from .config import Scale, get_scale
from .reporting import FigureResult
from .stream_comparison import stream_comparison_results

DISPLAY_NAMES = {
    "gindex1": "gIndex1",
    "gindex2": "gIndex2",
    "ggrep": "GraphGrep",
    "dsc": "NPV-DSC (ours)",
}


def run(scale: Scale | None = None) -> FigureResult:
    """Execute the experiment at ``scale`` and return its rows."""
    scale = scale or get_scale()
    result = FigureResult(
        "Figure 14",
        "Stream effectiveness: average candidate ratio per timestamp",
    )
    for workload_name, runs in stream_comparison_results(scale).items():
        # Capped gIndex runs cover fewer timestamps; compare every method
        # over the common window so the ratios are like for like.
        window = min(run_result.timestamps for run_result in runs)
        for run_result in runs:
            result.add(
                dataset=workload_name,
                method=DISPLAY_NAMES[run_result.method],
                candidate_ratio=run_result.ratio_over(window),
                timestamps=window,
            )
    result.notes.append(
        "expected shape: gIndex1 <= ours <= gIndex2 << GraphGrep; dense > sparse"
    )
    return result


def main() -> None:
    """Run at the environment-selected scale and print the table."""
    run().print()


if __name__ == "__main__":
    main()
