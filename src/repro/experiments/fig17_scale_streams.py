"""Figure 17 — scalability in the number of streams.

Average processing cost per timestamp of the three join engines (NL,
DSC, Skyline) as the stream count grows, with queries fixed at the
workload maximum, over all three stream datasets.

Expected shape: cost grows roughly linearly with the number of streams
for every engine; DSC is best on the dense synthetic data (few early
stops are possible there), Skyline is competitive on the sparse /
Reality-like data where most pairs die on an early-stopped skyline
probe.
"""

from __future__ import annotations

from .config import Scale, get_scale
from .fig16_scale_queries import DISPLAY_NAMES
from .harness import ENGINE_METHODS, run_stream_method
from .reporting import FigureResult
from .workloads import build_reality_stream_workload, build_synthetic_stream_workload


def _base_workloads(scale: Scale, max_streams: int) -> list:
    return [
        build_reality_stream_workload(
            scale, seed=71, num_streams=max_streams, timestamps=scale.sweep_timestamps
        ),
        build_synthetic_stream_workload(
            scale, "sparse", seed=73, num_streams=max_streams, timestamps=scale.sweep_timestamps
        ),
        build_synthetic_stream_workload(
            scale, "dense", seed=79, num_streams=max_streams, timestamps=scale.sweep_timestamps
        ),
    ]


def run(scale: Scale | None = None, workers: int | None = None) -> FigureResult:
    """Execute the experiment at ``scale`` and return its rows.

    ``workers`` > 1 replays through the sharded runtime
    (:mod:`repro.runtime`); candidate counts are unchanged, only the
    per-timestamp cost moves.  Stream sharding makes this *the* figure
    the runtime accelerates: each worker maintains only its shard's NNTs.
    """
    scale = scale or get_scale()
    suffix = f" ({workers} workers)" if workers and workers > 1 else ""
    result = FigureResult(
        "Figure 17",
        f"Scalability vs #streams: avg cost per timestamp (ms), queries fixed{suffix}",
    )
    max_streams = max(scale.sweep_counts)
    for base in _base_workloads(scale, max_streams):
        for count in scale.sweep_counts:
            workload = base.limited(num_streams=count)
            for method in ENGINE_METHODS:
                run_result = run_stream_method(workload, method, scale, workers=workers)
                result.add(
                    dataset=workload.name,
                    num_streams=count,
                    method=DISPLAY_NAMES[method],
                    avg_time_ms=run_result.mean_ms_per_timestamp,
                    join_ms=run_result.mean_join_ms_per_timestamp,
                )
    result.notes.append(
        "expected shape: roughly linear growth; DSC best on dense synthetic, "
        "Skyline competitive on sparse/reality-like"
    )
    return result


def main() -> None:
    """Run at the environment-selected scale and print the table."""
    run().print()


if __name__ == "__main__":
    main()
