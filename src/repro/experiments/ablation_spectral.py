"""Ablation A4 — spectral (GCoding-style) filtering vs NPV dominance.

The paper's related work rules GCoding out for streams: "the computation
of eigenvalue features is too costly for stream setting".  This ablation
measures that claim: candidate ratio and per-timestamp refresh cost of
the spectral filter vs our NPV/DSC pipeline on the same stream workload.
"""

from __future__ import annotations

import time

from ..baselines.gcoding import GCodingStreamFilter
from ..graph.operations import apply_operation
from .config import Scale, get_scale
from .harness import run_stream_method
from .reporting import FigureResult
from .workloads import build_reality_stream_workload


def run(scale: Scale | None = None) -> FigureResult:
    """Execute the experiment at ``scale`` and return its rows."""
    scale = scale or get_scale()
    # The temporal-locality regime (few flips per timestamp) is where
    # incremental maintenance amortizes and full per-timestamp recompute
    # pays its true price; the reality-like workload provides it.
    workload = build_reality_stream_workload(scale, seed=91)
    timestamps = min(
        min(len(stream.operations) for stream in workload.streams.values()),
        scale.baseline_timestamp_cap,
    )
    result = FigureResult(
        "Ablation A4",
        "Spectral (GCoding-style) filter vs NPV: stream cost and candidates",
    )

    npv = run_stream_method(workload, "dsc", scale)
    result.add(
        filter="NPV-DSC (ours)",
        avg_time_ms=npv.mean_ms_per_timestamp,
        candidate_ratio=npv.ratio_over(timestamps),
        timestamps=timestamps,
    )

    spectral = GCodingStreamFilter(workload.queries, radius=2)
    mirrors = {
        stream_id: stream.initial.copy() for stream_id, stream in workload.streams.items()
    }
    for stream_id, mirror in mirrors.items():
        spectral.update_stream(stream_id, mirror)
    candidates = 0
    elapsed = 0.0
    for t in range(timestamps):
        tick_start = time.perf_counter()
        for stream_id, stream in workload.streams.items():
            apply_operation(mirrors[stream_id], stream.operations[t])
            spectral.update_stream(stream_id, mirrors[stream_id])
        candidates += len(spectral.candidates())
        elapsed += time.perf_counter() - tick_start
    pairs = timestamps * len(workload.streams) * len(workload.queries)
    result.add(
        filter="spectral (GCoding-like)",
        avg_time_ms=elapsed / timestamps * 1000 if timestamps else 0.0,
        candidate_ratio=candidates / pairs if pairs else 0.0,
        timestamps=timestamps,
    )
    result.notes.append(
        "expected shape: under temporal locality the spectral refresh "
        "(eigendecompositions per vertex per timestamp) costs far more "
        "than incremental NPV maintenance — the related-work argument "
        "for not using GCoding on streams (on churn-heavy workloads "
        "vectorized eigensolves can locally win; see EXPERIMENTS.md)"
    )
    return result


def main() -> None:
    """Run at the environment-selected scale and print the table."""
    run().print()


if __name__ == "__main__":
    main()
