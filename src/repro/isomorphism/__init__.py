"""Exact isomorphism machinery: the VF2-style matcher used as ground truth."""

from .vf2 import (
    SubgraphMatcher,
    are_isomorphic,
    find_all_subgraph_isomorphisms,
    find_subgraph_isomorphism,
    is_subgraph_isomorphic,
)

__all__ = [
    "SubgraphMatcher",
    "are_isomorphic",
    "find_all_subgraph_isomorphisms",
    "find_subgraph_isomorphism",
    "is_subgraph_isomorphic",
]
