"""Exact subgraph isomorphism (Definition 2.3 of the paper).

A subgraph isomorphism from query ``Q`` into target ``G`` is an injective
mapping ``f`` of vertices such that vertex labels are preserved and every
query edge ``(u, v)`` maps to a target edge ``(f(u), f(v))`` with the same
edge label.  This is *monomorphism* semantics (non-edges of ``Q`` may map
onto edges of ``G``), exactly as the paper defines it.

The matcher is a VF2-style backtracking search with:

* a static query vertex order that keeps the matched part connected and
  visits rare-labeled, high-degree vertices first;
* candidate generation from the neighborhood of already-matched vertices
  (falling back to a label index for vertices starting a new component);
* degree and label-neighborhood pruning at every extension.

It is the ground-truth oracle for all effectiveness experiments and the
optional verification stage behind the streaming filter.
"""

from __future__ import annotations

from typing import Iterator

from ..graph.labeled_graph import Label, LabeledGraph, VertexId

Mapping = dict[VertexId, VertexId]


class SubgraphMatcher:
    """Reusable matcher for one target graph.

    Pre-computes per-label vertex lists and per-vertex label-degree
    signatures of the target so repeated queries (the common case in the
    experiment harness) avoid rescanning the target.
    """

    def __init__(self, target: LabeledGraph) -> None:
        self.target = target
        self._by_label: dict[Label, list[VertexId]] = {}
        self._signature: dict[VertexId, dict[tuple[Label, Label], int]] = {}
        for vertex, label in target.vertex_items():
            self._by_label.setdefault(label, []).append(vertex)
            self._signature[vertex] = _label_degree_signature(target, vertex)

    # ------------------------------------------------------------------
    def is_subgraph(self, query: LabeledGraph) -> bool:
        """True iff ``query`` is subgraph isomorphic to the target."""
        return next(self.find_all(query), None) is not None

    def find(self, query: LabeledGraph) -> Mapping | None:
        """One subgraph isomorphism mapping, or ``None``."""
        return next(self.find_all(query), None)

    def find_all(self, query: LabeledGraph, limit: int | None = None) -> Iterator[Mapping]:
        """Yield subgraph isomorphism mappings (up to ``limit``)."""
        if query.num_vertices == 0:
            yield {}
            return
        if query.num_vertices > self.target.num_vertices:
            return
        if query.num_edges > self.target.num_edges:
            return
        if not self._labels_feasible(query):
            return

        order = _query_order(query)
        mapping: Mapping = {}
        used: set[VertexId] = set()
        count = 0
        for full in self._extend(query, order, 0, mapping, used):
            yield dict(full)
            count += 1
            if limit is not None and count >= limit:
                return

    # ------------------------------------------------------------------
    def _labels_feasible(self, query: LabeledGraph) -> bool:
        """Cheap necessary condition: enough target vertices per label."""
        target_histogram: dict[Label, int] = {
            label: len(vertices) for label, vertices in self._by_label.items()
        }
        for label, needed in query.label_histogram().items():
            if target_histogram.get(label, 0) < needed:
                return False
        return True

    def _candidates(
        self, query: LabeledGraph, vertex: VertexId, mapping: Mapping, used: set[VertexId]
    ) -> Iterator[VertexId]:
        """Target vertices that could host query ``vertex`` next."""
        label = query.vertex_label(vertex)
        mapped_neighbors = [n for n in query.neighbors(vertex) if n in mapping]
        if mapped_neighbors:
            # Every mapped query neighbor constrains the image to the target
            # neighborhood of its image; intersect starting from the
            # smallest neighborhood.
            anchor = min(mapped_neighbors, key=lambda n: self.target.degree(mapping[n]))
            anchor_image = mapping[anchor]
            required = query.edge_label(vertex, anchor)
            for candidate, edge_label in self.target.neighbor_items(anchor_image):
                if (
                    edge_label == required
                    and candidate not in used
                    and self.target.vertex_label(candidate) == label
                ):
                    yield candidate
        else:
            for candidate in self._by_label.get(label, ()):
                if candidate not in used:
                    yield candidate

    def _feasible(
        self, query: LabeledGraph, vertex: VertexId, candidate: VertexId, mapping: Mapping
    ) -> bool:
        """Check all already-mapped constraints plus lookahead pruning."""
        if self.target.degree(candidate) < query.degree(vertex):
            return False
        for neighbor, edge_label in query.neighbor_items(vertex):
            if neighbor in mapping:
                image = mapping[neighbor]
                if not self.target.has_edge(candidate, image):
                    return False
                if self.target.edge_label(candidate, image) != edge_label:
                    return False
        # Lookahead: the candidate must offer at least as many
        # (edge label, neighbor label) incidences as the query vertex needs.
        candidate_signature = self._signature[candidate]
        for key, needed in _label_degree_signature(query, vertex).items():
            if candidate_signature.get(key, 0) < needed:
                return False
        return True

    def _extend(
        self,
        query: LabeledGraph,
        order: list[VertexId],
        depth: int,
        mapping: Mapping,
        used: set[VertexId],
    ) -> Iterator[Mapping]:
        if depth == len(order):
            yield mapping
            return
        vertex = order[depth]
        for candidate in self._candidates(query, vertex, mapping, used):
            if self._feasible(query, vertex, candidate, mapping):
                mapping[vertex] = candidate
                used.add(candidate)
                yield from self._extend(query, order, depth + 1, mapping, used)
                del mapping[vertex]
                used.discard(candidate)


def _label_degree_signature(
    graph: LabeledGraph, vertex: VertexId
) -> dict[tuple[Label, Label], int]:
    """Multiset of ``(edge label, neighbor label)`` pairs around ``vertex``."""
    signature: dict[tuple[Label, Label], int] = {}
    for neighbor, edge_label in graph.neighbor_items(vertex):
        key = (edge_label, graph.vertex_label(neighbor))
        signature[key] = signature.get(key, 0) + 1
    return signature


def _query_order(query: LabeledGraph) -> list[VertexId]:
    """Static match order: connected expansion, high degree first."""
    remaining = set(query.vertices())
    order: list[VertexId] = []
    frontier_scores: dict[VertexId, int] = {}

    def pick_root() -> VertexId:
        return max(remaining, key=lambda v: (query.degree(v), str(v)))

    while remaining:
        if not frontier_scores:
            root = pick_root()
        else:
            root = max(
                frontier_scores,
                key=lambda v: (frontier_scores[v], query.degree(v), str(v)),
            )
            del frontier_scores[root]
        order.append(root)
        remaining.discard(root)
        for neighbor in query.neighbors(root):
            if neighbor in remaining:
                frontier_scores[neighbor] = frontier_scores.get(neighbor, 0) + 1
        frontier_scores = {v: s for v, s in frontier_scores.items() if v in remaining}
    return order


# ----------------------------------------------------------------------
# convenience functions
# ----------------------------------------------------------------------
def is_subgraph_isomorphic(query: LabeledGraph, target: LabeledGraph) -> bool:
    """True iff ``query`` is subgraph isomorphic to ``target``."""
    return SubgraphMatcher(target).is_subgraph(query)


def find_subgraph_isomorphism(query: LabeledGraph, target: LabeledGraph) -> Mapping | None:
    """One query-to-target vertex mapping, or ``None`` if none exists."""
    return SubgraphMatcher(target).find(query)


def find_all_subgraph_isomorphisms(
    query: LabeledGraph, target: LabeledGraph, limit: int | None = None
) -> list[Mapping]:
    """All (or the first ``limit``) subgraph isomorphism mappings."""
    return list(SubgraphMatcher(target).find_all(query, limit=limit))


def are_isomorphic(a: LabeledGraph, b: LabeledGraph) -> bool:
    """Exact graph isomorphism via two-sided subgraph checks on equal sizes."""
    if a.num_vertices != b.num_vertices or a.num_edges != b.num_edges:
        return False
    if a.label_histogram() != b.label_histogram():
        return False
    return is_subgraph_isomorphic(a, b)
