"""The sharded stream-monitoring coordinator.

:class:`ShardedMonitor` presents the :class:`~repro.core.StreamMonitor`
surface (``add_stream`` / ``apply`` / ``matches`` / ``events`` /
``stats``) while fanning the work out over N worker processes, each
owning a disjoint shard of the streams (consistent hash on stream id,
:mod:`repro.runtime.router`) with a private monitor over the shared
query set.  Because streams are independent (Definition 2.8), the union
of per-worker candidate sets *is* the global candidate set — sharding
changes where the work happens, never the answer.

**Backpressure.**  Worker inboxes are bounded queues.  When one fills,
the configured policy decides what ``apply`` does:

* ``"block"`` (default) — wait for the worker; lossless, applies source
  backpressure to the caller.
* ``"spill"`` — park overflow in an unbounded coordinator-side buffer,
  drained opportunistically and fully at every poll barrier; lossless,
  trades memory for caller latency.
* ``"drop"`` — discard the update and count it.  The only lossy policy:
  the no-false-negative guarantee then holds w.r.t. the *accepted*
  sub-stream only.  Control traffic (stream registration, polls,
  checkpoints) always blocks regardless of policy.

**Consistency.**  A poll is a per-worker FIFO barrier: the poll command
is enqueued behind every previously accepted update, so the aggregated
answer reflects exactly the updates accepted before the poll — the same
semantics as calling ``matches()`` on a single monitor after the same
``apply`` calls.

**Recovery.**  Every state-mutating command is journaled per shard
(:mod:`repro.runtime.recovery`); ``checkpoint()`` snapshots each worker
and truncates its journal.  A worker that dies — killed, OOMed, crashed
hardware — is respawned from its latest committed snapshot and the
journal tail is replayed, converging to exactly the state the lost
worker would have reached: no false negatives.  With ``auto_recover``
(default) this happens transparently inside the call that notices the
death.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Literal, Mapping

from .. import obs
from ..core.metrics import merge_counter_summaries
from ..core.monitor import MatchEvent, diff_polls, warn_poll_events_deprecated
from ..graph.labeled_graph import LabeledGraph
from ..graph.operations import EdgeChange, GraphChangeOperation
from ..join.base import Pair, QueryId, StreamId
from ..nnt.projection import DimensionScheme, PAPER_SCHEME
from .recovery import CheckpointStore, RecoveryLog, ShardJournal
from .router import ShardRouter
from .worker import (
    CMD_ADD_STREAM,
    CMD_APPLY,
    CMD_CHECKPOINT,
    CMD_POLL,
    CMD_REMOVE_STREAM,
    CMD_STATS,
    CMD_STOP,
    CMD_TRACE,
    STATE_COMMANDS,
    WorkerSpec,
    worker_main,
)

BackpressurePolicy = Literal["block", "drop", "spill"]
POLICIES: tuple[str, ...] = ("block", "drop", "spill")

#: How long a single response may take before we declare the runtime
#: wedged (workers answer polls in milliseconds; this only trips when
#: something is truly broken and the process is still technically alive).
RESPONSE_TIMEOUT_SECONDS = 300.0
_WAIT_SLICE_SECONDS = 0.2


class WorkerDied(RuntimeError):
    """A worker process exited without being asked to."""


class WorkerCrashed(RuntimeError):
    """A worker raised inside command processing (traceback attached)."""


@dataclass
class _WorkerHandle:
    """One live worker process and its queues."""

    shard_id: int
    process: multiprocessing.process.BaseProcess
    inbox: Any  # multiprocessing.Queue (bounded)
    outbox: Any  # multiprocessing.Queue (unbounded, responses/errors)

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def dispose(self) -> None:
        """Tear down a (possibly dead) worker's process and queues."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5)
        for channel in (self.inbox, self.outbox):
            channel.cancel_join_thread()
            channel.close()


class ShardedMonitor:
    """Multi-process drop-in for :class:`~repro.core.StreamMonitor`.

    Parameters mirror the single-process monitor, plus:

    num_workers:
        Worker process count (shard count).  Streams hash onto shards;
        with one worker the runtime degenerates to a supervised
        single-process monitor (still recoverable).
    queue_capacity:
        Bound on each worker inbox, in commands.
    backpressure:
        ``"block"`` / ``"drop"`` / ``"spill"`` — see the module
        docstring.
    checkpoint_dir:
        Root directory for shard snapshots; required for
        ``checkpoint()`` and for restore-based recovery (without it,
        recovery replays the journal from the shard's birth).
    checkpoint_every:
        Auto-checkpoint after this many accepted change batches
        (0 = manual checkpoints only).
    auto_recover:
        Respawn dead workers transparently inside the call that notices
        (default).  ``False`` raises :class:`WorkerDied` instead.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (fast, inherits the query set) and the platform
        default elsewhere.
    """

    def __init__(
        self,
        queries: Mapping[QueryId, LabeledGraph],
        method: str = "dsc",
        depth_limit: int = 3,
        scheme: DimensionScheme = PAPER_SCHEME,
        coalesce: bool = True,
        num_workers: int = 2,
        queue_capacity: int = 128,
        backpressure: str = "block",
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int = 0,
        auto_recover: bool = True,
        start_method: str | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {queue_capacity}")
        if backpressure not in POLICIES:
            raise ValueError(
                f"backpressure must be one of {POLICIES}, got {backpressure!r}"
            )
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if checkpoint_every and checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        self.spec = WorkerSpec(
            queries=dict(queries),
            method=method.lower(),
            depth_limit=depth_limit,
            scheme=scheme,
            coalesce=coalesce,
        )
        self.num_workers = num_workers
        self.queue_capacity = queue_capacity
        self.backpressure = backpressure
        self.checkpoint_every = checkpoint_every
        self.auto_recover = auto_recover
        if start_method is None and "fork" in multiprocessing.get_all_start_methods():
            start_method = "fork"
        self._ctx = multiprocessing.get_context(start_method)
        self.router = ShardRouter(num_workers)
        self.store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
        self.recovery_log = RecoveryLog()
        self._journals = {shard: ShardJournal() for shard in range(num_workers)}
        self._spill: dict[int, list[tuple]] = {shard: [] for shard in range(num_workers)}
        self._streams: dict[StreamId, int] = {}
        self._last_poll: set[Pair] = set()
        self._request_counter = 0
        self._dropped = 0
        self._spilled = 0
        self._accepted_batches = 0
        self._batches_since_checkpoint = 0
        self._closed = False
        # Name this process's track in exported traces before workers
        # fork (forked children overwrite the label with shard-<k>).
        obs.set_process_label("coordinator")
        self._workers: dict[int, _WorkerHandle] = {
            shard: self._spawn(shard, self.spec) for shard in range(num_workers)
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, shard_id: int, spec: WorkerSpec) -> _WorkerHandle:
        inbox = self._ctx.Queue(maxsize=self.queue_capacity)
        outbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(shard_id, spec, inbox, outbox),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        process.start()
        return _WorkerHandle(shard_id, process, inbox, outbox)

    def close(self) -> None:
        """Stop every worker and release their queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers.values():
            if handle.is_alive():
                try:
                    self._put_blocking(handle, (CMD_STOP, self._next_request()))
                    self._await_response(handle, CMD_STOP)
                except (WorkerDied, WorkerCrashed, TimeoutError):
                    pass
            handle.process.join(timeout=5)
            handle.dispose()

    def __enter__(self) -> "ShardedMonitor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("ShardedMonitor is closed")

    # ------------------------------------------------------------------
    # stream lifecycle
    # ------------------------------------------------------------------
    def add_stream(self, stream_id: StreamId, initial: LabeledGraph | None = None) -> None:
        """Start monitoring a stream on its hash-assigned shard."""
        self._ensure_open()
        if stream_id in self._streams:
            raise ValueError(f"stream {stream_id!r} is already monitored")
        shard = self.router.shard_for(stream_id)
        self._submit_control(shard, (CMD_ADD_STREAM, stream_id, initial))
        self._streams[stream_id] = shard

    def remove_stream(self, stream_id: StreamId) -> None:
        """Stop monitoring a stream and free its shard-local state."""
        self._ensure_open()
        shard = self._streams.pop(stream_id)
        self._submit_control(shard, (CMD_REMOVE_STREAM, stream_id))
        self._last_poll = {pair for pair in self._last_poll if pair[0] != stream_id}

    def stream_ids(self) -> list[StreamId]:
        """Ids of the currently monitored streams."""
        return list(self._streams)

    def query_ids(self) -> list[QueryId]:
        """Ids of the (fixed) monitored patterns."""
        return list(self.spec.queries)

    def shard_of(self, stream_id: StreamId) -> int:
        """Which shard owns a registered stream."""
        return self._streams[stream_id]

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def apply(
        self, stream_id: StreamId, update: GraphChangeOperation | EdgeChange
    ) -> bool:
        """Route one edge change / timestamp batch to the owning shard.

        Returns True when the update was accepted (always, except under
        the ``"drop"`` policy with a full inbox).
        """
        self._ensure_open()
        if stream_id not in self._streams:
            raise KeyError(f"stream {stream_id!r} is not monitored")
        shard = self._streams[stream_id]
        with obs.span("runtime.submit", shard=shard):
            accepted = self._submit_update(shard, (CMD_APPLY, stream_id, update))
        if accepted:
            self._accepted_batches += 1
            self._batches_since_checkpoint += 1
            if (
                self.checkpoint_every
                and self._batches_since_checkpoint >= self.checkpoint_every
            ):
                self.checkpoint()
        return accepted

    def apply_many(
        self, updates: Mapping[StreamId, GraphChangeOperation | EdgeChange]
    ) -> int:
        """Apply one timestamp's updates across streams; returns how
        many were accepted."""
        return sum(1 for sid, update in updates.items() if self.apply(sid, update))

    # ------------------------------------------------------------------
    # submission / backpressure
    # ------------------------------------------------------------------
    def _next_request(self) -> int:
        self._request_counter += 1
        return self._request_counter

    def _handle_for(self, shard: int) -> _WorkerHandle:
        handle = self._workers[shard]
        if not handle.is_alive():
            if not self.auto_recover:
                raise WorkerDied(f"shard {shard} worker died (auto_recover off)")
            self.recover(shard)
            handle = self._workers[shard]
        return handle

    def _put_blocking(self, handle: _WorkerHandle, command: tuple) -> None:
        """Enqueue, waiting out a full inbox; detect death while waiting."""
        while True:
            try:
                handle.inbox.put(command, timeout=_WAIT_SLICE_SECONDS)
                return
            except queue_module.Full:
                if not handle.is_alive():
                    raise WorkerDied(
                        f"shard {handle.shard_id} worker died with a full inbox"
                    ) from None

    def _submit_control(self, shard: int, command: tuple) -> None:
        """Control traffic: always lossless and blocking.

        The wire carries the trace-stamped envelope; the journal records
        the *base* command, so recovery replays open fresh traces
        instead of parenting to spans that ended before the respawned
        worker was born.
        """
        envelope = obs.stamp_envelope(command)
        for attempt in (0, 1):
            handle = self._handle_for(shard)
            try:
                self._put_blocking(handle, envelope)
                break
            except WorkerDied:
                if not self.auto_recover or attempt:
                    raise
                # _handle_for will respawn on the retry.
        if command[0] in STATE_COMMANDS:
            self._journals[shard].record(command)

    def _submit_update(self, shard: int, command: tuple) -> bool:
        """Data traffic: subject to the configured backpressure policy.

        Stamped envelopes travel the wire (and wait in the spill buffer,
        keeping the submit-time trace context); journals record base
        commands — see :meth:`_submit_control`.
        """
        envelope = obs.stamp_envelope(command)
        handle = self._handle_for(shard)
        if self.backpressure == "block":
            try:
                self._put_blocking(handle, envelope)
            except WorkerDied:
                if not self.auto_recover:
                    raise
                self.recover(shard)
                self._put_blocking(self._workers[shard], envelope)
        elif self.backpressure == "drop":
            try:
                handle.inbox.put_nowait(envelope)
            except queue_module.Full:
                self._dropped += 1
                if obs.enabled():
                    obs.counter(
                        "runtime.dropped",
                        help="updates discarded by the drop backpressure policy",
                    ).inc()
                return False
        else:  # spill
            spill = self._spill[shard]
            if spill:
                spill.append(envelope)
                self._spilled += 1
                self._record_spilled()
                self._drain_spill(shard, block=False)
                self._journals[shard].record(command)
                return True
            try:
                handle.inbox.put_nowait(envelope)
            except queue_module.Full:
                spill.append(envelope)
                self._spilled += 1
                self._record_spilled()
                self._journals[shard].record(command)
                return True
        self._journals[shard].record(command)
        return True

    @staticmethod
    def _record_spilled() -> None:
        if obs.enabled():
            obs.counter(
                "runtime.spilled",
                help="updates parked in the coordinator spill buffer",
            ).inc()

    def _drain_spill(self, shard: int, block: bool) -> None:
        """Move parked commands into the worker inbox, preserving order.

        Spilled commands are already journaled; recovery clears the park
        buffer and replays the journal instead, so death mid-drain loses
        nothing.
        """
        spill = self._spill[shard]
        while spill:
            handle = self._handle_for(shard)
            try:
                if block:
                    self._put_blocking(handle, spill[0])
                else:
                    handle.inbox.put_nowait(spill[0])
            except queue_module.Full:
                return
            except WorkerDied:
                if not self.auto_recover:
                    raise
                self.recover(shard)
                return  # recover() already replayed the journal (incl. spill)
            spill.pop(0)

    def _barrier(self) -> None:
        """Make every accepted update deliverable: drain all spill buffers."""
        for shard in self._spill:
            self._drain_spill(shard, block=True)

    # ------------------------------------------------------------------
    # request/response
    # ------------------------------------------------------------------
    def _await_response(self, handle: _WorkerHandle, kind: str) -> tuple:
        waited = 0.0
        while True:
            try:
                response = handle.outbox.get(timeout=_WAIT_SLICE_SECONDS)
            except queue_module.Empty:
                waited += _WAIT_SLICE_SECONDS
                if not handle.is_alive():
                    raise WorkerDied(
                        f"shard {handle.shard_id} worker died before answering {kind}"
                    ) from None
                if waited >= RESPONSE_TIMEOUT_SECONDS:
                    raise TimeoutError(
                        f"shard {handle.shard_id} did not answer {kind} within "
                        f"{RESPONSE_TIMEOUT_SECONDS}s"
                    ) from None
                continue
            if response[0] == "error":
                raise WorkerCrashed(
                    f"shard {handle.shard_id} worker crashed:\n{response[3]}"
                )
            if response[0] == kind:
                return response
            # Stale response from a pre-recovery request on a reused
            # handle cannot happen (queues are per-spawn); anything else
            # is a protocol bug worth failing loudly on.
            raise RuntimeError(f"unexpected worker response {response[:2]!r}")

    def _request(self, shard: int, kind: str, *extra: object) -> tuple:
        """Send one control request and await its tagged response,
        recovering once if the worker dies in between."""
        for attempt in (0, 1):
            handle = self._handle_for(shard)
            request_id = self._next_request()
            try:
                self._put_blocking(
                    handle, obs.stamp_envelope((kind, request_id, *extra))
                )
                return self._await_response(handle, kind)
            except WorkerDied:
                if not self.auto_recover or attempt:
                    raise
                self.recover(shard)
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def matches(self) -> set[Pair]:
        """The global candidate set: the union of every worker's
        *possible joinable* pairs, consistent with all accepted updates
        (poll = FIFO barrier per worker)."""
        self._ensure_open()
        with obs.span("runtime.matches"):
            self._barrier()
            aggregated: set[Pair] = set()
            for shard in self._workers:
                response = self._request(shard, CMD_POLL)
                aggregated.update(response[3])
        return aggregated

    def is_match(self, stream_id: StreamId, query_id: QueryId) -> bool:
        """Does one pair currently pass the filter?"""
        return (stream_id, query_id) in self.matches()

    def events(self) -> list[MatchEvent]:
        """Appeared/vanished transitions since the previous
        :meth:`events` call — identical semantics and format to
        :meth:`repro.core.StreamMonitor.events`."""
        current = self.matches()
        events = diff_polls(self._last_poll, current)
        self._last_poll = current
        return events

    def poll_events(self) -> list[MatchEvent]:
        """Deprecated alias for :meth:`events` (same semantics; warns
        once per process)."""
        warn_poll_events_deprecated(type(self).__name__)
        return self.events()

    def trace_spans(self) -> list[obs.SpanRecord]:
        """Every collected span across the fleet: the coordinator's own
        ring plus each worker's (shipped over :data:`CMD_TRACE`).  All
        records share the ``perf_counter`` timebase, and worker-side
        root spans carry the coordinator-side parent ids stamped on the
        command envelopes — the raw material of ``repro trace``."""
        self._ensure_open()
        records: list[obs.SpanRecord] = list(obs.spans())
        for shard in self._workers:
            response = self._request(shard, CMD_TRACE)
            records.extend(response[3])
        return records

    def inbox_depths(self) -> dict[int, int]:
        """Best-effort pending-command count per worker inbox (``qsize``
        is approximate by nature; -1 where the platform lacks it)."""
        depths: dict[int, int] = {}
        for shard, handle in self._workers.items():
            try:
                depths[shard] = handle.inbox.qsize()
            except (NotImplementedError, OSError):
                depths[shard] = -1
        return depths

    def stats(self) -> dict[str, Any]:
        """Coordinator + per-worker statistics: routing and backpressure
        counters, the recovery log, each worker's
        :class:`~repro.core.metrics.ShardCounters` and monitor stats,
        the merged fleet throughput view, and the merged observability
        registries (``merged_obs``: every worker's instruments plus the
        coordinator's own, combined with :func:`repro.obs.merge_summaries`)."""
        self._ensure_open()
        self._barrier()
        workers: dict[int, dict[str, Any]] = {}
        for shard in self._workers:
            response = self._request(shard, CMD_STATS)
            payload = dict(response[3])
            payload["pid"] = self._workers[shard].process.pid
            payload["alive"] = self._workers[shard].is_alive()
            payload["journal_len"] = len(self._journals[shard])
            workers[shard] = payload
        shard_streams: dict[int, int] = {shard: 0 for shard in self._workers}
        for shard in self._streams.values():
            shard_streams[shard] += 1
        depths = self.inbox_depths()
        if obs.enabled():
            obs.gauge(
                "runtime.inbox_depth",
                help="pending commands across all worker inboxes",
            ).set(sum(depth for depth in depths.values() if depth > 0))
        return {
            "num_workers": self.num_workers,
            "num_streams": len(self._streams),
            "num_queries": len(self.spec.queries),
            "method": self.spec.method,
            "backpressure": {
                "policy": self.backpressure,
                "queue_capacity": self.queue_capacity,
                "accepted_batches": self._accepted_batches,
                "dropped": self._dropped,
                "spilled": self._spilled,
                "parked": sum(len(spill) for spill in self._spill.values()),
            },
            "recovery": self.recovery_log.summary(),
            "streams_per_shard": shard_streams,
            "inbox_depths": depths,
            "workers": workers,
            "merged_counters": merge_counter_summaries(
                payload["counters"] for payload in workers.values()
            ),
            "merged_obs": obs.merge_summaries(
                [payload.get("obs", {}) for payload in workers.values()]
                + [obs.get_registry().summary()]
            ),
        }

    # ------------------------------------------------------------------
    # checkpointing and recovery
    # ------------------------------------------------------------------
    def checkpoint(self) -> list[dict[str, Any]]:
        """Snapshot every shard and truncate the journals; returns one
        :func:`~repro.core.checkpoint.checkpoint_stats` dict per shard."""
        self._ensure_open()
        if self.store is None:
            raise RuntimeError("checkpoint() requires checkpoint_dir")
        self._barrier()
        results = []
        for shard in self._workers:
            journal = self._journals[shard]
            sequence = journal.sequence
            target = self.store.prepare(shard, sequence)
            note = {
                "shard_id": shard,
                "num_shards": self.num_workers,
                "sequence": sequence,
            }
            response = self._request(shard, CMD_CHECKPOINT, str(target), note)
            self.store.commit(shard, sequence)
            journal.truncate()
            self.recovery_log.checkpoints += 1
            results.append(response[3])
        self._batches_since_checkpoint = 0
        return results

    def recover(self, shard: int) -> None:
        """Respawn one shard's worker from its latest committed snapshot
        (or from scratch) and replay the journal tail."""
        self._ensure_open()
        old = self._workers[shard]
        old.dispose()
        restore_dir = None
        if self.store is not None:
            latest = self.store.latest_dir(shard)
            if latest is not None:
                restore_dir = str(latest)
        # Journaled-but-undelivered spill is replayed from the journal.
        self._spill[shard] = []
        handle = self._spawn(shard, self.spec.restored(restore_dir))
        self._workers[shard] = handle
        journal = self._journals[shard]
        for command in journal.entries:
            self._put_blocking(handle, command)
        self.recovery_log.recoveries += 1
        self.recovery_log.replayed_commands += len(journal)

    def recover_dead(self) -> list[int]:
        """Respawn every dead worker; returns the recovered shard ids."""
        recovered = []
        for shard, handle in self._workers.items():
            if not handle.is_alive():
                self.recover(shard)
                recovered.append(shard)
        return recovered

    def worker_pids(self) -> dict[int, int | None]:
        """Shard id -> worker process pid (for supervision and tests)."""
        return {shard: handle.process.pid for shard, handle in self._workers.items()}
