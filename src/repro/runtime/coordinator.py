"""The sharded stream-monitoring coordinator.

:class:`ShardedMonitor` presents the :class:`~repro.core.StreamMonitor`
surface (``add_stream`` / ``apply`` / ``matches`` / ``events`` /
``stats``) while fanning the work out over N worker processes, each
owning a disjoint shard of the streams (consistent hash on stream id,
:mod:`repro.runtime.router`) with a private monitor over the shared
query set.  Because streams are independent (Definition 2.8), the union
of per-worker candidate sets *is* the global candidate set — sharding
changes where the work happens, never the answer.

**Backpressure.**  Worker inboxes are bounded queues.  When one fills,
the configured policy decides what ``apply`` does:

* ``"block"`` (default) — wait for the worker; lossless, applies source
  backpressure to the caller.
* ``"spill"`` — park overflow in an unbounded coordinator-side buffer,
  drained opportunistically and fully at every poll barrier; lossless,
  trades memory for caller latency.
* ``"drop"`` — discard the update and count it.  The only lossy policy:
  the no-false-negative guarantee then holds w.r.t. the *accepted*
  sub-stream only.  Control traffic (stream registration, polls,
  checkpoints) always blocks regardless of policy.

**Consistency.**  A poll is a per-worker FIFO barrier: the poll command
is enqueued behind every previously accepted update, so the aggregated
answer reflects exactly the updates accepted before the poll — the same
semantics as calling ``matches()`` on a single monitor after the same
``apply`` calls.

**Recovery.**  Every state-mutating command is journaled per shard
(:mod:`repro.runtime.recovery`); ``checkpoint()`` snapshots each worker
and truncates its journal.  A worker that dies — killed, OOMed, crashed
hardware — is respawned from its latest committed snapshot and the
journal tail is replayed, converging to exactly the state the lost
worker would have reached: no false negatives.  With ``auto_recover``
(default) this happens transparently inside the call that notices the
death.

**Shared-memory plane** (``shm=True``).  Each worker keeps its matrix
engine's dense NPV rows in :mod:`repro.runtime.shm` segments, and each
shard gets a coordinator->worker payload ring: ``apply`` pickles the
update once into the ring and the inbox queue carries a fixed-size
:class:`~repro.runtime.shm.RingRef` instead of the payload — the
``runtime.bytes_pickled`` counter shows the difference.  Journals keep
recording the *inline* payloads, so recovery and the loss guarantees
are unchanged.

**Elastic resharding.**  :meth:`rescale` grows or shrinks the worker
pool live: behind a routing barrier, every stream whose consistent-hash
owner changes is exported from its old shard (a FIFO-ordered graph
export, so every accepted update is folded in) and re-registered —
journaled — on its new one.  The union-of-shards answer is preserved at
every poll, and a worker killed mid-rescale recovers from journal +
checkpoint exactly like any other death.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
from collections import deque
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Iterable, Literal, Mapping

from .. import obs
from ..core.metrics import Stopwatch, merge_counter_summaries
from ..core.monitor import MatchEvent, diff_polls, warn_poll_events_deprecated
from ..graph.labeled_graph import LabeledGraph
from ..graph.operations import EdgeChange, GraphChangeOperation
from ..join.base import Pair, QueryId, StreamId
from ..nnt.projection import DimensionScheme, PAPER_SCHEME
from .recovery import CheckpointStore, RecoveryLog, ShardJournal
from .router import ShardRouter
from .shm import (
    DEFAULT_RING_CAPACITY,
    PlaneDescriptor,
    PlaneReader,
    ShmRing,
    StaleSegment,
    cleanup_segments,
)
from .worker import (
    CMD_ADD_STREAM,
    CMD_APPLY,
    CMD_CHECKPOINT,
    CMD_DEREGISTER_QUERY,
    CMD_EXPORT_STREAM,
    CMD_NPV,
    CMD_POLL,
    CMD_REGISTER_QUERY,
    CMD_REMOVE_STREAM,
    CMD_STATS,
    CMD_STOP,
    CMD_TRACE,
    STATE_COMMANDS,
    WorkerSpec,
    worker_main,
)

#: Distinguishes shared-memory namespaces when one process hosts several
#: coordinators (pid alone is not enough); plain counter per RP010.
_INSTANCE_COUNTER = 0

BackpressurePolicy = Literal["block", "drop", "spill"]
POLICIES: tuple[str, ...] = ("block", "drop", "spill")

#: How long a single response may take before we declare the runtime
#: wedged (workers answer polls in milliseconds; this only trips when
#: something is truly broken and the process is still technically alive).
RESPONSE_TIMEOUT_SECONDS = 300.0
_WAIT_SLICE_SECONDS = 0.2


class WorkerDied(RuntimeError):
    """A worker process exited without being asked to."""


class WorkerCrashed(RuntimeError):
    """A worker raised inside command processing (traceback attached)."""


@dataclass
class _WorkerHandle:
    """One live worker process and its queues."""

    shard_id: int
    process: multiprocessing.process.BaseProcess
    inbox: Any  # multiprocessing.Queue (bounded)
    outbox: Any  # multiprocessing.Queue (unbounded, responses/errors)

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def dispose(self) -> None:
        """Tear down a (possibly dead) worker's process and queues."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5)
        for channel in (self.inbox, self.outbox):
            channel.cancel_join_thread()
            channel.close()


class ShardedMonitor:
    """Multi-process drop-in for :class:`~repro.core.StreamMonitor`.

    Parameters mirror the single-process monitor, plus:

    num_workers:
        Worker process count (shard count).  Streams hash onto shards;
        with one worker the runtime degenerates to a supervised
        single-process monitor (still recoverable).
    queue_capacity:
        Bound on each worker inbox, in commands.
    backpressure:
        ``"block"`` / ``"drop"`` / ``"spill"`` — see the module
        docstring.
    checkpoint_dir:
        Root directory for shard snapshots; required for
        ``checkpoint()`` and for restore-based recovery (without it,
        recovery replays the journal from the shard's birth).
    checkpoint_every:
        Auto-checkpoint after this many accepted change batches
        (0 = manual checkpoints only).
    auto_recover:
        Respawn dead workers transparently inside the call that notices
        (default).  ``False`` raises :class:`WorkerDied` instead.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (fast, inherits the query set) and the platform
        default elsewhere.
    shm:
        Enable the shared-memory NPV plane and per-shard payload rings
        (see the module docstring).  Most effective with
        ``method="matrix"`` (the plane holds its dense rows); other
        engines still benefit from ring-borne apply payloads.
    ring_capacity:
        Payload bytes per shard ring (``shm=True`` only).  A full ring
        falls back to inline payloads — lossless, just counted on
        ``shm.ring_overflow``.
    flight_dir:
        Directory for per-shard flight-recorder journals
        (``flight-shard<N>.jsonl``, flushed per command so they survive
        SIGKILL) and crash/SIGUSR2 dumps.  ``None`` disables the
        recorder entirely.
    """

    def __init__(
        self,
        queries: Mapping[QueryId, LabeledGraph],
        method: str = "dsc",
        depth_limit: int = 3,
        scheme: DimensionScheme = PAPER_SCHEME,
        coalesce: bool = True,
        num_workers: int = 2,
        queue_capacity: int = 128,
        backpressure: str = "block",
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int = 0,
        auto_recover: bool = True,
        start_method: str | None = None,
        shm: bool = False,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        flight_dir: str | Path | None = None,
    ) -> None:
        global _INSTANCE_COUNTER
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {queue_capacity}")
        if backpressure not in POLICIES:
            raise ValueError(
                f"backpressure must be one of {POLICIES}, got {backpressure!r}"
            )
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if checkpoint_every and checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        if ring_capacity < 1:
            raise ValueError(f"ring_capacity must be >= 1, got {ring_capacity}")
        self.spec = WorkerSpec(
            queries=dict(queries),
            method=method.lower(),
            depth_limit=depth_limit,
            scheme=scheme,
            coalesce=coalesce,
            shm=shm,
            flight_dir=str(flight_dir) if flight_dir is not None else None,
        )
        self.num_workers = num_workers
        self.queue_capacity = queue_capacity
        self.backpressure = backpressure
        self.checkpoint_every = checkpoint_every
        self.auto_recover = auto_recover
        self.shm = shm
        self.ring_capacity = ring_capacity
        if start_method is None and "fork" in multiprocessing.get_all_start_methods():
            start_method = "fork"
        self._ctx = multiprocessing.get_context(start_method)
        self.router = ShardRouter(num_workers)
        self.store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
        self.recovery_log = RecoveryLog()
        self._journals = {shard: ShardJournal() for shard in range(num_workers)}
        self._spill: dict[int, deque[tuple]] = {
            shard: deque() for shard in range(num_workers)
        }
        self._streams: dict[StreamId, int] = {}
        # The *live* query set.  ``self.spec.queries`` stays frozen at
        # birth: a respawn restores checkpoint (whose manifest carries
        # the churned membership) or birth spec, then replays the
        # journal — which contains every register/deregister since — so
        # the two always reconverge to this dict.
        self._queries: dict[QueryId, LabeledGraph] = dict(queries)
        self._query_registrations = 0
        self._query_deregistrations = 0
        self._last_poll: set[Pair] = set()
        self._request_counter = 0
        self._dropped = 0
        self._spilled = 0
        self._accepted_batches = 0
        self._batches_since_checkpoint = 0
        self._closed = False
        _INSTANCE_COUNTER += 1
        self._shm_base = f"repro-{os.getpid()}m{_INSTANCE_COUNTER}"
        self._spawn_epoch = 0
        self._rings: dict[int, ShmRing] = {}
        self._segment_prefixes: dict[int, str] = {}
        self._plane_reader = PlaneReader() if shm else None
        self._npv_cache: dict[StreamId, PlaneDescriptor] = {}
        self._rescales = 0
        self._last_rescale_seconds = 0.0
        self._rescaling = False
        # Name this process's track in exported traces before workers
        # fork (forked children overwrite the label with shard-<k>).
        obs.set_process_label("coordinator")
        self._workers: dict[int, _WorkerHandle] = {
            shard: self._spawn(shard, self.spec) for shard in range(num_workers)
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _shm_spec(self, shard_id: int, spec: WorkerSpec) -> WorkerSpec:
        """Provision a fresh ring + segment namespace for one spawn.

        Per-spawn epochs keep a respawned worker's names disjoint from
        its SIGKILLed predecessor's; the predecessor's orphans are swept
        here, before the successor starts allocating.
        """
        if not self.shm:
            return spec
        self._spawn_epoch += 1
        epoch = self._spawn_epoch
        old_ring = self._rings.pop(shard_id, None)
        if old_ring is not None:
            old_ring.close(unlink=True)
        old_prefix = self._segment_prefixes.pop(shard_id, None)
        if old_prefix is not None:
            cleanup_segments(old_prefix)
        prefix = f"{self._shm_base}-plane{shard_id}e{epoch}"
        ring = ShmRing(f"{self._shm_base}-ring{shard_id}e{epoch}", self.ring_capacity)
        self._rings[shard_id] = ring
        self._segment_prefixes[shard_id] = prefix
        return replace(spec, ring=ring.name, segment_prefix=prefix)

    def _spawn(self, shard_id: int, spec: WorkerSpec) -> _WorkerHandle:
        spec = self._shm_spec(shard_id, spec)
        inbox = self._ctx.Queue(maxsize=self.queue_capacity)
        outbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(shard_id, spec, inbox, outbox),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        process.start()
        return _WorkerHandle(shard_id, process, inbox, outbox)

    def close(self) -> None:
        """Stop every worker and release their queues (idempotent).

        With ``shm=True`` this is also the leak boundary: workers unlink
        their own segments on a graceful stop, the coordinator unlinks
        the rings it created, and a final prefix sweep collects whatever
        a SIGKILLed worker left behind.
        """
        if self._closed:
            return
        self._closed = True
        for handle in self._workers.values():
            if handle.is_alive():
                try:
                    self._put_blocking(handle, (CMD_STOP, self._next_request()))
                    self._await_response(handle, CMD_STOP)
                except (WorkerDied, WorkerCrashed, TimeoutError):
                    pass
            handle.process.join(timeout=5)
            handle.dispose()
        for ring in self._rings.values():
            ring.close(unlink=True)
        self._rings.clear()
        if self._plane_reader is not None:
            self._plane_reader.close()
        if self.shm:
            cleanup_segments(self._shm_base)

    def __enter__(self) -> "ShardedMonitor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("ShardedMonitor is closed")

    # ------------------------------------------------------------------
    # stream lifecycle
    # ------------------------------------------------------------------
    def add_stream(self, stream_id: StreamId, initial: LabeledGraph | None = None) -> None:
        """Start monitoring a stream on its hash-assigned shard."""
        self._ensure_open()
        if stream_id in self._streams:
            raise ValueError(f"stream {stream_id!r} is already monitored")
        shard = self.router.shard_for(stream_id)
        self._submit_control(shard, (CMD_ADD_STREAM, stream_id, initial))
        self._streams[stream_id] = shard

    def remove_stream(self, stream_id: StreamId) -> None:
        """Stop monitoring a stream and free its shard-local state."""
        self._ensure_open()
        shard = self._streams.pop(stream_id)
        self._submit_control(shard, (CMD_REMOVE_STREAM, stream_id))
        self._last_poll = {pair for pair in self._last_poll if pair[0] != stream_id}

    def stream_ids(self) -> list[StreamId]:
        """Ids of the currently monitored streams."""
        return list(self._streams)

    def query_ids(self) -> list[QueryId]:
        """Ids of the currently monitored patterns."""
        return list(self._queries)

    # ------------------------------------------------------------------
    # query lifecycle
    # ------------------------------------------------------------------
    def register_query(self, query_id: QueryId, query: LabeledGraph) -> None:
        """Register a pattern live, with no false-negative window.

        The command rides the journaled control path to every shard
        (:data:`~repro.runtime.worker.CMD_REGISTER_QUERY` is a state
        command): each worker's FIFO inbox guarantees its registration
        snapshot reflects every update accepted before this call
        returns, and a worker SIGKILLed mid-registration replays the
        command from its journal — the query lands fully present or,
        if the call itself never completed on that shard, fully absent.
        """
        self._ensure_open()
        if query_id in self._queries:
            raise ValueError(f"query {query_id!r} is already monitored")
        with Stopwatch() as timer:
            with obs.span("runtime.register_query", query=str(query_id)):
                for shard in sorted(self._workers):
                    self._submit_control(shard, (CMD_REGISTER_QUERY, query_id, query))
        self._queries[query_id] = query
        self._query_registrations += 1
        if obs.enabled():
            obs.histogram(
                "query.register.seconds",
                help="live query registration latency",
            ).observe(timer.total)
            obs.counter(
                "runtime.query_registrations", help="queries registered live"
            ).inc()
            obs.gauge(
                "queries_registered", help="currently monitored queries"
            ).set(len(self._queries))

    def deregister_query(self, query_id: QueryId) -> None:
        """Drop a pattern on every shard, retiring its engine rows and
        purging its pending per-query poll state."""
        self._ensure_open()
        if query_id not in self._queries:
            raise KeyError(f"query {query_id!r} is not monitored")
        with obs.span("runtime.deregister_query", query=str(query_id)):
            for shard in sorted(self._workers):
                self._submit_control(shard, (CMD_DEREGISTER_QUERY, query_id))
        del self._queries[query_id]
        self._query_deregistrations += 1
        self._last_poll = {pair for pair in self._last_poll if pair[1] != query_id}
        if obs.enabled():
            obs.counter(
                "runtime.query_deregistrations", help="queries deregistered live"
            ).inc()
            obs.gauge(
                "queries_registered", help="currently monitored queries"
            ).set(len(self._queries))

    def add_query(self, query_id: QueryId, query: LabeledGraph) -> None:
        """Alias of :meth:`register_query` (StreamMonitor parity)."""
        self.register_query(query_id, query)

    def remove_query(self, query_id: QueryId) -> None:
        """Alias of :meth:`deregister_query` (StreamMonitor parity)."""
        self.deregister_query(query_id)

    def shard_of(self, stream_id: StreamId) -> int:
        """Which shard owns a registered stream."""
        return self._streams[stream_id]

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def apply(
        self, stream_id: StreamId, update: GraphChangeOperation | EdgeChange
    ) -> bool:
        """Route one edge change / timestamp batch to the owning shard.

        Returns True when the update was accepted (always, except under
        the ``"drop"`` policy with a full inbox).
        """
        self._ensure_open()
        if stream_id not in self._streams:
            raise KeyError(f"stream {stream_id!r} is not monitored")
        shard = self._streams[stream_id]
        with obs.span("runtime.submit", shard=shard):
            accepted = self._submit_update(shard, (CMD_APPLY, stream_id, update))
        if accepted:
            self._accepted_batches += 1
            self._batches_since_checkpoint += 1
            if (
                self.checkpoint_every
                and self._batches_since_checkpoint >= self.checkpoint_every
            ):
                self.checkpoint()
        return accepted

    def apply_many(
        self, updates: Mapping[StreamId, GraphChangeOperation | EdgeChange]
    ) -> int:
        """Apply one timestamp's updates across streams; returns how
        many were accepted."""
        return sum(1 for sid, update in updates.items() if self.apply(sid, update))

    # ------------------------------------------------------------------
    # submission / backpressure
    # ------------------------------------------------------------------
    def _next_request(self) -> int:
        self._request_counter += 1
        return self._request_counter

    def _handle_for(self, shard: int) -> _WorkerHandle:
        handle = self._workers[shard]
        if not handle.is_alive():
            if not self.auto_recover:
                raise WorkerDied(f"shard {shard} worker died (auto_recover off)")
            self.recover(shard)
            handle = self._workers[shard]
        return handle

    def _put_blocking(self, handle: _WorkerHandle, command: tuple) -> None:
        """Enqueue, waiting out a full inbox; detect death while waiting."""
        while True:
            try:
                handle.inbox.put(command, timeout=_WAIT_SLICE_SECONDS)
                return
            except queue_module.Full:
                if not handle.is_alive():
                    raise WorkerDied(
                        f"shard {handle.shard_id} worker died with a full inbox"
                    ) from None

    def _submit_control(self, shard: int, command: tuple) -> None:
        """Control traffic: always lossless and blocking.

        The wire carries the trace-stamped envelope; the journal records
        the *base* command, so recovery replays open fresh traces
        instead of parenting to spans that ended before the respawned
        worker was born.
        """
        envelope = obs.stamp_envelope(command)
        for attempt in (0, 1):
            handle = self._handle_for(shard)
            try:
                self._put_blocking(handle, envelope)
                break
            except WorkerDied:
                if not self.auto_recover or attempt:
                    raise
                # _handle_for will respawn on the retry.
        if command[0] in STATE_COMMANDS:
            self._journals[shard].record(command)

    def _wire_apply(self, shard: int, command: tuple) -> tuple:
        """The wire form of one apply: ``(envelope, ring_ref)``.

        With the shm plane on, the payload is pickled once into the
        shard's ring and the queue carries a fixed-size
        :class:`~repro.runtime.shm.RingRef`; a full ring falls back to
        the inline payload (lossless, counted on ``shm.ring_overflow``).
        ``runtime.bytes_pickled`` measures what actually crosses the
        queue either way — the quantity the shm bench gates on.
        """
        wire = command
        ref = None
        ring = self._rings.get(shard) if self.shm else None
        if ring is not None:
            payload = pickle.dumps(command[2])
            ref = ring.push(payload)
            if ref is not None:
                wire = (command[0], command[1], ref)
                if obs.enabled():
                    obs.counter(
                        "shm.ring_bytes",
                        help="payload bytes shipped via shared-memory rings",
                    ).inc(len(payload))
            elif obs.enabled():
                obs.counter(
                    "shm.ring_overflow",
                    help="apply payloads sent inline because the ring was full",
                ).inc()
        envelope = obs.stamp_envelope(wire)
        if obs.enabled():
            obs.counter(
                "runtime.bytes_pickled",
                help="bytes pickled onto worker inboxes by apply traffic",
            ).inc(len(pickle.dumps(envelope)))
        return envelope, ref

    def _submit_update(self, shard: int, command: tuple) -> bool:
        """Data traffic: subject to the configured backpressure policy.

        Stamped envelopes travel the wire (and wait in the spill buffer,
        keeping the submit-time trace context); journals record base
        commands — see :meth:`_submit_control`.  Ring-borne payloads are
        rolled back when dropped and re-wired after a recovery (the
        respawned worker gets a fresh ring, so a pre-death ref is dead).
        """
        handle = self._handle_for(shard)
        envelope, ref = self._wire_apply(shard, command)
        if self.backpressure == "block":
            try:
                self._put_blocking(handle, envelope)
            except WorkerDied:
                if not self.auto_recover:
                    raise
                self.recover(shard)
                envelope, ref = self._wire_apply(shard, command)
                self._put_blocking(self._workers[shard], envelope)
        elif self.backpressure == "drop":
            try:
                handle.inbox.put_nowait(envelope)
            except queue_module.Full:
                if ref is not None:
                    self._rings[shard].rollback(ref)
                self._dropped += 1
                if obs.enabled():
                    obs.counter(
                        "runtime.dropped",
                        help="updates discarded by the drop backpressure policy",
                    ).inc()
                return False
        else:  # spill
            spill = self._spill[shard]
            if spill:
                spill.append(envelope)
                self._spilled += 1
                self._record_spilled()
                self._drain_spill(shard, block=False)
                self._journals[shard].record(command)
                return True
            try:
                handle.inbox.put_nowait(envelope)
            except queue_module.Full:
                spill.append(envelope)
                self._spilled += 1
                self._record_spilled()
                self._journals[shard].record(command)
                return True
        self._journals[shard].record(command)
        return True

    @staticmethod
    def _record_spilled() -> None:
        if obs.enabled():
            obs.counter(
                "runtime.spilled",
                help="updates parked in the coordinator spill buffer",
            ).inc()

    def _drain_spill(self, shard: int, block: bool) -> None:
        """Move parked commands into the worker inbox, preserving order.

        Drains the whole buffer in one call whenever the inbox has room
        (``deque`` keeps the per-envelope cost O(1) however deep the
        backlog got); a full inbox ends the non-blocking drain early.
        Spilled commands are already journaled; recovery clears the park
        buffer and replays the journal instead, so death mid-drain loses
        nothing.
        """
        spill = self._spill[shard]
        while spill:
            handle = self._handle_for(shard)
            try:
                if block:
                    self._put_blocking(handle, spill[0])
                else:
                    handle.inbox.put_nowait(spill[0])
            except queue_module.Full:
                return
            except WorkerDied:
                if not self.auto_recover:
                    raise
                self.recover(shard)
                return  # recover() already replayed the journal (incl. spill)
            spill.popleft()

    def _barrier(self) -> None:
        """Make every accepted update deliverable: drain all spill buffers."""
        for shard in self._spill:
            self._drain_spill(shard, block=True)

    # ------------------------------------------------------------------
    # request/response
    # ------------------------------------------------------------------
    def _await_response(self, handle: _WorkerHandle, kind: str) -> tuple:
        waited = 0.0
        while True:
            try:
                response = handle.outbox.get(timeout=_WAIT_SLICE_SECONDS)
            except queue_module.Empty:
                waited += _WAIT_SLICE_SECONDS
                if not handle.is_alive():
                    raise WorkerDied(
                        f"shard {handle.shard_id} worker died before answering {kind}"
                    ) from None
                if waited >= RESPONSE_TIMEOUT_SECONDS:
                    raise TimeoutError(
                        f"shard {handle.shard_id} did not answer {kind} within "
                        f"{RESPONSE_TIMEOUT_SECONDS}s"
                    ) from None
                continue
            if response[0] == "error":
                raise WorkerCrashed(
                    f"shard {handle.shard_id} worker crashed:\n{response[3]}"
                )
            if response[0] == kind:
                return response
            # Stale response from a pre-recovery request on a reused
            # handle cannot happen (queues are per-spawn); anything else
            # is a protocol bug worth failing loudly on.
            raise RuntimeError(f"unexpected worker response {response[:2]!r}")

    def _request(self, shard: int, kind: str, *extra: object) -> tuple:
        """Send one control request and await its tagged response,
        recovering once if the worker dies in between."""
        for attempt in (0, 1):
            handle = self._handle_for(shard)
            request_id = self._next_request()
            try:
                self._put_blocking(
                    handle, obs.stamp_envelope((kind, request_id, *extra))
                )
                return self._await_response(handle, kind)
            except WorkerDied:
                if not self.auto_recover or attempt:
                    raise
                self.recover(shard)
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def matches(self) -> set[Pair]:
        """The global candidate set: the union of every worker's
        *possible joinable* pairs, consistent with all accepted updates
        (poll = FIFO barrier per worker)."""
        self._ensure_open()
        with obs.span("runtime.matches"):
            self._barrier()
            aggregated: set[Pair] = set()
            for shard in self._workers:
                response = self._request(shard, CMD_POLL)
                aggregated.update(response[3])
        return aggregated

    def is_match(self, stream_id: StreamId, query_id: QueryId) -> bool:
        """Does one pair currently pass the filter?"""
        return (stream_id, query_id) in self.matches()

    def events(self) -> list[MatchEvent]:
        """Appeared/vanished transitions since the previous
        :meth:`events` call — identical semantics and format to
        :meth:`repro.core.StreamMonitor.events`."""
        current = self.matches()
        events = diff_polls(self._last_poll, current)
        self._last_poll = current
        return events

    def poll_events(self) -> list[MatchEvent]:
        """Deprecated alias for :meth:`events` (same semantics; warns
        once per process)."""
        warn_poll_events_deprecated(type(self).__name__)
        return self.events()

    def trace_spans(self) -> list[obs.SpanRecord]:
        """Every collected span across the fleet: the coordinator's own
        ring plus each worker's (shipped over :data:`CMD_TRACE`).  All
        records share the ``perf_counter`` timebase, and worker-side
        root spans carry the coordinator-side parent ids stamped on the
        command envelopes — the raw material of ``repro trace``."""
        self._ensure_open()
        records: list[obs.SpanRecord] = list(obs.spans())
        for shard in self._workers:
            response = self._request(shard, CMD_TRACE)
            records.extend(response[3])
        return records

    def inbox_depths(self) -> dict[int, int]:
        """Best-effort pending-command count per worker inbox (``qsize``
        is approximate by nature; -1 where the platform lacks it)."""
        depths: dict[int, int] = {}
        for shard, handle in self._workers.items():
            try:
                depths[shard] = handle.inbox.qsize()
            except (NotImplementedError, OSError):
                depths[shard] = -1
        return depths

    def stats(self) -> dict[str, Any]:
        """Coordinator + per-worker statistics: routing and backpressure
        counters, the recovery log, each worker's
        :class:`~repro.core.metrics.ShardCounters` and monitor stats,
        the merged fleet throughput view, and the merged observability
        registries (``merged_obs``: every worker's instruments plus the
        coordinator's own, combined with :func:`repro.obs.merge_summaries`)."""
        self._ensure_open()
        self._barrier()
        workers: dict[int, dict[str, Any]] = {}
        for shard in self._workers:
            response = self._request(shard, CMD_STATS)
            payload = dict(response[3])
            payload["pid"] = self._workers[shard].process.pid
            payload["alive"] = self._workers[shard].is_alive()
            payload["journal_len"] = len(self._journals[shard])
            workers[shard] = payload
        shard_streams: dict[int, int] = {shard: 0 for shard in self._workers}
        for shard in self._streams.values():
            shard_streams[shard] += 1
        depths = self.inbox_depths()
        if obs.enabled():
            obs.gauge(
                "runtime.inbox_depth",
                help="pending commands across all worker inboxes",
            ).set(sum(depth for depth in depths.values() if depth > 0))
        shm_section = None
        if self.shm:
            segments = 0
            segment_bytes = 0
            for payload in workers.values():
                plane = payload.get("shm")
                if plane:
                    segments += plane.get("segments", 0)
                    segment_bytes += plane.get("bytes", 0)
            shm_section = {
                "segments": segments,
                "bytes": segment_bytes,
                "rings": len(self._rings),
                "ring_capacity": self.ring_capacity,
                "reader_attached": (
                    self._plane_reader.attached_count()
                    if self._plane_reader is not None
                    else 0
                ),
            }
        return {
            "num_workers": self.num_workers,
            "num_streams": len(self._streams),
            "num_queries": len(self._queries),
            "method": self.spec.method,
            "queries": {
                "registered": len(self._queries),
                "registrations": self._query_registrations,
                "deregistrations": self._query_deregistrations,
                "groups": max(
                    (
                        payload.get("monitor", {}).get("num_query_groups", 0)
                        for payload in workers.values()
                    ),
                    default=0,
                ),
            },
            "shm": shm_section,
            "rescale": {
                "count": self._rescales,
                "last_seconds": self._last_rescale_seconds,
                "active": self._rescaling,
            },
            "backpressure": {
                "policy": self.backpressure,
                "queue_capacity": self.queue_capacity,
                "accepted_batches": self._accepted_batches,
                "dropped": self._dropped,
                "spilled": self._spilled,
                "parked": sum(len(spill) for spill in self._spill.values()),
            },
            "recovery": self.recovery_log.summary(),
            "streams_per_shard": shard_streams,
            "inbox_depths": depths,
            "workers": workers,
            "merged_counters": merge_counter_summaries(
                payload["counters"] for payload in workers.values()
            ),
            "merged_obs": obs.merge_summaries(
                [payload.get("obs", {}) for payload in workers.values()]
                + [obs.get_registry().summary()]
            ),
        }

    # ------------------------------------------------------------------
    # elastic resharding
    # ------------------------------------------------------------------
    def rescale(self, num_workers: int) -> dict[str, Any]:
        """Grow or shrink the worker pool to ``num_workers``, live.

        Runs behind a routing barrier (all spill drained, so every
        accepted update is deliverable before ownership moves).  Each
        stream whose consistent-hash owner changes is exported from its
        current shard — a FIFO-ordered request, so the exported graph
        reflects every accepted update — and re-registered on its new
        owner through the journaled control path; shrinking stops the
        excess shards only after their streams have moved out.  Polls
        issued after ``rescale`` returns therefore see exactly the
        union they would have seen without it: no false negatives, and
        a worker killed mid-rescale recovers from journal + checkpoint
        like any other death.

        Returns ``{"from", "to", "moved_streams", "seconds"}``.
        """
        self._ensure_open()
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        source = self.num_workers
        if num_workers == source:
            return {"from": source, "to": source, "moved_streams": 0, "seconds": 0.0}
        timer = Stopwatch()
        self._rescaling = True
        if obs.enabled():
            obs.gauge(
                "runtime.rescale.active",
                help="1 while a pool rescale is in flight",
            ).set(1)
        try:
            with timer, obs.span(
                "runtime.rescale", source=source, target=num_workers
            ):
                moved = self._rescale_locked(num_workers)
        finally:
            self._rescaling = False
            if obs.enabled():
                obs.gauge(
                    "runtime.rescale.active",
                    help="1 while a pool rescale is in flight",
                ).set(0)
        self._rescales += 1
        self._last_rescale_seconds = timer.total
        if obs.enabled():
            obs.counter(
                "runtime.rescales", help="completed worker-pool rescales"
            ).inc()
            obs.gauge(
                "runtime.rescale.last_seconds",
                help="wall-clock seconds of the most recent rescale",
            ).set(timer.total)
            obs.gauge(
                "runtime.workers", help="current worker-pool size"
            ).set(num_workers)
        return {
            "from": source,
            "to": num_workers,
            "moved_streams": moved,
            "seconds": timer.total,
        }

    def _query_catchup(self, shard: int) -> None:
        """Replay the net query churn since birth onto one fresh shard
        (spawned from the frozen birth spec) via journaled control
        commands."""
        birth = self.spec.queries
        live = self._queries
        for query_id in birth:
            if live.get(query_id) is not birth[query_id]:
                self._submit_control(shard, (CMD_DEREGISTER_QUERY, query_id))
        for query_id, graph in live.items():
            if birth.get(query_id) is not graph:
                self._submit_control(shard, (CMD_REGISTER_QUERY, query_id, graph))

    def _rescale_locked(self, target: int) -> int:
        """The rescale body: spawn, move, install, retire.  Returns the
        number of streams that changed owner."""
        source = self.num_workers
        self._barrier()
        for shard in range(source, target):  # grow: new empty shards
            self._journals[shard] = ShardJournal()
            self._spill[shard] = deque()
            if self.store is not None:
                # A snapshot left by a *previous* tenant of this shard
                # id describes a different stream slice — never restore
                # from it.
                self.store.invalidate(shard)
            self._workers[shard] = self._spawn(shard, self.spec)
            # The newcomer was built from the birth spec; bring it up to
            # the live query set through its (fresh) journal so a crash
            # mid-catch-up recovers exactly like any other churn.
            self._query_catchup(shard)
        router = ShardRouter(target)
        moved = 0
        # Deterministic move order (sorted by stream id) so journals and
        # tests see the same handoff sequence on every run.
        for stream_id in sorted(self._streams, key=str):
            destination = router.shard_for(stream_id)
            origin = self._streams[stream_id]
            if destination == origin:
                continue
            response = self._request(origin, CMD_EXPORT_STREAM, stream_id)
            graph = response[3]
            self._submit_control(destination, (CMD_ADD_STREAM, stream_id, graph))
            self._submit_control(origin, (CMD_REMOVE_STREAM, stream_id))
            self._streams[stream_id] = destination
            self._npv_cache.pop(stream_id, None)
            moved += 1
            if obs.enabled():
                obs.counter(
                    "runtime.streams_moved",
                    help="stream handoffs performed by rescales",
                ).inc()
        self.router = router
        self.num_workers = target
        for shard in range(target, source):  # shrink: retire empty shards
            handle = self._workers.pop(shard)
            if handle.is_alive():
                try:
                    self._put_blocking(handle, (CMD_STOP, self._next_request()))
                    self._await_response(handle, CMD_STOP)
                except (WorkerDied, WorkerCrashed, TimeoutError):
                    pass
            handle.dispose()
            ring = self._rings.pop(shard, None)
            if ring is not None:
                ring.close(unlink=True)
            prefix = self._segment_prefixes.pop(shard, None)
            if prefix is not None:
                cleanup_segments(prefix)
            del self._journals[shard]
            del self._spill[shard]
            if self.store is not None:
                # This shard id may be re-created by a later grow with a
                # different slice; its old snapshot must not survive.
                self.store.invalidate(shard)
        return moved

    # ------------------------------------------------------------------
    # shared-memory plane reads
    # ------------------------------------------------------------------
    def npv_rows(self, stream_id: StreamId) -> Any:
        """One stream's dense NPV rows, read straight out of shared
        memory (requires ``shm=True`` and the matrix engine).

        The descriptor request is a FIFO barrier behind every accepted
        update for the stream, so the copy is consistent; a generation
        mismatch (the segment grew or moved since the last read) is the
        remap handshake — counted on ``shm.remaps`` and resolved by
        re-requesting a fresh descriptor.
        """
        self._ensure_open()
        if not self.shm or self._plane_reader is None:
            raise RuntimeError("npv_rows() requires shm=True")
        if stream_id not in self._streams:
            raise KeyError(f"stream {stream_id!r} is not monitored")
        last_error: Exception | None = None
        for _ in range(3):
            shard = self._streams[stream_id]
            response = self._request(shard, CMD_NPV, stream_id)
            descriptor = response[3]
            if descriptor is None:
                raise RuntimeError(
                    "stream has no exportable NPV rows "
                    "(the shared plane backs the matrix engine only)"
                )
            cached = self._npv_cache.get(stream_id)
            if cached is not None and (
                cached.name != descriptor.name
                or cached.generation != descriptor.generation
            ):
                if obs.enabled():
                    obs.counter(
                        "shm.remaps",
                        help="generation-tagged segment remaps observed by readers",
                    ).inc()
            self._npv_cache[stream_id] = descriptor
            try:
                return self._plane_reader.read(descriptor)
            except (StaleSegment, FileNotFoundError) as error:
                # The worker recovered (fresh segments) between the
                # response and the read; evict and re-request.
                last_error = error
                self._npv_cache.pop(stream_id, None)
        raise StaleSegment(
            f"could not obtain a stable descriptor for stream {stream_id!r}"
        ) from last_error

    # ------------------------------------------------------------------
    # checkpointing and recovery
    # ------------------------------------------------------------------
    def checkpoint(self) -> list[dict[str, Any]]:
        """Snapshot every shard and truncate the journals; returns one
        :func:`~repro.core.checkpoint.checkpoint_stats` dict per shard."""
        self._ensure_open()
        if self.store is None:
            raise RuntimeError("checkpoint() requires checkpoint_dir")
        self._barrier()
        results = []
        for shard in self._workers:
            journal = self._journals[shard]
            sequence = journal.sequence
            target = self.store.prepare(shard, sequence)
            note = {
                "shard_id": shard,
                "num_shards": self.num_workers,
                "sequence": sequence,
            }
            response = self._request(shard, CMD_CHECKPOINT, str(target), note)
            self.store.commit(shard, sequence)
            journal.truncate()
            self.recovery_log.checkpoints += 1
            results.append(response[3])
        self._batches_since_checkpoint = 0
        return results

    def recover(self, shard: int) -> None:
        """Respawn one shard's worker from its latest committed snapshot
        (or from scratch) and replay the journal tail."""
        self._ensure_open()
        old = self._workers[shard]
        old.dispose()
        restore_dir = None
        if self.store is not None:
            latest = self.store.latest_dir(shard)
            if latest is not None:
                restore_dir = str(latest)
        # Journaled-but-undelivered spill is replayed from the journal.
        self._spill[shard] = deque()
        # Descriptors issued by the dead worker point at swept segments.
        for stream_id, owner in self._streams.items():
            if owner == shard:
                self._npv_cache.pop(stream_id, None)
        handle = self._spawn(shard, self.spec.restored(restore_dir))
        self._workers[shard] = handle
        journal = self._journals[shard]
        for command in journal.entries:
            self._put_blocking(handle, command)
        self.recovery_log.recoveries += 1
        self.recovery_log.replayed_commands += len(journal)

    def recover_dead(self) -> list[int]:
        """Respawn every dead worker; returns the recovered shard ids."""
        recovered = []
        for shard, handle in self._workers.items():
            if not handle.is_alive():
                self.recover(shard)
                recovered.append(shard)
        return recovered

    def worker_pids(self) -> dict[int, int | None]:
        """Shard id -> worker process pid (for supervision and tests)."""
        return {shard: handle.process.pid for shard, handle in self._workers.items()}
