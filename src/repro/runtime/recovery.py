"""Checkpoint-based worker recovery.

The recovery protocol has two halves, both owned by the coordinator:

* a :class:`CheckpointStore` laying snapshots out on disk as
  ``<root>/shard_<k>/ckpt_<seq>/`` (each one a plain
  :mod:`repro.core.checkpoint` directory written *by the worker that
  owns the shard*), with a ``LATEST`` pointer that is only advanced
  after the worker acknowledges the snapshot — a worker killed mid-save
  leaves a dangling ``ckpt_<seq>`` directory, never a corrupt pointer;
* one :class:`ShardJournal` per shard holding every state-mutating
  command submitted since the pointer last advanced.  Respawn = restore
  the ``LATEST`` snapshot, then replay the journal tail in submission
  order.  Because commands are routed per stream and applied in FIFO
  order, the replayed worker converges to exactly the state the killed
  worker would have reached — no false negatives (Lemma 4.2 holds
  shard-locally, and no update is lost).

The journal deliberately lives in the *coordinator*: it must survive
the worker it describes.  Its memory footprint is bounded by the
checkpoint cadence (``checkpoint_every``), which truncates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

LATEST = "LATEST"


@dataclass
class ShardJournal:
    """State-mutating commands submitted to one shard since its last
    acknowledged checkpoint (or since birth)."""

    entries: list[tuple] = field(default_factory=list)
    #: Commands recorded since birth, monotone across truncations — the
    #: checkpoint sequence annotation ties snapshots to journal offsets.
    sequence: int = 0

    def record(self, command: tuple) -> None:
        """Append one submitted command."""
        self.entries.append(command)
        self.sequence += 1

    def truncate(self) -> None:
        """Forget everything — the shard just checkpointed."""
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)


class CheckpointStore:
    """On-disk layout and pointer management for shard snapshots."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def shard_dir(self, shard_id: int) -> Path:
        """The directory holding one shard's snapshots and pointer."""
        return self.root / f"shard_{shard_id}"

    def prepare(self, shard_id: int, sequence: int) -> Path:
        """The directory a new snapshot should be written into (created
        empty; the owning worker fills it)."""
        target = self.shard_dir(shard_id) / f"ckpt_{sequence}"
        target.mkdir(parents=True, exist_ok=True)
        return target

    def commit(self, shard_id: int, sequence: int) -> Path:
        """Advance the shard's ``LATEST`` pointer to ``ckpt_<sequence>``
        — called only after the worker acknowledged the save."""
        target = self.shard_dir(shard_id) / f"ckpt_{sequence}"
        pointer = self.shard_dir(shard_id) / LATEST
        # A one-line pointer file write is atomic enough for our
        # single-coordinator setup: the worker never touches it.
        pointer.write_text(f"{sequence}\n", encoding="utf-8")
        return target

    def invalidate(self, shard_id: int) -> None:
        """Retract the shard's ``LATEST`` pointer (idempotent).

        Called when a rescale creates or destroys a shard: the shard id
        may be reused later with a *different* stream slice, and a
        respawn restoring the old snapshot would resurrect streams the
        router no longer sends there.  Snapshot directories stay on
        disk (they are cheap and useful forensics); only the pointer —
        the thing recovery trusts — goes away.
        """
        pointer = self.shard_dir(shard_id) / LATEST
        try:
            pointer.unlink()
        except FileNotFoundError:
            pass

    def latest_dir(self, shard_id: int) -> Path | None:
        """The last committed snapshot for a shard, or None if it never
        completed a checkpoint (recovery then rebuilds from the journal
        alone, which in that case reaches back to the shard's birth)."""
        pointer = self.shard_dir(shard_id) / LATEST
        if not pointer.exists():
            return None
        sequence = int(pointer.read_text(encoding="utf-8").strip())
        target = self.shard_dir(shard_id) / f"ckpt_{sequence}"
        return target if target.exists() else None


@dataclass
class RecoveryLog:
    """Coordinator-side counters describing the fleet's failure history."""

    checkpoints: int = 0
    recoveries: int = 0
    replayed_commands: int = 0

    def summary(self) -> dict[str, int]:
        """Plain-dict snapshot for ``stats()`` aggregation."""
        return {
            "checkpoints": self.checkpoints,
            "recoveries": self.recoveries,
            "replayed_commands": self.replayed_commands,
        }
