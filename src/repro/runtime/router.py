"""Shard routing: a consistent-hash ring over stream ids.

Definition 2.8 makes streams independent of each other — the answer for
``(GS_i, Q_j)`` depends only on stream ``i``'s current graph — so the
runtime partitions the workload by stream id: every stream is owned by
exactly one worker, and the union of per-worker answers is the global
answer (completeness is preserved shard-locally by Lemma 4.2).

The ring uses a *keyed* stable hash (:func:`hashlib.blake2b`), never
Python's builtin ``hash``: the builtin is salted per process, and the
coordinator, its workers, and a coordinator restarted tomorrow must all
agree on the same placement.  Virtual nodes (``replicas`` points per
shard) keep the placement balanced and make it *consistent*: resizing
from N to N+1 shards moves only ~1/(N+1) of the streams.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable

#: Virtual ring points per shard; 64 keeps the max/min stream-count
#: imbalance under ~30% for small fleets without bloating the ring.
DEFAULT_REPLICAS = 64


def stable_hash(key: Hashable) -> int:
    """Process-independent 64-bit hash of a stream id.

    Ids that compare unequal but print equally (``1`` vs ``"1"``) are
    disambiguated by their type name, mirroring how checkpoint manifests
    record the id kind.
    """
    token = f"{type(key).__name__}:{key!s}".encode("utf-8", "surrogatepass")
    return int.from_bytes(hashlib.blake2b(token, digest_size=8).digest(), "big")


class ShardRouter:
    """Consistent-hash assignment of stream ids to ``num_shards`` workers."""

    def __init__(self, num_shards: int, replicas: int = DEFAULT_REPLICAS) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.num_shards = num_shards
        self.replicas = replicas
        points = []
        for shard in range(num_shards):
            for replica in range(replicas):
                points.append((stable_hash(f"shard:{shard}:{replica}"), shard))
        points.sort()
        self._ring = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    def shard_for(self, stream_id: Hashable) -> int:
        """The shard owning ``stream_id`` (first ring point clockwise)."""
        index = bisect.bisect_right(self._ring, stable_hash(stream_id))
        if index == len(self._ring):
            index = 0
        return self._owners[index]

    def assignment(self, stream_ids) -> dict:
        """``{stream_id: shard}`` for a batch of ids (stats/debugging)."""
        return {stream_id: self.shard_for(stream_id) for stream_id in stream_ids}
