"""The shard worker: one process, one private :class:`StreamMonitor`.

A worker owns a disjoint subset of the registered streams (chosen by the
coordinator's :class:`~repro.runtime.router.ShardRouter`) over the full
shared query set.  It drains its bounded inbox in FIFO order — which is
what makes a poll a consistent barrier: the poll command is enqueued
after every update it must observe — and pushes tagged responses on its
outbox.  All answering state is the monitor's; the worker adds only the
:class:`~repro.core.metrics.ShardCounters` throughput/latency accounting
and the checkpoint/restore glue.

Workers never share *mutable* memory with the coordinator: commands and
responses are picklable values (graphs, change operations, frozen
candidate sets), so a worker can be SIGKILLed at any instant and
respawned from its last shard checkpoint without corrupting anyone
else.  The optional shared-memory plane (:mod:`repro.runtime.shm`)
keeps that property — segments are single-writer (this worker), the
payload ring is single-producer (the coordinator) / single-consumer
(this worker), and everything is reconstructible from journal +
checkpoint, so crash recovery works exactly as before.
"""

from __future__ import annotations

import pickle
import traceback
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

from .. import obs
from ..core.checkpoint import checkpoint_stats, load_monitor, save_monitor
from ..core.metrics import ShardCounters, Stopwatch
from ..core.monitor import StreamMonitor
from ..graph.labeled_graph import LabeledGraph
from ..graph.operations import EdgeChange
from ..nnt.projection import PAPER_SCHEME, DimensionScheme
from .shm import NpvPlane, RingReader, RingRef

#: Inbox commands a worker understands (first tuple element).
CMD_ADD_STREAM = "add_stream"
CMD_REMOVE_STREAM = "remove_stream"
CMD_APPLY = "apply"
CMD_REGISTER_QUERY = "register_query"
CMD_DEREGISTER_QUERY = "deregister_query"
CMD_POLL = "poll"
CMD_STATS = "stats"
CMD_TRACE = "trace"
CMD_CHECKPOINT = "checkpoint"
CMD_EXPORT_STREAM = "export_stream"
CMD_NPV = "npv_plane"
CMD_STOP = "stop"

#: Commands that mutate shard state and therefore enter the journal.
STATE_COMMANDS = frozenset(
    {CMD_ADD_STREAM, CMD_REMOVE_STREAM, CMD_APPLY, CMD_REGISTER_QUERY, CMD_DEREGISTER_QUERY}
)


@dataclass(frozen=True)
class WorkerSpec:
    """Everything needed to build (or rebuild) one shard's monitor."""

    queries: Mapping[Any, LabeledGraph]
    method: str = "dsc"
    depth_limit: int = 3
    scheme: DimensionScheme = PAPER_SCHEME
    coalesce: bool = True
    restore_dir: str | None = None  # set when respawning from a checkpoint
    shm: bool = False  # shared-memory NPV plane + payload ring
    ring: str | None = None  # payload-ring segment name (coordinator-created)
    segment_prefix: str | None = None  # namespace for this worker's segments
    flight_dir: str | None = None  # flight-recorder journal/dump directory

    def build_monitor(self, plane: NpvPlane | None = None) -> StreamMonitor:
        """A fresh monitor, restored from ``restore_dir`` when set.

        With a plane and the matrix engine, NPV rows go straight into
        shared-memory row stores (restores included — segments are
        rebuilt from the checkpointed graphs, never reattached).
        """
        engine_options = None
        if plane is not None and self.method == "matrix":
            engine_options = {"store_factory": plane.row_store}
        if self.restore_dir is not None:
            return load_monitor(self.restore_dir, engine_options=engine_options)
        return StreamMonitor(
            dict(self.queries),
            method=self.method,
            depth_limit=self.depth_limit,
            scheme=self.scheme,
            coalesce=self.coalesce,
            engine_options=engine_options,
        )

    def restored(self, restore_dir: str | None) -> "WorkerSpec":
        """This spec with a different restore directory."""
        return replace(self, restore_dir=restore_dir)


@dataclass
class ShardState:
    """The worker's in-process state (also used by the coordinator's
    zero-worker in-process mode and by tests, so the command semantics
    live in exactly one place)."""

    shard_id: int
    monitor: StreamMonitor
    counters: ShardCounters = field(default_factory=ShardCounters)
    plane: NpvPlane | None = None
    ring: RingReader | None = None

    def execute(self, command: tuple) -> tuple | None:
        """Apply one inbox command; return the response to emit (None
        for fire-and-forget state commands)."""
        kind = command[0]
        if kind == CMD_APPLY:
            _, stream_id, update = command
            if isinstance(update, RingRef):
                if self.ring is None:
                    raise ValueError(
                        "received a ring payload but no ring is attached"
                    )
                update = pickle.loads(self.ring.read(update))
            timer = Stopwatch()
            with timer:
                self.monitor.apply(stream_id, update)
            num_changes = 1 if isinstance(update, EdgeChange) else len(update)
            self.counters.record_batch(num_changes, timer.total)
            return None
        if kind == CMD_ADD_STREAM:
            _, stream_id, initial = command
            self.monitor.add_stream(stream_id, initial)
            return None
        if kind == CMD_REMOVE_STREAM:
            self.monitor.remove_stream(command[1])
            return None
        if kind == CMD_REGISTER_QUERY:
            _, query_id, query = command
            self.monitor.register_query(query_id, query)
            return None
        if kind == CMD_DEREGISTER_QUERY:
            self.monitor.deregister_query(command[1])
            return None
        if kind == CMD_POLL:
            timer = Stopwatch()
            with timer:
                candidates = frozenset(self.monitor.matches())
            self.counters.record_poll(timer.total)
            return (CMD_POLL, command[1], self.shard_id, candidates)
        if kind == CMD_STATS:
            return (CMD_STATS, command[1], self.shard_id, self.stats())
        if kind == CMD_TRACE:
            # Ship the process-local span ring (records carry this
            # worker's trace/span/parent ids and process label).
            return (CMD_TRACE, command[1], self.shard_id, obs.spans())
        if kind == CMD_CHECKPOINT:
            _, request_id, directory, shard_note = command
            timer = Stopwatch()
            with timer:
                save_monitor(self.monitor, Path(directory), shard=shard_note)
            self.counters.record_checkpoint(timer.total)
            obs.histogram(
                "runtime.checkpoint.seconds",
                help="wall-clock seconds to write one shard checkpoint",
            ).observe(timer.total)
            return (CMD_CHECKPOINT, request_id, self.shard_id, checkpoint_stats(directory))
        if kind == CMD_EXPORT_STREAM:
            # Rescale handoff: the stream's full graph, behind the FIFO
            # barrier (every prior apply for it is already folded in).
            _, request_id, stream_id = command
            return (
                CMD_EXPORT_STREAM,
                request_id,
                self.shard_id,
                self.monitor.graph(stream_id),
            )
        if kind == CMD_NPV:
            # The remap handshake: a fresh descriptor for the stream's
            # shared row segment (None when rows live only in-process).
            _, request_id, stream_id = command
            exporter = getattr(self.monitor.engine, "npv_descriptor", None)
            descriptor = exporter(stream_id) if exporter is not None else None
            return (CMD_NPV, request_id, self.shard_id, descriptor)
        if kind == CMD_STOP:
            self.shutdown()
            return (CMD_STOP, command[1], self.shard_id, None)
        raise ValueError(f"unknown worker command {kind!r}")

    def shutdown(self) -> None:
        """Free shared-memory resources on graceful stop: drop the
        engine's row-store views, then unlink this worker's segments
        (the creator owns the unlink), then detach from the ring."""
        self.monitor.close()
        if self.plane is not None:
            self.plane.close(unlink=True)
            self.plane = None
        if self.ring is not None:
            self.ring.close()
            self.ring = None

    def stats(self) -> dict[str, Any]:
        """Shard-local stats: counters, the monitor's own view, the
        shared-memory plane footprint (when enabled), and the
        process-local observability registry (merged by the coordinator
        with :func:`repro.obs.merge_summaries`)."""
        return {
            "shard_id": self.shard_id,
            "counters": self.counters.summary(),
            "monitor": self.monitor.stats(),
            "shm": self.plane.stats() if self.plane is not None else None,
            "obs": obs.get_registry().summary(),
        }


def worker_main(shard_id: int, spec: WorkerSpec, inbox, outbox) -> None:
    """Process entry point: build the shard monitor and serve commands
    until :data:`CMD_STOP` (or a crash, reported on the outbox).

    Each inbox command may arrive stamped with the coordinator's trace
    context (:func:`repro.obs.stamp_envelope`); the worker splits the
    envelope and executes the base command under
    :func:`repro.obs.attached`, so the root spans it opens join the
    coordinator-side trace of the call that caused them.  Journal
    replays during recovery go through :meth:`ShardState.execute`
    directly with bare commands, hence open fresh traces.
    """
    obs.set_process_label(f"shard-{shard_id}")
    # A recovery respawn forks from a coordinator that may be mid-span:
    # drop every piece of observability state inherited across the fork
    # (open frames, the span ring, the registry) so this process starts
    # clean — replayed journal commands open *fresh* root traces, and
    # the shard's registry never double-counts coordinator instruments
    # when stats are merged.
    obs.trace.reset()
    obs.clear_spans()
    obs.set_registry(obs.Registry())
    # The flight recorder's JSONL journal is flushed per event, so even a
    # SIGKILL — no handlers, no unwinding — leaves the last pre-crash
    # commands readable on disk.  SIGUSR2 dumps a full snapshot on demand
    # (``repro flight signal``).
    flight = None
    if spec.flight_dir is not None:
        flight = obs.FlightRecorder(
            Path(spec.flight_dir) / f"flight-shard{shard_id}.jsonl"
        )
        obs.install_signal_dump(flight, spec.flight_dir)
    try:
        plane = None
        ring = None
        if spec.shm:
            if spec.segment_prefix is None:
                raise ValueError("shm workers need a segment prefix")
            plane = NpvPlane(spec.segment_prefix)
            if spec.ring is not None:
                ring = RingReader(spec.ring)
        state = ShardState(
            shard_id, spec.build_monitor(plane), plane=plane, ring=ring
        )
    except BaseException:  # noqa: BLE001 - startup failures must surface
        outbox.put(("error", None, shard_id, traceback.format_exc()))
        if flight is not None:
            flight.note("crash", stage="startup")
            flight.dump(
                Path(spec.flight_dir) / f"flight-shard{shard_id}-crash.json",
                reason="startup-crash",
            )
        raise
    while True:
        envelope = inbox.get()
        command, ctx = obs.split_envelope(envelope)
        try:
            with obs.attached(ctx):
                response = state.execute(command)
            if flight is not None and command[0] in STATE_COMMANDS:
                closed = obs.last_span()
                flight.note(
                    "command",
                    verb=command[0],
                    span=closed.name if closed is not None else None,
                    duration=closed.duration if closed is not None else None,
                    trace_id=closed.trace_id if closed is not None else None,
                )
        except BaseException:  # noqa: BLE001 - report, then die loudly
            outbox.put(("error", None, shard_id, traceback.format_exc()))
            if flight is not None:
                flight.note("crash", verb=command[0])
                flight.dump(
                    Path(spec.flight_dir) / f"flight-shard{shard_id}-crash.json",
                    reason="command-crash",
                )
            raise
        if response is not None:
            outbox.put(response)
        if command[0] == CMD_STOP:
            if flight is not None:
                flight.close()
            return
