"""Sharded multi-process stream-monitoring runtime.

The paper's filter answers a timestamp in filter time; this package
makes the *system* keep up with stream rates by scaling across cores:
:class:`ShardedMonitor` shards registered streams over N worker
processes (consistent hash on stream id — streams are independent by
Definition 2.8, so sharding preserves the answer), routes change
batches to bounded worker inboxes under a configurable backpressure
policy, aggregates per-worker candidate sets into one global answer at
poll time, and checkpoints each shard so a killed worker respawns with
no false negatives.

See ``docs/runtime.md`` for the architecture, routing, backpressure and
recovery protocols; :mod:`repro.runtime.worker` for the command
protocol; :mod:`repro.runtime.recovery` for the snapshot/journal
layout.

This is the only package in the tree allowed to touch process/thread
machinery (analysis rule RP008), and :mod:`repro.runtime.shm` is the
only module allowed to touch ``multiprocessing.shared_memory`` (rule
RP016): the filtering core stays deterministic and single-threaded,
and all parallelism lives behind this facade.
"""

from .coordinator import (
    POLICIES,
    ShardedMonitor,
    WorkerCrashed,
    WorkerDied,
)
from .recovery import CheckpointStore, RecoveryLog, ShardJournal
from .router import ShardRouter, stable_hash
from .shm import (
    NpvPlane,
    PlaneDescriptor,
    PlaneReader,
    RingReader,
    RingRef,
    ShmError,
    ShmRing,
    ShmRowStore,
    StaleSegment,
    cleanup_segments,
)
from .worker import ShardState, WorkerSpec

__all__ = [
    "CheckpointStore",
    "NpvPlane",
    "POLICIES",
    "PlaneDescriptor",
    "PlaneReader",
    "RecoveryLog",
    "RingReader",
    "RingRef",
    "ShardJournal",
    "ShardRouter",
    "ShardState",
    "ShardedMonitor",
    "ShmError",
    "ShmRing",
    "ShmRowStore",
    "StaleSegment",
    "WorkerCrashed",
    "WorkerDied",
    "WorkerSpec",
    "cleanup_segments",
    "stable_hash",
]
