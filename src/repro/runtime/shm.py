"""The shared-memory NPV plane: segments, descriptors, and rings.

The matrix engine's hot state is one dense ``int64`` row matrix per
stream (:mod:`repro.join.matrix`).  Without this module, every byte of
that state that crosses the coordinator<->worker boundary rides a
``multiprocessing`` queue — pickled, piped, and unpickled.  This module
moves the rows into POSIX shared memory so the queues carry only
**fixed-size descriptors**:

* :class:`NpvPlane` — the worker-side segment allocator.  One plane per
  worker process owns every segment that worker creates: allocation
  goes through a size-bucketed **free-list** (a removed stream's
  segment is tombstoned and reused by the next grow/allocate), and
  every (re)assignment stamps a fresh plane-global **generation** into
  the segment header, so a reader holding yesterday's descriptor can
  always tell.
* :class:`ShmRowStore` — the plane-backed row storage behind the matrix
  engine's ``RowStore`` surface (grow-by-doubling, header row-count
  sync, descriptor export).  The engine never imports this module; the
  store is injected as a factory (``engine_options["store_factory"]``),
  which keeps the RP008/RP016 layering intact.
* :class:`PlaneReader` — the coordinator-side attach cache.  ``read``
  validates the descriptor's generation against the live header and
  raises :class:`StaleSegment` on mismatch; the coordinator then
  re-requests a fresh descriptor (the **remap handshake**, counted on
  ``shm.remaps``).
* :class:`ShmRing` / :class:`RingReader` — a single-producer
  single-consumer byte ring per shard.  The coordinator pickles an
  apply payload once into the ring and enqueues a :class:`RingRef`
  (name + monotonic offset + length + CRC32); the worker reads the
  bytes back at dispatch time.  Offsets are monotone u64s, the consumed
  watermark lives in the ring header, and a CRC mismatch crashes the
  worker loudly — which is exactly the runtime's recover-from-journal
  path, since journals always record inline payloads.

**Segment lifecycle and crash orphans.**  Graceful shutdown unlinks
everything (``NpvPlane.close`` / ``ShmRing.close``).  A SIGKILLed
worker leaks its segments in ``/dev/shm``; the coordinator sweeps them
with :func:`cleanup_segments` (prefix scan) on respawn and on
``ShardedMonitor.close()``.  The stdlib ``resource_tracker`` remains
the net under the net: creators stay registered until ``unlink()``
(which unregisters by itself), so even a coordinator that dies before
sweeping leaves cleanup to the tracker at interpreter exit; the sweep
unregisters the names it removes so the tracker stays quiet.

Segment names are deterministic (coordinator pid + shard + spawn epoch
+ counter — rule RP010's pid+counter scheme), which is what makes the
prefix sweep safe: a name collision would mean two live coordinators
share a pid.
"""

from __future__ import annotations

import os
import struct
import zlib
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Any, NamedTuple

import numpy as np

from .. import obs

#: Bytes reserved at the front of every segment for the header.
HEADER_SIZE = 64

#: NPV segment header: magic, version, flags, generation, row_count,
#: dim_count, capacity (rows).  Packed little-endian at offset 0.
_NPV_HEADER = struct.Struct("<8sII4Q")
_NPV_MAGIC = b"REPRONPV"

#: Ring header: magic, version, flags, capacity (payload bytes), tail
#: (consumed watermark, a monotone u64 written only by the consumer).
_RING_HEADER = struct.Struct("<8sIIQQ")
_RING_MAGIC = b"REPRORNG"
_RING_TAIL_OFFSET = 8 + 4 + 4 + 8  # the tail field inside _RING_HEADER

_VERSION = 1

#: Generation stamped into a freed segment's header: any descriptor
#: that still points at it fails validation (live generations start
#: at 1 and only grow).
TOMBSTONE_GENERATION = 0

#: Default ring capacity per shard (payload bytes).
DEFAULT_RING_CAPACITY = 1 << 20

#: Smallest NPV segment (one page): the floor of the power-of-two size
#: buckets :meth:`NpvPlane.acquire` allocates in.
MIN_SEGMENT_SIZE = 4096


class ShmError(RuntimeError):
    """A shared-memory plane invariant was violated."""


class StaleSegment(ShmError):
    """A descriptor's generation no longer matches the live header —
    the segment grew, moved, or was freed since the descriptor was
    issued.  Re-request a fresh descriptor (the remap handshake)."""


class PlaneDescriptor(NamedTuple):
    """Fixed-size handle to one stream's NPV rows — what crosses the
    process boundary instead of the rows themselves."""

    name: str
    generation: int
    rows: int
    dims: int
    capacity: int


class RingRef(NamedTuple):
    """Fixed-size handle to one payload parked in a shard's ring."""

    ring: str
    offset: int
    length: int
    crc: int


def _untrack(name: str) -> None:
    """Drop a segment from the resource tracker's registry.

    Only the crash-orphan sweep needs this: ``SharedMemory.unlink()``
    unregisters by itself, but the sweep removes files directly (their
    creator is dead), leaving the dead creator's registration behind —
    without this, the tracker warns about "leaked" segments at exit.
    A dead tracker is not an error here; cleanup is already
    best-effort beyond the sweep.
    """
    try:
        resource_tracker.unregister("/" + name, "shared_memory")
    except (OSError, ValueError):
        pass


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without claiming ownership.

    The stdlib registers attaches with the resource tracker too
    (gh-82300), but fork and spawn children share the coordinator's
    tracker process, so the attach-side register is a set-add of a name
    the creator already registered — a no-op, balanced by the single
    ``unlink()`` when the creator (or the sweep) destroys the segment.
    """
    return shared_memory.SharedMemory(name=name)


def _read_npv_header(segment: shared_memory.SharedMemory) -> tuple[int, int, int, int]:
    """(generation, row_count, dim_count, capacity) from a live header."""
    magic, version, _flags, generation, rows, dims, capacity = _NPV_HEADER.unpack_from(
        segment.buf, 0
    )
    if magic != _NPV_MAGIC or version != _VERSION:
        raise ShmError(
            f"segment {segment.name!r} is not an NPV plane segment "
            f"(magic={magic!r}, version={version})"
        )
    return generation, rows, dims, capacity


class NpvPlane:
    """Worker-side segment allocator: every segment this process
    creates, a size-bucketed free-list, and the generation counter.

    One plane per worker process; ``prefix`` (assigned by the
    coordinator: pid + shard + spawn epoch) namespaces the segment
    names so the coordinator can sweep orphans after a SIGKILL.
    """

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._free: dict[int, list[str]] = {}
        self._stores: list["ShmRowStore"] = []
        self._counter = 0
        self._generation = TOMBSTONE_GENERATION

    # -- allocation ------------------------------------------------------
    def next_generation(self) -> int:
        """A fresh plane-global generation (monotone, never reused), so
        free-list reuse always changes the generation a reader sees."""
        self._generation += 1
        return self._generation

    def acquire(self, payload_bytes: int) -> shared_memory.SharedMemory:
        """A segment with at least ``payload_bytes`` behind the header,
        reusing a freed segment of the same size bucket when possible.

        Sizes round up to power-of-two buckets (floor: one page), so a
        freed segment is reusable by any later request that lands in
        the same bucket — query churn that reallocates row stores with
        slightly different dimension counts recycles segments instead
        of accumulating near-miss sizes on the free-list forever.
        """
        needed = HEADER_SIZE + payload_bytes
        size = MIN_SEGMENT_SIZE
        while size < needed:
            size *= 2
        bucket = self._free.get(size)
        if bucket:
            return self._segments[bucket.pop()]
        self._counter += 1
        name = f"{self.prefix}-seg{self._counter}"
        segment = shared_memory.SharedMemory(name=name, create=True, size=size)
        self._segments[name] = segment
        if obs.enabled():
            obs.counter(
                "shm.segments_created",
                help="shared-memory NPV segments allocated (fresh, not reused)",
            ).inc()
        return segment

    def release(self, segment: shared_memory.SharedMemory) -> None:
        """Tombstone a segment and park it on the free-list."""
        _NPV_HEADER.pack_into(
            segment.buf, 0, _NPV_MAGIC, _VERSION, 0, TOMBSTONE_GENERATION, 0, 0, 0
        )
        self._free.setdefault(segment.size, []).append(segment.name)

    def row_store(self, rows: int, dims: int) -> "ShmRowStore":
        """The ``store_factory`` injected into the matrix engine."""
        store = ShmRowStore(self, rows, dims)
        self._stores.append(store)
        return store

    def forget_store(self, store: "ShmRowStore") -> None:
        """Stop tracking a released store (called by the store itself)."""
        try:
            self._stores.remove(store)
        except ValueError:
            pass

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Live plane footprint for ``stats()`` aggregation."""
        free = sum(len(names) for names in self._free.values())
        return {
            "segments": len(self._segments),
            "bytes": sum(segment.size for segment in self._segments.values()),
            "free_segments": free,
            "generation": self._generation,
        }

    def segment_names(self) -> list[str]:
        """Names of every live segment (tests assert leak-freedom)."""
        return sorted(self._segments)

    # -- lifecycle -----------------------------------------------------------
    def close(self, unlink: bool = True) -> None:
        """Detach every store, close every segment, optionally unlink.

        The stores must drop their numpy views first — a mapped buffer
        with live exports cannot be closed.
        """
        for store in list(self._stores):
            store.detach()
        self._stores.clear()
        for segment in self._segments.values():
            segment.close()
            if unlink:
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass
        self._segments.clear()
        self._free.clear()


class ShmRowStore:
    """Shared-memory row storage with the matrix engine's ``RowStore``
    surface (see :class:`repro.join.matrix.DenseRowStore`): an ``array``
    of shape ``(capacity, dims)``, grow-by-doubling, a row-count sync
    hook, and a :class:`PlaneDescriptor` export."""

    def __init__(self, plane: NpvPlane, rows: int, dims: int) -> None:
        self._plane = plane
        self._dims = dims
        self._rows = 0
        self._segment: shared_memory.SharedMemory | None = None
        self._array: np.ndarray | None = None
        self._generation = TOMBSTONE_GENERATION
        self._map(plane.acquire(rows * dims * 8), rows)

    def _map(self, segment: shared_memory.SharedMemory, capacity: int) -> None:
        self._segment = segment
        self._generation = self._plane.next_generation()
        _NPV_HEADER.pack_into(
            segment.buf,
            0,
            _NPV_MAGIC,
            _VERSION,
            0,
            self._generation,
            self._rows,
            self._dims,
            capacity,
        )
        view = np.ndarray(
            (capacity, self._dims),
            dtype=np.int64,
            buffer=segment.buf,
            offset=HEADER_SIZE,
        )
        view[:] = 0
        self._array = view

    # -- RowStore surface ------------------------------------------------
    @property
    def array(self) -> np.ndarray:
        if self._array is None:
            raise ShmError("row store was released")
        return self._array

    def grow(self) -> None:
        """Double capacity into a (possibly recycled) larger segment."""
        old_segment = self._segment
        old_array = self._array
        if old_segment is None or old_array is None:
            raise ShmError("row store was released")
        capacity = old_array.shape[0]
        new_segment = self._plane.acquire(capacity * 2 * self._dims * 8)
        self._array = None
        self._map(new_segment, capacity * 2)
        assert self._array is not None
        self._array[:capacity] = old_array
        del old_array
        self._plane.release(old_segment)
        if obs.enabled():
            obs.counter(
                "shm.grows",
                help="row-store grow-by-doubling segment swaps",
            ).inc()

    def set_row_count(self, count: int) -> None:
        """Sync the live row count into the header (readers bound their
        copy by it)."""
        self._rows = count
        segment = self._segment
        if segment is not None:
            struct.pack_into("<Q", segment.buf, 24, count)

    def descriptor(self) -> PlaneDescriptor:
        """The fixed-size handle a reader needs to attach and validate."""
        segment = self._segment
        array = self._array
        if segment is None or array is None:
            raise ShmError("row store was released")
        return PlaneDescriptor(
            name=segment.name,
            generation=self._generation,
            rows=self._rows,
            dims=self._dims,
            capacity=array.shape[0],
        )

    def release(self) -> None:
        """Give the segment back to the plane's free-list."""
        segment = self._segment
        if segment is None:
            return
        self.detach()
        self._plane.release(segment)
        self._plane.forget_store(self)

    def detach(self) -> None:
        """Drop the numpy view and segment reference (the view must go
        before anyone closes the segment; the plane keeps the handle)."""
        self._array = None
        self._segment = None

    def __repr__(self) -> str:  # diagnostic only
        state = "released" if self._array is None else f"rows={self._rows}"
        return f"<ShmRowStore {state} dims={self._dims}>"


class PlaneReader:
    """Coordinator-side attach cache with generation validation."""

    def __init__(self) -> None:
        self._attached: dict[str, shared_memory.SharedMemory] = {}

    def read(self, descriptor: PlaneDescriptor) -> np.ndarray:
        """Copy the live rows a descriptor points at out of shared
        memory (one memcpy; no pickling, no queue).

        Raises :class:`StaleSegment` when the segment's header
        generation disagrees with the descriptor — grown, freed, or
        recycled since it was issued — and evicts the cached attach so
        the caller's re-request starts clean.
        """
        segment = self._attached.get(descriptor.name)
        if segment is None:
            try:
                segment = _attach(descriptor.name)
            except FileNotFoundError:
                raise StaleSegment(
                    f"segment {descriptor.name!r} no longer exists"
                ) from None
            self._attached[descriptor.name] = segment
            if obs.enabled():
                obs.counter(
                    "shm.attaches",
                    help="reader-side shared-memory segment attaches",
                ).inc()
        generation, rows, dims, capacity = _read_npv_header(segment)
        if generation != descriptor.generation:
            self.evict(descriptor.name)
            raise StaleSegment(
                f"segment {descriptor.name!r} is at generation {generation}, "
                f"descriptor says {descriptor.generation}"
            )
        view = np.ndarray(
            (capacity, dims), dtype=np.int64, buffer=segment.buf, offset=HEADER_SIZE
        )
        copied = np.array(view[:rows], copy=True)
        del view
        return copied

    def evict(self, name: str) -> None:
        """Drop (and close) one cached attach."""
        segment = self._attached.pop(name, None)
        if segment is not None:
            segment.close()

    def attached_count(self) -> int:
        """Number of segments currently held open by the cache."""
        return len(self._attached)

    def close(self) -> None:
        """Close every cached attach (never unlinks — readers don't own)."""
        for segment in self._attached.values():
            segment.close()
        self._attached.clear()


class ShmRing:
    """Producer half of the per-shard SPSC payload ring.

    The coordinator (single-threaded, sole producer) appends payloads
    at a private monotone head; the worker (sole consumer) advances the
    ``tail`` watermark in the header as it reads.  Offsets in a
    :class:`RingRef` are monotone byte positions, wrapped modulo
    capacity only at access time, so FIFO consumption keeps the
    watermark exact and a full ring simply rejects the push (the caller
    falls back to an inline payload — lossless either way).
    """

    def __init__(self, name: str, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._segment = shared_memory.SharedMemory(
            name=name, create=True, size=HEADER_SIZE + capacity
        )
        _RING_HEADER.pack_into(
            self._segment.buf, 0, _RING_MAGIC, _VERSION, 0, capacity, 0
        )
        self._head = 0

    @property
    def name(self) -> str:
        return self._segment.name

    def _tail(self) -> int:
        (tail,) = struct.unpack_from("<Q", self._segment.buf, _RING_TAIL_OFFSET)
        return tail

    def free_bytes(self) -> int:
        """Payload bytes the ring can accept right now (head-to-tail
        headroom; grows as the consumer advances the watermark)."""
        return self.capacity - (self._head - self._tail())

    def push(self, payload: bytes) -> RingRef | None:
        """Park one payload; None when it does not fit right now."""
        length = len(payload)
        if length > self.free_bytes():
            return None
        position = self._head % self.capacity
        first = min(length, self.capacity - position)
        base = HEADER_SIZE + position
        self._segment.buf[base : base + first] = payload[:first]
        if first < length:
            self._segment.buf[HEADER_SIZE : HEADER_SIZE + length - first] = payload[
                first:
            ]
        ref = RingRef(
            ring=self.name,
            offset=self._head,
            length=length,
            crc=zlib.crc32(payload),
        )
        self._head += length
        return ref

    def rollback(self, ref: RingRef) -> None:
        """Un-push the most recent payload (drop policy rejected it)."""
        if ref.offset + ref.length != self._head:
            raise ShmError("can only roll back the most recent push")
        self._head = ref.offset

    def close(self, unlink: bool = True) -> None:
        """Close the ring segment; the producer owns the unlink."""
        self._segment.close()
        if unlink:
            try:
                self._segment.unlink()
            except FileNotFoundError:
                pass


class RingReader:
    """Consumer half of the payload ring (lives in the worker)."""

    def __init__(self, name: str) -> None:
        self._segment = _attach(name)
        magic, version, _flags, capacity, _tail = _RING_HEADER.unpack_from(
            self._segment.buf, 0
        )
        if magic != _RING_MAGIC or version != _VERSION:
            raise ShmError(f"segment {name!r} is not a payload ring")
        self.capacity = capacity

    def read(self, ref: RingRef) -> bytes:
        """The payload behind one ref; advances the consumed watermark.

        A CRC mismatch means the producer and consumer disagree about
        the ring state — the worker raises, dies loudly, and the
        coordinator's journal replay (inline payloads) restores the
        shard; corruption is never silently applied.
        """
        position = ref.offset % self.capacity
        first = min(ref.length, self.capacity - position)
        base = HEADER_SIZE + position
        payload = bytes(self._segment.buf[base : base + first])
        if first < ref.length:
            payload += bytes(
                self._segment.buf[HEADER_SIZE : HEADER_SIZE + ref.length - first]
            )
        if zlib.crc32(payload) != ref.crc:
            raise ShmError(
                f"ring payload at offset {ref.offset} failed its CRC check"
            )
        struct.pack_into(
            "<Q", self._segment.buf, _RING_TAIL_OFFSET, ref.offset + ref.length
        )
        return payload

    def close(self) -> None:
        """Detach (the producer owns the unlink)."""
        self._segment.close()


def make_prefix(role: str, shard_id: int, epoch: int) -> str:
    """Deterministic segment-name prefix: coordinator pid + shard +
    spawn epoch (RP010's pid+counter scheme — no random ids)."""
    return f"repro-{os.getpid()}-{role}{shard_id}e{epoch}"


def cleanup_segments(prefix: str) -> list[str]:
    """Unlink every ``/dev/shm`` segment whose name starts with
    ``prefix`` — the crash-orphan sweep for SIGKILLed workers.

    Returns the names removed.  On platforms without a scannable
    ``/dev/shm`` this is a no-op (the resource tracker still collects
    orphans at interpreter exit).
    """
    removed: list[str] = []
    root = Path("/dev/shm")
    if not prefix or not root.is_dir():
        return removed
    for path in sorted(root.glob(f"{prefix}*")):
        try:
            path.unlink()
        except FileNotFoundError:
            continue
        except OSError:
            continue
        _untrack(path.name)
        removed.append(path.name)
    return removed


def live_segments(prefix: str) -> list[str]:
    """Names of segments currently present under a prefix (tests use
    this to assert leak-freedom after ``close()``)."""
    root = Path("/dev/shm")
    if not prefix or not root.is_dir():
        return []
    return sorted(path.name for path in root.glob(f"{prefix}*"))


__all__ = [
    "DEFAULT_RING_CAPACITY",
    "HEADER_SIZE",
    "NpvPlane",
    "PlaneDescriptor",
    "PlaneReader",
    "RingReader",
    "RingRef",
    "ShmError",
    "ShmRing",
    "ShmRowStore",
    "StaleSegment",
    "TOMBSTONE_GENERATION",
    "cleanup_segments",
    "live_segments",
    "make_prefix",
]
