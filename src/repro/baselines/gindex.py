"""gIndex baseline (Yan, Yu & Han), reimplemented on our gSpan miner.

gIndex indexes frequent fragments mined from the data side and answers a
query by intersecting the posting lists of the indexed fragments the
query contains.  Two configurations from the paper's experiments:

* **gIndex1** — maximum fragment size 10 edges, support ``0.1 N``
  (the original defaults; best effectiveness, heavy mining);
* **gIndex2** — all fragments up to 3 edges (support 1; cheaper mining,
  weaker pruning — the "better running time" stream setting).

By default every frequent fragment is indexed (a superset of gIndex's
feature set, so pruning power is at least as high); gIndex's
discriminative selection is available via
``GIndexConfig.discriminative_ratio`` (ablation A5 measures the trade),
and a Tree+Delta-style tree-only feature space via
``GIndexConfig.trees_only`` (ablation A6).

In the stream setting gIndex re-mines the features of the current stream
graphs at **every timestamp** (there is no incremental frequent-subgraph
maintenance) — exactly the cost that dominates the paper's Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from ..graph.labeled_graph import LabeledGraph
from ..isomorphism.vf2 import SubgraphMatcher
from .gspan import MinedPattern, mine_frequent_subgraphs

QueryId = Hashable
GraphId = Hashable


@dataclass(frozen=True)
class GIndexConfig:
    """Mining parameters of a gIndex instance.

    ``discriminative_ratio`` is gIndex's gamma: a mined fragment is kept
    only when the intersection of its (already selected) sub-fragments'
    posting lists is at least gamma times larger than its own posting
    list — i.e. the fragment adds real pruning power.  ``None`` keeps
    every frequent fragment (a superset feature set, never weaker).
    """

    max_fragment_edges: int = 10
    min_support_ratio: float = 0.1
    min_support_absolute: int | None = None  # overrides the ratio if set
    discriminative_ratio: float | None = None  # gIndex's gamma (e.g. 2.0)
    trees_only: bool = False  # Tree+Delta-style tree-only feature space

    def min_support(self, num_graphs: int) -> int:
        """Absolute support threshold for a DB of ``num_graphs`` graphs."""
        if self.min_support_absolute is not None:
            return max(1, self.min_support_absolute)
        return max(1, round(self.min_support_ratio * num_graphs))


def _select_discriminative(
    mined: list[MinedPattern], gamma: float
) -> list[MinedPattern]:
    """gIndex's discriminative selection.

    Fragments are visited smallest first; every single-edge fragment is
    kept (the base of the induction).  A larger fragment f is kept only
    when the intersection of the posting lists of its already-selected
    proper sub-fragments is at least ``gamma`` times its own posting
    list — otherwise the smaller features already prune (almost) as
    well and f is redundant.
    """
    selected: list[MinedPattern] = []
    for feature in sorted(mined, key=lambda m: m.num_edges):
        if feature.num_edges == 1:
            selected.append(feature)
            continue
        estimate: frozenset | None = None
        matcher = SubgraphMatcher(feature.graph)
        for smaller in selected:
            if smaller.num_edges >= feature.num_edges:
                continue
            if matcher.is_subgraph(smaller.graph):
                estimate = (
                    smaller.containing
                    if estimate is None
                    else estimate & smaller.containing
                )
        if estimate is None:
            selected.append(feature)
            continue
        if len(estimate) >= gamma * len(feature.containing):
            selected.append(feature)
    return selected


def gindex1_config(max_fragment_edges: int = 10) -> GIndexConfig:
    """The paper's 'gIndex1' setting: maxL fragments, support 0.1 N."""
    return GIndexConfig(max_fragment_edges=max_fragment_edges, min_support_ratio=0.1)


def gindex2_config() -> GIndexConfig:
    """The paper's 'gIndex2' setting: all fragments up to size 3."""
    return GIndexConfig(max_fragment_edges=3, min_support_absolute=1)


def treedelta_config(max_fragment_edges: int = 10) -> GIndexConfig:
    """Tree-feature-only configuration in the spirit of Tree+Delta (Zhao
    et al., VLDB'07, the paper's reference [28]): frequent *trees* are
    cheaper to mine than frequent graphs and retain most pruning power."""
    return GIndexConfig(
        max_fragment_edges=max_fragment_edges, min_support_ratio=0.1, trees_only=True
    )


class GIndex:
    """Static-database gIndex: mine once, filter many queries."""

    def __init__(
        self, data_graphs: Mapping[GraphId, LabeledGraph], config: GIndexConfig
    ) -> None:
        self.config = config
        self._graph_ids = list(data_graphs)
        graphs = [data_graphs[graph_id] for graph_id in self._graph_ids]
        min_support = config.min_support(len(graphs))
        mined = mine_frequent_subgraphs(
            graphs, min_support, config.max_fragment_edges, trees_only=config.trees_only
        )
        if config.discriminative_ratio is not None:
            mined = _select_discriminative(mined, config.discriminative_ratio)
        self.features: list[MinedPattern] = mined
        # Posting lists in terms of external graph ids.
        self._postings: list[frozenset] = [
            frozenset(self._graph_ids[index] for index in feature.containing)
            for feature in self.features
        ]

    @property
    def num_features(self) -> int:
        return len(self.features)

    def query_features(self, query: LabeledGraph) -> list[int]:
        """Indices of indexed features that are subgraphs of ``query``."""
        matcher = SubgraphMatcher(query)
        found: list[int] = []
        for index, feature in enumerate(self.features):
            if feature.num_edges > query.num_edges:
                continue
            if matcher.is_subgraph(feature.graph):
                found.append(index)
        return found

    def candidates_for(self, query: LabeledGraph) -> set[GraphId]:
        """Graphs that contain every indexed fragment the query contains."""
        candidates = set(self._graph_ids)
        for index in self.query_features(query):
            candidates &= self._postings[index]
            if not candidates:
                break
        return candidates


class GIndexStreamFilter:
    """Continuous form: features are re-mined from the current stream
    graphs on every refresh (the paper's per-timestamp mining cost)."""

    def __init__(
        self, queries: Mapping[QueryId, LabeledGraph], config: GIndexConfig
    ) -> None:
        self.config = config
        self.queries = dict(queries)
        self._candidates_per_query: dict[QueryId, set] = {
            query_id: set() for query_id in self.queries
        }
        self._stream_ids: list = []

    def refresh(self, stream_graphs: Mapping[Hashable, LabeledGraph]) -> None:
        """Re-mine features over the current stream graph set and
        recompute each query's candidate set (call once per timestamp)."""
        self._stream_ids = list(stream_graphs)
        index = GIndex(stream_graphs, self.config)
        for query_id, query in self.queries.items():
            self._candidates_per_query[query_id] = index.candidates_for(query)

    def is_candidate(self, stream_id: Hashable, query_id: QueryId) -> bool:
        """Does the pair pass the filter as of the last refresh?"""
        return stream_id in self._candidates_per_query[query_id]

    def candidates(self) -> set[tuple]:
        """All passing (stream, query) pairs as of the last refresh."""
        return {
            (stream_id, query_id)
            for query_id, streams in self._candidates_per_query.items()
            for stream_id in streams
        }
