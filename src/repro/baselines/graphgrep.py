"""GraphGrep baseline (Shasha et al., reimplemented per its paper).

GraphGrep indexes every label path up to a maximum length (the paper's
experiments use the default 4 — longer enumerations "take too long") and
filters with count dominance on the path fingerprint.  It needs no
mining, which is why it is stream-friendly, but paths capture little
structure, which is why it reports "more than half of the total pairs"
as candidates in the paper's Figure 2/14.

For streams the affected graph's fingerprint is recomputed on change —
cheap relative to per-timestamp mining, mirroring the cost profile the
paper measures.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from ..graph.labeled_graph import LabeledGraph
from .paths import PathFeature, fingerprint_dominates, path_fingerprint

QueryId = Hashable
StreamId = Hashable


class GraphGrepFilter:
    """Static-database form: one fingerprint per data graph, built once."""

    def __init__(
        self, data_graphs: Mapping[Hashable, LabeledGraph], max_length: int = 4
    ) -> None:
        self.max_length = max_length
        self._fingerprints = {
            graph_id: path_fingerprint(graph, max_length)
            for graph_id, graph in data_graphs.items()
        }

    def candidates_for(self, query: LabeledGraph) -> set:
        """Ids of data graphs whose fingerprint dominates the query's."""
        query_fingerprint = path_fingerprint(query, self.max_length)
        return {
            graph_id
            for graph_id, fingerprint in self._fingerprints.items()
            if fingerprint_dominates(fingerprint, query_fingerprint)
        }


class GraphGrepStreamFilter:
    """Continuous form: query fingerprints fixed, stream fingerprints
    recomputed whenever a stream graph changes."""

    def __init__(
        self, queries: Mapping[QueryId, LabeledGraph], max_length: int = 4
    ) -> None:
        self.max_length = max_length
        self._query_fingerprints: dict[QueryId, dict[PathFeature, int]] = {
            query_id: path_fingerprint(query, max_length)
            for query_id, query in queries.items()
        }
        self._stream_fingerprints: dict[StreamId, dict[PathFeature, int]] = {}

    def update_stream(self, stream_id: StreamId, graph: LabeledGraph) -> None:
        """Refresh the fingerprint of one stream graph (call per timestamp)."""
        self._stream_fingerprints[stream_id] = path_fingerprint(graph, self.max_length)

    def remove_stream(self, stream_id: StreamId) -> None:
        """Forget a stream's fingerprint."""
        self._stream_fingerprints.pop(stream_id, None)

    def is_candidate(self, stream_id: StreamId, query_id: QueryId) -> bool:
        """Does the stream's fingerprint dominate the query's?"""
        return fingerprint_dominates(
            self._stream_fingerprints[stream_id], self._query_fingerprints[query_id]
        )

    def candidates(self) -> set[tuple]:
        """All currently passing (stream, query) pairs."""
        return {
            (stream_id, query_id)
            for stream_id in self._stream_fingerprints
            for query_id in self._query_fingerprints
            if self.is_candidate(stream_id, query_id)
        }
