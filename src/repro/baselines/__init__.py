"""Comparison baselines: GraphGrep (path fingerprints) and gIndex
(frequent fragments via gSpan)."""

from .ctree import (
    ClosureGraph,
    ClosureTree,
    merge_closures,
    pseudo_subgraph_isomorphic,
)
from .gcoding import (
    GCodingFilter,
    GCodingStreamFilter,
    graph_signatures,
    signature_dominates,
    spectral_signature,
)
from .gindex import (
    GIndex,
    GIndexConfig,
    GIndexStreamFilter,
    gindex1_config,
    gindex2_config,
    treedelta_config,
)
from .graphgrep import GraphGrepFilter, GraphGrepStreamFilter
from .graphgrep_incremental import IncrementalGraphGrep, paths_through_edge
from .gspan import MinedPattern, is_min_code, mine_frequent_subgraphs
from .paths import fingerprint_dominates, path_fingerprint

__all__ = [
    "ClosureGraph",
    "ClosureTree",
    "GCodingFilter",
    "GCodingStreamFilter",
    "GIndex",
    "GIndexConfig",
    "GIndexStreamFilter",
    "GraphGrepFilter",
    "GraphGrepStreamFilter",
    "IncrementalGraphGrep",
    "MinedPattern",
    "fingerprint_dominates",
    "gindex1_config",
    "gindex2_config",
    "graph_signatures",
    "is_min_code",
    "merge_closures",
    "mine_frequent_subgraphs",
    "path_fingerprint",
    "paths_through_edge",
    "pseudo_subgraph_isomorphic",
    "signature_dominates",
    "spectral_signature",
    "treedelta_config",
]
