"""Closure-tree (CTree) baseline — He & Singh, ICDE'06 (the paper's [8]).

A *graph closure* is a bounding box over a set of graphs: vertices and
edges carry **sets** of labels, and an edge additionally carries an
"absent" marker when it is missing from some member.  Closures are
organized in a hierarchical index (leaves = data graphs, inner nodes =
closures of their children); a query descends the tree and prunes every
subtree whose closure cannot possibly contain it.

The possibly-contains test is CTree's *pseudo subgraph isomorphism*:
level-``k`` compatibility between query and closure vertices refined via
bipartite matchings of their neighborhoods, followed by a global
bipartite matching of all query vertices.  It admits every real
embedding (soundness is property-tested) but never runs an exponential
search — the paper's filter-only contract.

The closure of two (closure) graphs depends on a vertex correspondence;
quality of the correspondence affects only tightness, never soundness,
so we pair vertices greedily by label-set overlap and degree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Mapping, Sequence

from ..graph.labeled_graph import LabeledGraph

GraphId = Hashable

# Marker inside an edge label set: "this edge is absent in some member".
ABSENT = "∅"


@dataclass
class ClosureGraph:
    """A graph whose vertices/edges carry label *sets* (a bounding box).

    Vertices are 0..n-1; ``edges`` maps an (i, j) pair with i < j to the
    set of edge labels seen among members (plus ``ABSENT`` when the edge
    is missing in some member).
    """

    vertex_labels: list[frozenset]
    edges: dict[tuple, frozenset] = field(default_factory=dict)
    size: int = 1  # number of data graphs covered

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_labels)

    def neighbors(self, vertex: int) -> Iterator[tuple[int, frozenset]]:
        """Iterate ``(other_vertex, edge_label_set)`` pairs of ``vertex``."""
        for (a, b), labels in self.edges.items():
            if a == vertex:
                yield b, labels
            elif b == vertex:
                yield a, labels

    def degree(self, vertex: int) -> int:
        """Number of (possibly-absent) closure edges at ``vertex``."""
        return sum(1 for _ in self.neighbors(vertex))

    @classmethod
    def from_graph(cls, graph: LabeledGraph) -> "ClosureGraph":
        """Lift a concrete graph: singleton label sets, no ABSENT marks."""
        order = sorted(graph.vertices(), key=repr)
        index = {vertex: i for i, vertex in enumerate(order)}
        vertex_labels = [frozenset([graph.vertex_label(v)]) for v in order]
        edges: dict[tuple, frozenset] = {}
        for u, v, label in graph.edges():
            i, j = sorted((index[u], index[v]))
            edges[(i, j)] = frozenset([label])
        return cls(vertex_labels, edges, size=1)


def _pair_vertices(big: ClosureGraph, small: ClosureGraph) -> list[int | None]:
    """Greedy correspondence: for each vertex of ``small`` pick the most
    label-compatible unused vertex of ``big`` (None = unmatched; the
    closure then gains a fresh vertex slot)."""
    used: set[int] = set()
    mapping: list[int | None] = []
    order = sorted(range(small.num_vertices), key=lambda v: -small.degree(v))
    assignment: dict[int, int | None] = {}
    for small_vertex in order:
        best, best_score = None, -1.0
        for big_vertex in range(big.num_vertices):
            if big_vertex in used:
                continue
            overlap = len(
                small.vertex_labels[small_vertex] & big.vertex_labels[big_vertex]
            )
            score = overlap * 100 - abs(
                small.degree(small_vertex) - big.degree(big_vertex)
            )
            if overlap == 0:
                score -= 1000  # only as a last resort
            if score > best_score:
                best, best_score = big_vertex, score
        if best is not None:
            used.add(best)
        assignment[small_vertex] = best
    for small_vertex in range(small.num_vertices):
        mapping.append(assignment[small_vertex])
    return mapping


def merge_closures(first: ClosureGraph, second: ClosureGraph) -> ClosureGraph:
    """Closure of two closures under a greedy vertex correspondence."""
    big, small = (first, second) if first.num_vertices >= second.num_vertices else (second, first)
    mapping = _pair_vertices(big, small)
    vertex_labels = [set(labels) for labels in big.vertex_labels]
    next_slot = len(vertex_labels)
    small_to_merged: list[int] = []
    for small_vertex, target in enumerate(mapping):
        if target is None:
            vertex_labels.append(set(small.vertex_labels[small_vertex]))
            small_to_merged.append(next_slot)
            next_slot += 1
        else:
            vertex_labels[target] |= small.vertex_labels[small_vertex]
            small_to_merged.append(target)

    edges: dict[tuple, set] = {key: set(labels) for key, labels in big.edges.items()}
    small_edges: dict[tuple, frozenset] = {}
    for (a, b), labels in small.edges.items():
        i, j = sorted((small_to_merged[a], small_to_merged[b]))
        small_edges[(i, j)] = labels
    for key, labels in small_edges.items():
        if key in edges:
            edges[key] |= labels
        else:
            edges[key] = set(labels) | {ABSENT}  # big lacks this edge
    for key in edges:
        if key not in small_edges:
            edges[key] |= {ABSENT}  # small lacks this edge
    return ClosureGraph(
        [frozenset(labels) for labels in vertex_labels],
        {key: frozenset(labels) for key, labels in edges.items()},
        size=first.size + second.size,
    )


# ----------------------------------------------------------------------
# pseudo subgraph isomorphism (CTree's possibly-contains test)
# ----------------------------------------------------------------------
def _bipartite_match(candidates: Sequence[set]) -> bool:
    """Can every left node be matched to a distinct right node?
    (Augmenting-path matching; inputs are small neighbor sets.)"""
    match_right: dict = {}

    def augment(left: int, visited: set) -> bool:
        for right in candidates[left]:
            if right in visited:
                continue
            visited.add(right)
            if right not in match_right or augment(match_right[right], visited):
                match_right[right] = left
                return True
        return False

    for left in range(len(candidates)):
        if not augment(left, set()):
            return False
    return True


def pseudo_subgraph_isomorphic(
    query: LabeledGraph, closure: ClosureGraph, level: int = 2
) -> bool:
    """CTree's level-``k`` pseudo subgraph isomorphism.

    Returns False only when the query provably cannot embed into any
    member of the closure; True means "possibly contains".
    """
    query_order = sorted(query.vertices(), key=repr)
    query_index = {vertex: i for i, vertex in enumerate(query_order)}
    nq, nc = len(query_order), closure.num_vertices
    if nq > nc:
        return False

    # Level-0 compatibility: vertex label containment.
    compatible = [
        [
            query.vertex_label(query_order[qi]) in closure.vertex_labels[ci]
            for ci in range(nc)
        ]
        for qi in range(nq)
    ]

    closure_neighbors: list[list[tuple[int, frozenset]]] = [
        list(closure.neighbors(ci)) for ci in range(nc)
    ]
    query_neighbors: list[list[tuple[int, object]]] = [
        [
            (query_index[n], label)
            for n, label in query.neighbor_items(query_order[qi])
        ]
        for qi in range(nq)
    ]

    # Level-k refinement: neighborhoods must admit a bipartite matching.
    for _ in range(level):
        changed = False
        for qi in range(nq):
            for ci in range(nc):
                if not compatible[qi][ci]:
                    continue
                rows = []
                feasible = True
                for qn, q_edge_label in query_neighbors[qi]:
                    options = {
                        cn
                        for cn, c_edge_labels in closure_neighbors[ci]
                        if q_edge_label in c_edge_labels and compatible[qn][cn]
                    }
                    if not options:
                        feasible = False
                        break
                    rows.append(options)
                if not feasible or not _bipartite_match(rows):
                    compatible[qi][ci] = False
                    changed = True
        if not changed:
            break

    # Global matching: every query vertex to a distinct closure vertex.
    rows = [
        {ci for ci in range(nc) if compatible[qi][ci]} for qi in range(nq)
    ]
    if any(not row for row in rows):
        return False
    return _bipartite_match(rows)


# ----------------------------------------------------------------------
# the index tree
# ----------------------------------------------------------------------
@dataclass
class _Node:
    """One closure-tree node: a closure plus children or member ids."""

    closure: ClosureGraph
    children: list["_Node"] = field(default_factory=list)
    graph_ids: list[GraphId] = field(default_factory=list)  # leaves only

    @property
    def is_leaf(self) -> bool:
        return not self.children


class ClosureTree:
    """Hierarchical closure index over a static graph database."""

    def __init__(
        self,
        graphs: Mapping[GraphId, LabeledGraph],
        fanout: int = 4,
        level: int = 2,
    ) -> None:
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.graphs = dict(graphs)
        self.fanout = fanout
        self.level = level
        self.root = self._build()

    def _build(self) -> _Node | None:
        # Leaves, ordered by label histogram so that similar graphs are
        # grouped under the same parent (tighter closures).
        items = sorted(
            self.graphs.items(),
            key=lambda kv: (sorted(kv[1].label_histogram().items()), kv[1].num_vertices),
        )
        nodes = [
            _Node(ClosureGraph.from_graph(graph), graph_ids=[graph_id])
            for graph_id, graph in items
        ]
        if not nodes:
            return None
        while len(nodes) > 1:
            grouped: list[_Node] = []
            for start in range(0, len(nodes), self.fanout):
                chunk = nodes[start : start + self.fanout]
                closure = chunk[0].closure
                for child in chunk[1:]:
                    closure = merge_closures(closure, child.closure)
                grouped.append(_Node(closure, children=chunk))
            nodes = grouped
        return nodes[0]

    def candidates_for(self, query: LabeledGraph) -> set[GraphId]:
        """Graphs possibly containing the query (prunes whole subtrees
        whose closure fails the pseudo-isomorphism test)."""
        if self.root is None:
            return set()
        if query.num_vertices == 0:
            return set(self.graphs)
        out: set[GraphId] = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not pseudo_subgraph_isomorphic(query, node.closure, self.level):
                continue
            if node.is_leaf:
                out.update(node.graph_ids)
            else:
                stack.extend(node.children)
        return out

    def node_count(self) -> int:
        """Total nodes in the index tree (diagnostics)."""
        if self.root is None:
            return 0
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count
