"""Incremental GraphGrep: maintain path fingerprints under edge changes.

The classic GraphGrep stream filter recomputes a graph's whole path
fingerprint per timestamp, which explodes on dense graphs (our Figure 15
measures it).  But an edge change only affects the vertex-simple paths
*through that edge*: inserting ``(a, b)`` adds exactly the paths of the
form ``P1 · (a,b) · P2`` where ``P1`` ends at ``a``, ``P2`` starts at
``b``, the two halves are vertex-disjoint, and the total length is at
most ``L``; deleting it removes the same set.  This module enumerates
those composite paths directly and applies count deltas to a maintained
fingerprint — the same numbers as a full recompute (property-tested),
at churn-proportional cost.

Deltas must be computed against a consistent graph state: insertion
deltas *after* the edge is in the graph, deletion deltas *before* it is
removed; :meth:`IncrementalGraphGrep.apply_change` handles the ordering.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from ..graph.labeled_graph import LabeledGraph, VertexId
from ..graph.operations import DELETE, EdgeChange, GraphChangeOperation, apply_change
from .paths import DEFAULT_NUM_BUCKETS, _bucket_of, _canonical_feature, fingerprint_dominates, path_fingerprint

QueryId = Hashable
StreamId = Hashable


def _half_paths(
    graph: LabeledGraph,
    start: VertexId,
    max_length: int,
    forbidden: VertexId,
) -> list[tuple[tuple, tuple]]:
    """All vertex-simple paths of length 0..max_length starting at
    ``start`` that avoid ``forbidden``; returned as (id tuple, label
    tuple) pairs, both starting at ``start``."""
    out: list[tuple[tuple, tuple]] = []

    def extend(ids: list, labels: tuple, visited: set) -> None:
        out.append((tuple(ids), labels))
        if len(ids) - 1 >= max_length:
            return
        for neighbor in graph.neighbors(ids[-1]):
            if neighbor in visited or neighbor == forbidden:
                continue
            visited.add(neighbor)
            ids.append(neighbor)
            extend(ids, labels + (graph.vertex_label(neighbor),), visited)
            ids.pop()
            visited.discard(neighbor)

    extend([start], (graph.vertex_label(start),), {start})
    return out


def paths_through_edge(
    graph: LabeledGraph, a: VertexId, b: VertexId, max_length: int
) -> list[tuple]:
    """Canonical label features of every vertex-simple path of length
    <= max_length that uses edge (a, b), each occurrence listed once.

    The edge must currently be present in ``graph``.
    """
    features: list[tuple] = []
    left_halves = _half_paths(graph, a, max_length - 1, forbidden=b)
    for left_ids, left_labels in left_halves:
        remaining = max_length - 1 - (len(left_ids) - 1)
        left_set = set(left_ids)
        for right_ids, right_labels in _half_paths(graph, b, remaining, forbidden=a):
            if left_set & set(right_ids):
                # Any overlap breaks vertex-simplicity of the composite
                # path (a is never in the right half, b never in the left).
                continue
            # A vertex-simple path crosses the edge exactly once, so each
            # undirected path has exactly one (left, right) decomposition:
            # count it unconditionally (path_fingerprint's once-per-path
            # convention is preserved).
            features.append(_canonical_feature(left_labels[::-1] + right_labels))
    return features


class IncrementalGraphGrep:
    """A GraphGrep stream filter whose fingerprints evolve with the
    graph instead of being recomputed per timestamp."""

    def __init__(
        self,
        queries: Mapping[QueryId, LabeledGraph],
        max_length: int = 4,
        num_buckets: int | None = DEFAULT_NUM_BUCKETS,
    ) -> None:
        self.max_length = max_length
        self.num_buckets = num_buckets
        self._query_fingerprints = {
            query_id: path_fingerprint(query, max_length, num_buckets=num_buckets)
            for query_id, query in queries.items()
        }
        self._graphs: dict[StreamId, LabeledGraph] = {}
        self._fingerprints: dict[StreamId, dict] = {}

    # ------------------------------------------------------------------
    def add_stream(self, stream_id: StreamId, initial: LabeledGraph | None = None) -> None:
        """Attach a stream; its fingerprint is computed once, then evolves."""
        graph = initial.copy() if initial is not None else LabeledGraph()
        self._graphs[stream_id] = graph
        self._fingerprints[stream_id] = path_fingerprint(
            graph, self.max_length, num_buckets=self.num_buckets
        )

    def remove_stream(self, stream_id: StreamId) -> None:
        """Detach a stream."""
        del self._graphs[stream_id]
        del self._fingerprints[stream_id]

    def graph(self, stream_id: StreamId) -> LabeledGraph:
        """The stream's current graph (live — treat as read-only)."""
        return self._graphs[stream_id]

    # ------------------------------------------------------------------
    def apply(self, stream_id: StreamId, operation: GraphChangeOperation) -> None:
        """Apply a timestamp batch (deletions first, then insertions)."""
        for change in operation.sequentialized():
            self.apply_change(stream_id, change)

    def apply_change(self, stream_id: StreamId, change: EdgeChange) -> None:
        """Apply one edge change, updating the fingerprint by deltas."""
        graph = self._graphs[stream_id]
        fingerprint = self._fingerprints[stream_id]
        if change.op == DELETE:
            # Delta against the state *with* the edge, then remove it.
            self._bump(
                fingerprint,
                paths_through_edge(graph, change.u, change.v, self.max_length),
                -1,
            )
            labels_before = {
                vertex: graph.vertex_label(vertex) for vertex in (change.u, change.v)
            }
            apply_change(graph, change)
            for vertex, label in labels_before.items():
                if not graph.has_vertex(vertex):
                    # Dropped (isolated) vertices lose their length-0 path.
                    self._bump(fingerprint, [_canonical_feature((label,))], -1)
        else:
            created = [
                vertex for vertex in (change.u, change.v) if not graph.has_vertex(vertex)
            ]
            apply_change(graph, change)
            for vertex in created:
                self._bump(
                    fingerprint,
                    [_canonical_feature((graph.vertex_label(vertex),))],
                    +1,
                )
            self._bump(
                fingerprint,
                paths_through_edge(graph, change.u, change.v, self.max_length),
                +1,
            )

    def _bump(self, fingerprint: dict, features: list, delta: int) -> None:
        for feature in features:
            key: object = feature
            if self.num_buckets is not None:
                key = _bucket_of(feature, self.num_buckets)
            value = fingerprint.get(key, 0) + delta
            if value:
                fingerprint[key] = value
            else:
                fingerprint.pop(key, None)

    # ------------------------------------------------------------------
    def is_candidate(self, stream_id: StreamId, query_id: QueryId) -> bool:
        """Does the stream's fingerprint dominate the query's?"""
        return fingerprint_dominates(
            self._fingerprints[stream_id], self._query_fingerprints[query_id]
        )

    def candidates(self) -> set[tuple]:
        """All currently passing (stream, query) pairs."""
        return {
            (stream_id, query_id)
            for stream_id in self._fingerprints
            for query_id in self._query_fingerprints
            if self.is_candidate(stream_id, query_id)
        }

    def fingerprint(self, stream_id: StreamId) -> dict:
        """The maintained fingerprint (for tests/diagnostics)."""
        return self._fingerprints[stream_id]
