"""GCoding-style spectral filtering baseline.

The paper's related work cites GCoding (Zou et al.): encode each vertex
by spectral properties of its local neighborhood and filter with
eigenvalue dominance — effective, but "the computation of eigenvalue
features is too costly for stream setting".  We implement a sound
spectral vertex signature so that claim can be *measured* (ablation A4):

For a vertex ``u`` and radius ``r``, take the ball ``B(u, r)`` (vertices
within distance r).  For every unordered vertex-label pair ``{a, b}``
the signature stores the largest eigenvalue of the adjacency matrix of
the ball's subgraph restricted to vertices labeled ``a`` or ``b`` (and,
under the key ``ALL``, of the whole ball).

Soundness: a subgraph embedding ``f`` maps ``B_Q(u, r)`` injectively
into ``B_G(f(u), r)`` (graph distances only shrink under embeddings) and
preserves labels, so each restricted adjacency matrix of the query ball
is entrywise dominated by a zero-padded principal submatrix of the
corresponding target matrix — and the largest eigenvalue of a
nonnegative symmetric matrix is monotone under both operations.  Hence
``lambda_max`` per key can only grow from ``u`` to ``f(u)``, and
dominance filtering (with a small numerical tolerance) admits every true
match.  This is property-tested in ``tests/test_gcoding.py``.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Mapping

import numpy as np

from ..graph.labeled_graph import LabeledGraph, VertexId

ALL = ("*", "*")
EPSILON = 1e-9  # numerical slack so float noise cannot cause false negatives

Signature = dict  # key (label, label) or ALL -> lambda_max (float)


def ball(graph: LabeledGraph, center: VertexId, radius: int) -> set[VertexId]:
    """Vertices within graph distance ``radius`` of ``center``."""
    seen = {center}
    frontier = deque([(center, 0)])
    while frontier:
        vertex, distance = frontier.popleft()
        if distance == radius:
            continue
        for neighbor in graph.neighbors(vertex):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append((neighbor, distance + 1))
    return seen


def _lambda_max(graph: LabeledGraph, vertices: list[VertexId]) -> float:
    """Largest adjacency eigenvalue of the induced subgraph on ``vertices``."""
    if len(vertices) < 2:
        return 0.0
    index = {vertex: i for i, vertex in enumerate(vertices)}
    matrix = np.zeros((len(vertices), len(vertices)))
    for vertex in vertices:
        i = index[vertex]
        for neighbor in graph.neighbors(vertex):
            j = index.get(neighbor)
            if j is not None:
                matrix[i, j] = 1.0
    if not matrix.any():
        return 0.0
    return float(np.linalg.eigvalsh(matrix)[-1])


def spectral_signature(graph: LabeledGraph, vertex: VertexId, radius: int = 2) -> Signature:
    """Per-label-pair largest eigenvalues of the vertex's ball (sparse)."""
    members = sorted(ball(graph, vertex, radius), key=str)
    signature: Signature = {}
    total = _lambda_max(graph, members)
    if total > 0:
        signature[ALL] = total
    labels = sorted({str(graph.vertex_label(v)) for v in members})
    for i, label_a in enumerate(labels):
        for label_b in labels[i:]:
            restricted = [
                v for v in members if str(graph.vertex_label(v)) in (label_a, label_b)
            ]
            value = _lambda_max(graph, restricted)
            if value > 0:
                signature[(label_a, label_b)] = value
    return signature


def signature_dominates(big: Signature, small: Signature) -> bool:
    """Spectral dominance with numerical tolerance (sound direction)."""
    for key, value in small.items():
        if big.get(key, 0.0) < value - EPSILON:
            return False
    return True


def graph_signatures(graph: LabeledGraph, radius: int = 2) -> dict[VertexId, Signature]:
    """Spectral signature of every vertex of ``graph``."""
    return {vertex: spectral_signature(graph, vertex, radius) for vertex in graph.vertices()}


class GCodingFilter:
    """Pair filter: every query vertex needs a same-labeled data vertex
    whose spectral signature dominates its own."""

    def __init__(self, query: LabeledGraph, radius: int = 2) -> None:
        self.query = query
        self.radius = radius
        self._query_signatures = graph_signatures(query, radius)

    def admits_signatures(
        self, data_graph: LabeledGraph, data_signatures: Mapping[VertexId, Signature]
    ) -> bool:
        """Filter verdict against precomputed data-side signatures."""
        by_label: dict = {}
        for vertex, signature in data_signatures.items():
            by_label.setdefault(data_graph.vertex_label(vertex), []).append(signature)
        for query_vertex, query_signature in self._query_signatures.items():
            label = self.query.vertex_label(query_vertex)
            if not any(
                signature_dominates(candidate, query_signature)
                for candidate in by_label.get(label, ())
            ):
                return False
        return True

    def admits(self, data_graph: LabeledGraph) -> bool:
        """True iff the pair (query, data_graph) survives the filter."""
        return self.admits_signatures(data_graph, graph_signatures(data_graph, self.radius))


class GCodingStreamFilter:
    """Continuous form: signatures of a stream graph are recomputed on
    change (there is no incremental eigenvalue maintenance — the cost
    the paper's related-work section points at)."""

    def __init__(self, queries: Mapping[Hashable, LabeledGraph], radius: int = 2) -> None:
        self.radius = radius
        self._filters = {
            query_id: GCodingFilter(query, radius) for query_id, query in queries.items()
        }
        self._stream_graphs: dict = {}
        self._stream_signatures: dict = {}

    def update_stream(self, stream_id: Hashable, graph: LabeledGraph) -> None:
        """Recompute one stream graph's signatures (call per timestamp)."""
        self._stream_graphs[stream_id] = graph
        self._stream_signatures[stream_id] = graph_signatures(graph, self.radius)

    def remove_stream(self, stream_id: Hashable) -> None:
        """Forget a stream entirely."""
        self._stream_graphs.pop(stream_id, None)
        self._stream_signatures.pop(stream_id, None)

    def is_candidate(self, stream_id: Hashable, query_id: Hashable) -> bool:
        """Does the pair currently pass the spectral filter?"""
        return self._filters[query_id].admits_signatures(
            self._stream_graphs[stream_id], self._stream_signatures[stream_id]
        )

    def candidates(self) -> set[tuple]:
        """All currently passing (stream, query) pairs."""
        return {
            (stream_id, query_id)
            for stream_id in self._stream_graphs
            for query_id in self._filters
            if self.is_candidate(stream_id, query_id)
        }
