"""gSpan: frequent connected subgraph mining with minimum DFS codes.

This is a from-scratch implementation of Yan & Han's gSpan, the miner
behind the gIndex baseline (the paper's strongest effectiveness
comparator re-mines features every timestamp, which is exactly the cost
Figure 15 measures).

A pattern is represented by its *DFS code*: a sequence of 5-tuples
``(i, j, l_i, l_e, l_j)`` over DFS discovery indices, forward edges
having ``j == max+1`` and backward edges ``j < i``.  Mining grows codes
by rightmost-path extension only, keeps per-graph embedding lists (the
projected database), and prunes non-canonical branches with an
incremental minimum-DFS-code test — every frequent pattern is therefore
reported exactly once.

Support is the number of distinct data graphs containing the pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..graph.labeled_graph import LabeledGraph

DFSEdge = tuple  # (i, j, l_i, l_e, l_j)
Code = tuple  # tuple[DFSEdge, ...]
Embedding = tuple  # DFS index -> host vertex


def _extension_key(ext: DFSEdge) -> tuple:
    """Total order on candidate extensions (gSpan's edge order).

    Backward extensions precede forward ones; backward order is by target
    index ascending, forward order is by source index *descending* (deepest
    rightmost-path vertex first).  Labels break ties via ``repr`` so the
    order is total for any label type; canonicality only requires that the
    same order is used everywhere.
    """
    i, j, l_i, l_e, l_j = ext
    if j < i:  # backward
        return (0, j, repr(l_e), repr(l_j))
    return (1, -i, repr(l_i), repr(l_e), repr(l_j))


class _PatternState:
    """Pattern graph + rightmost path, rebuilt from a DFS code."""

    __slots__ = ("labels", "edges", "rightmost_path")

    def __init__(self, code: Sequence[DFSEdge]) -> None:
        first = code[0]
        self.labels: list = [first[2], first[4]]
        self.edges: dict[frozenset, object] = {frozenset((0, 1)): first[3]}
        parent: dict[int, int] = {1: 0}
        for i, j, _, l_e, l_j in code[1:]:
            if j == len(self.labels):  # forward edge discovers vertex j
                self.labels.append(l_j)
                parent[j] = i
            self.edges[frozenset((i, j))] = l_e
        rightmost = len(self.labels) - 1
        path = [rightmost]
        while path[-1] != 0:
            path.append(parent[path[-1]])
        path.reverse()
        self.rightmost_path = path

    @property
    def num_vertices(self) -> int:
        return len(self.labels)


def _pattern_graph(code: Sequence[DFSEdge]) -> LabeledGraph:
    """Materialize a DFS code as a LabeledGraph on vertices 0..n-1."""
    state = _PatternState(code)
    graph = LabeledGraph()
    for index, label in enumerate(state.labels):
        graph.add_vertex(index, label)
    for key, edge_label in state.edges.items():
        u, v = tuple(key)
        graph.add_edge(u, v, edge_label)
    return graph


def _extensions_in_graph(
    state: _PatternState, graph: LabeledGraph, embeddings: set[Embedding]
) -> dict[DFSEdge, set[Embedding]]:
    """All rightmost-path extensions of the pattern inside one host graph."""
    out: dict[DFSEdge, set[Embedding]] = {}
    rightmost = state.num_vertices - 1
    path = state.rightmost_path
    for embedding in embeddings:
        host_rightmost = embedding[rightmost]
        # Backward: rightmost vertex to earlier rightmost-path vertices.
        for j in path[:-1]:
            if frozenset((rightmost, j)) in state.edges:
                continue
            host_j = embedding[j]
            if graph.has_edge(host_rightmost, host_j):
                ext = (
                    rightmost,
                    j,
                    state.labels[rightmost],
                    graph.edge_label(host_rightmost, host_j),
                    state.labels[j],
                )
                out.setdefault(ext, set()).add(embedding)
        # Forward: from every rightmost-path vertex to an unmapped vertex.
        image = set(embedding)
        for i in reversed(path):
            host_i = embedding[i]
            for host_new, edge_label in graph.neighbor_items(host_i):
                if host_new in image:
                    continue
                ext = (
                    i,
                    rightmost + 1,
                    state.labels[i],
                    edge_label,
                    graph.vertex_label(host_new),
                )
                out.setdefault(ext, set()).add(embedding + (host_new,))
    return out


def _label_key(l_a: object, l_e: object, l_b: object) -> tuple:
    return (repr(l_a), repr(l_e), repr(l_b))


def is_min_code(code: Sequence[DFSEdge]) -> bool:
    """True iff ``code`` is the minimum DFS code of its own pattern.

    Builds the minimum code against the pattern itself, one edge at a
    time, aborting as soon as the canonical choice diverges from ``code``.
    """
    pattern = _pattern_graph(code)
    # Minimal first edge over all directed pattern edges.
    best_first: DFSEdge | None = None
    first_embeddings: set[Embedding] = set()
    for u, v, l_e in pattern.edges():
        for a, b in ((u, v), (v, u)):
            candidate = (0, 1, pattern.vertex_label(a), l_e, pattern.vertex_label(b))
            key = _label_key(candidate[2], candidate[3], candidate[4])
            if best_first is None or key < _label_key(best_first[2], best_first[3], best_first[4]):
                best_first = candidate
                first_embeddings = {(a, b)}
            elif candidate == best_first:
                first_embeddings.add((a, b))
    if best_first != code[0]:
        return False
    min_prefix: list[DFSEdge] = [best_first]
    embeddings = first_embeddings
    for position in range(1, len(code)):
        state = _PatternState(min_prefix)
        extensions = _extensions_in_graph(state, pattern, embeddings)
        if not extensions:
            return False  # cannot happen for a well-formed code
        best = min(extensions, key=_extension_key)
        if best != code[position]:
            return False
        embeddings = extensions[best]
        min_prefix.append(best)
    return True


@dataclass(frozen=True)
class MinedPattern:
    """One frequent pattern with its posting list."""

    code: Code
    graph: LabeledGraph
    support: int
    containing: frozenset  # indices of the data graphs containing it

    @property
    def num_edges(self) -> int:
        return len(self.code)


def mine_frequent_subgraphs(
    graphs: Sequence[LabeledGraph],
    min_support: int,
    max_edges: int,
    min_edges: int = 1,
    trees_only: bool = False,
) -> list[MinedPattern]:
    """All connected patterns with ``min_edges..max_edges`` edges contained
    in at least ``min_support`` of ``graphs``.

    ``trees_only=True`` restricts the pattern space to free trees by
    skipping backward extensions (every DFS-code forward edge adds a new
    vertex, so forward-only codes are exactly the trees) — the feature
    space of tree-based indexes such as Tree+Delta.  Embeddings still
    come from the full graphs, so supports remain exact.
    """
    if min_support < 1:
        raise ValueError("min_support must be a positive absolute count")
    if max_edges < 1:
        raise ValueError("max_edges must be at least 1")

    # Seed: all canonical single-edge codes with their embeddings.
    seeds: dict[DFSEdge, dict[int, set[Embedding]]] = {}
    for graph_index, graph in enumerate(graphs):
        for u, v, l_e in graph.edges():
            for a, b in ((u, v), (v, u)):
                l_a, l_b = graph.vertex_label(a), graph.vertex_label(b)
                if _label_key(l_a, l_e, l_b) > _label_key(l_b, l_e, l_a):
                    continue  # the mirror orientation is the canonical one
                seed = (0, 1, l_a, l_e, l_b)
                seeds.setdefault(seed, {}).setdefault(graph_index, set()).add((a, b))

    results: list[MinedPattern] = []

    def grow(code: list[DFSEdge], projected: dict[int, set[Embedding]]) -> None:
        if len(code) >= min_edges:
            results.append(
                MinedPattern(
                    code=tuple(code),
                    graph=_pattern_graph(code),
                    support=len(projected),
                    containing=frozenset(projected),
                )
            )
        if len(code) >= max_edges:
            return
        state = _PatternState(code)
        merged: dict[DFSEdge, dict[int, set[Embedding]]] = {}
        for graph_index, embeddings in projected.items():
            per_graph = _extensions_in_graph(state, graphs[graph_index], embeddings)
            for ext, new_embeddings in per_graph.items():
                merged.setdefault(ext, {})[graph_index] = new_embeddings
        for ext in sorted(merged, key=_extension_key):
            if trees_only and ext[1] < ext[0]:
                continue  # backward extension closes a cycle
            if len(merged[ext]) < min_support:
                continue
            new_code = code + [ext]
            if is_min_code(new_code):
                grow(new_code, merged[ext])

    for seed in sorted(seeds, key=_extension_key):
        if len(seeds[seed]) >= min_support:
            grow([seed], seeds[seed])
    return results
