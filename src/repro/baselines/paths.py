"""Label-path enumeration — the feature substrate of GraphGrep.

A *path feature* is the label sequence of a vertex-simple path,
canonicalized so the two directions of the same undirected path collide.
Faithful to the original GraphGrep (Shasha, Wang & Giugno, PODS'02):

* features are **vertex-label** sequences (bond/edge labels are not part
  of the fingerprint) — ``include_edge_labels=True`` is offered as an
  extension;
* the fingerprint is **hashed** into a fixed number of buckets
  (``num_buckets``), accumulating counts per bucket; collisions merge
  features, which preserves soundness (counts only grow) while costing
  pruning power — exactly the weakness the paper exploits in Figure 13.
  ``num_buckets=None`` keeps exact per-feature counts instead.

:func:`path_fingerprint` counts, per feature, the number of distinct
vertex-simple paths of length up to ``max_length``.
"""

from __future__ import annotations

import hashlib

from ..graph.labeled_graph import LabeledGraph, VertexId

PathFeature = tuple
DEFAULT_NUM_BUCKETS = 8192


def _canonical_feature(labels: tuple) -> PathFeature:
    reverse = labels[::-1]
    return labels if repr(labels) <= repr(reverse) else reverse


def _bucket_of(feature: PathFeature, num_buckets: int) -> int:
    digest = hashlib.blake2s(repr(feature).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_buckets


def path_fingerprint(
    graph: LabeledGraph,
    max_length: int = 4,
    include_edge_labels: bool = False,
    num_buckets: int | None = DEFAULT_NUM_BUCKETS,
) -> dict:
    """GraphGrep fingerprint: counts of (hashed) canonical label paths of
    length 0..max_length.

    Every undirected vertex-simple path is counted exactly once: directed
    enumerations are deduplicated by keeping only the direction whose
    vertex-id sequence is canonical (single-vertex paths count once).
    Keys are bucket indices when ``num_buckets`` is set, else the
    canonical label tuples themselves.
    """
    fingerprint: dict = {}

    def record(id_path: list[VertexId], labels: tuple) -> None:
        ids = tuple(repr(v) for v in id_path)
        if ids <= ids[::-1]:
            key: object = _canonical_feature(labels)
            if num_buckets is not None:
                key = _bucket_of(key, num_buckets)
            fingerprint[key] = fingerprint.get(key, 0) + 1

    def extend(id_path: list[VertexId], labels: tuple, visited: set[VertexId]) -> None:
        record(id_path, labels)
        if len(id_path) - 1 >= max_length:
            return
        current = id_path[-1]
        for neighbor, edge_label in graph.neighbor_items(current):
            if neighbor in visited:
                continue
            visited.add(neighbor)
            id_path.append(neighbor)
            if include_edge_labels:
                extension = (edge_label, graph.vertex_label(neighbor))
            else:
                extension = (graph.vertex_label(neighbor),)
            extend(id_path, labels + extension, visited)
            id_path.pop()
            visited.discard(neighbor)

    for vertex in graph.vertices():
        extend([vertex], (graph.vertex_label(vertex),), {vertex})
    return fingerprint


def fingerprint_dominates(data_fingerprint: dict, query_fingerprint: dict) -> bool:
    """GraphGrep's filtering predicate: the data graph must contain every
    query path feature (or bucket) at least as many times."""
    for feature, count in query_fingerprint.items():
        if data_fingerprint.get(feature, 0) < count:
            return False
    return True
