"""Dominance join engines between graph streams and query patterns."""

from .base import (
    BatchDeltas,
    JoinEngine,
    Pair,
    QueryId,
    QuerySet,
    QueryVector,
    StreamId,
    StreamListenerAdapter,
)
from .dominance import (
    dominated_count,
    is_bichromatic_skyline,
    maximal_vectors,
    pair_joinable_bruteforce,
)
from .dominated_set_cover import DominatedSetCoverJoin
from .matrix import DenseRowStore, MatrixJoin
from .nested_loop import NestedLoopJoin
from .skyline import SkylineEarlyStopJoin

ENGINES = {
    "nl": NestedLoopJoin,
    "dsc": DominatedSetCoverJoin,
    "skyline": SkylineEarlyStopJoin,
    "matrix": MatrixJoin,
}


def make_engine(name: str, query_set: QuerySet, options=None) -> JoinEngine:
    """Instantiate a join engine by name (nl/dsc/skyline from the paper,
    plus the vectorized matrix backend).

    ``options`` are engine-specific constructor keywords (e.g. the
    matrix engine's ``store_factory`` for shared-memory row storage).
    """
    try:
        engine_cls = ENGINES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {sorted(ENGINES)}"
        ) from None
    return engine_cls(query_set, **(dict(options) if options else {}))


__all__ = [
    "BatchDeltas",
    "DenseRowStore",
    "DominatedSetCoverJoin",
    "ENGINES",
    "JoinEngine",
    "MatrixJoin",
    "NestedLoopJoin",
    "Pair",
    "QueryId",
    "QuerySet",
    "QueryVector",
    "SkylineEarlyStopJoin",
    "StreamId",
    "StreamListenerAdapter",
    "dominated_count",
    "is_bichromatic_skyline",
    "make_engine",
    "maximal_vectors",
    "pair_joinable_bruteforce",
]
