"""Shared query-side preprocessing and the join-engine interface.

A *join engine* answers, continuously, which (stream, query) pairs
currently satisfy the Lemma 4.2 dominance condition: every node-projected
vector of the query is dominated by some vector of the stream graph.  The
query set is fixed up front (Definition 2.7 assumes this); engines react
to stream-side NPV deltas pushed by :class:`repro.nnt.NNTIndex` and can
report the candidate pair set at any timestamp.

Engines only ever consult dimensions that occur in some query vector
("subspace search within the non-zero dimensions of the query vectors",
Section IV-B.2) — stream activity on other dimensions cannot change any
dominance verdict and is dropped at the boundary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Hashable, Mapping

from .. import obs
from ..graph.labeled_graph import LabeledGraph, VertexId
from ..nnt.builder import project_graph
from ..nnt.projection import Dimension, DimensionScheme, NPV, PAPER_SCHEME

QueryId = Hashable
StreamId = Hashable
Pair = tuple[StreamId, QueryId]

#: One coalesced delta batch: net non-zero NPV changes keyed by
#: ``(vertex, dimension)``, as flushed by
#: :meth:`repro.nnt.incremental.NNTIndex.batch`.
BatchDeltas = Mapping[tuple[VertexId, Dimension], int]


@dataclass(frozen=True)
class QueryVector:
    """One query vertex's NPV, flattened into the engine-wide vector list."""

    index: int
    query_id: QueryId
    vertex: VertexId
    vector: NPV
    num_dims: int = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "num_dims", len(self.vector))


class QuerySet:
    """Fixed set of query graphs, pre-projected to NPVs once."""

    def __init__(
        self,
        queries: Mapping[QueryId, LabeledGraph],
        depth_limit: int = 3,
        scheme: DimensionScheme = PAPER_SCHEME,
    ) -> None:
        self.depth_limit = depth_limit
        self.scheme = scheme
        self.queries: dict[QueryId, LabeledGraph] = dict(queries)
        self.vectors: list[QueryVector] = []
        self.by_query: dict[QueryId, list[int]] = {}
        self.dimension_universe: set[Dimension] = set()
        for query_id, graph in self.queries.items():
            indices: list[int] = []
            for vertex, vector in sorted(
                project_graph(graph, depth_limit, scheme).items(), key=lambda kv: str(kv[0])
            ):
                record = QueryVector(len(self.vectors), query_id, vertex, vector)
                self.vectors.append(record)
                indices.append(record.index)
                self.dimension_universe.update(vector)
            self.by_query[query_id] = indices

    def __len__(self) -> int:
        return len(self.queries)

    def query_ids(self) -> list[QueryId]:
        """Ids of the registered query graphs."""
        return list(self.queries)


class JoinEngine(ABC):
    """Continuous dominance join between registered streams and the query set."""

    #: Short engine name (the :data:`repro.join.ENGINES` key); used to
    #: label this engine's observability instruments.
    name: str = "engine"

    def __init__(self, query_set: QuerySet) -> None:
        self.query_set = query_set
        # Cached once so the per-probe cost is one gated ``inc()``, not a
        # registry lookup; every concrete ``is_candidate`` bumps this.
        self._obs_checks = obs.counter(
            f"join.{self.name}.dominance_checks",
            help=f"dominance-filter probes answered by the {self.name} engine",
        )

    # -- stream lifecycle ------------------------------------------------
    @abstractmethod
    def register_stream(self, stream_id: StreamId, npvs: Mapping[VertexId, NPV]) -> None:
        """Attach a stream with its current per-vertex NPVs."""

    @abstractmethod
    def remove_stream(self, stream_id: StreamId) -> None:
        """Detach a stream entirely."""

    # -- NPV evolution (forwarded from the NNT index) ---------------------
    @abstractmethod
    def on_vertex_added(self, stream_id: StreamId, vertex: VertexId) -> None:
        """A vertex (empty NPV) joined the stream graph."""

    @abstractmethod
    def on_vertex_removed(self, stream_id: StreamId, vertex: VertexId) -> None:
        """A vertex (already zeroed) left the stream graph."""

    @abstractmethod
    def on_dimension_delta(
        self, stream_id: StreamId, vertex: VertexId, dim: Dimension, delta: int
    ) -> None:
        """One NPV entry of a stream vertex changed by ``delta``."""

    def batch_update(self, stream_id: StreamId, deltas: BatchDeltas) -> None:
        """One coalesced batch of net NPV deltas for a stream.

        Every delta is non-zero and every referenced vertex is currently
        registered (vertices removed mid-batch had their queued deltas
        purged at removal time).  The default unrolls the batch into
        per-delta calls; engines override it with a natively batched
        update when that is cheaper.
        """
        for (vertex, dim), delta in deltas.items():
            self.on_dimension_delta(stream_id, vertex, dim, delta)

    # -- results ----------------------------------------------------------
    @abstractmethod
    def is_candidate(self, stream_id: StreamId, query_id: QueryId) -> bool:
        """Does the pair currently pass the dominance filter?"""

    def candidates(self) -> set[Pair]:
        """All currently passing (stream, query) pairs."""
        with obs.span("join.candidates", engine=self.name):
            return {
                (stream_id, query_id)
                for stream_id in self.stream_ids()
                for query_id in self.query_set.query_ids()
                if self.is_candidate(stream_id, query_id)
            }

    @abstractmethod
    def stream_ids(self) -> list[StreamId]:
        """Ids of the currently attached streams."""


class StreamListenerAdapter:
    """Adapts one stream's :class:`~repro.nnt.incremental.NPVListener`
    callbacks onto a join engine by tagging them with the stream id."""

    def __init__(self, engine: JoinEngine, stream_id: StreamId) -> None:
        self.engine = engine
        self.stream_id = stream_id

    def on_vertex_added(self, vertex: VertexId) -> None:
        """Forward with this adapter's stream id."""
        self.engine.on_vertex_added(self.stream_id, vertex)

    def on_vertex_removed(self, vertex: VertexId) -> None:
        """Forward with this adapter's stream id."""
        self.engine.on_vertex_removed(self.stream_id, vertex)

    def on_dimension_delta(self, vertex: VertexId, dim: Dimension, delta: int) -> None:
        """Forward with this adapter's stream id."""
        self.engine.on_dimension_delta(self.stream_id, vertex, dim, delta)

    def on_batch_update(self, deltas: BatchDeltas) -> None:
        """Forward one coalesced delta batch with this adapter's stream id."""
        self.engine.batch_update(self.stream_id, deltas)
