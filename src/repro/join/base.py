"""Shared query-side preprocessing and the join-engine interface.

A *join engine* answers, continuously, which (stream, query) pairs
currently satisfy the Lemma 4.2 dominance condition: every node-projected
vector of the query is dominated by some vector of the stream graph.  The
paper fixes the query set up front (Definition 2.7); here queries are
first-class dynamic objects — :meth:`JoinEngine.add_query` snapshots the
live stream NPVs into the newcomer's dominance state and
:meth:`JoinEngine.remove_query` retires it, both without rebuilding the
engine.  Engines react to stream-side NPV deltas pushed by
:class:`repro.nnt.NNTIndex` and can report the candidate pair set at any
timestamp.

Dominance only depends on a query's projected NPV multiset, so queries
with identical projections are deduplicated into one *query group*: the
group owns a single set of dominance rows/counters and every member
query fans the group verdict out at :meth:`JoinEngine.candidates` time.
Engines are therefore keyed by ``group_id`` internally while the public
`is_candidate(stream_id, query_id)` surface is unchanged.

Engines only ever consult dimensions that occur in some query vector
("subspace search within the non-zero dimensions of the query vectors",
Section IV-B.2) — stream activity on other dimensions cannot change any
dominance verdict and is dropped at the boundary.  The dimension
universe is reference-counted across groups, so it grows and shrinks
exactly with query churn.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Hashable, Mapping

from .. import obs
from ..graph.labeled_graph import LabeledGraph, VertexId
from ..nnt.builder import project_graph
from ..nnt.projection import Dimension, DimensionScheme, NPV, PAPER_SCHEME

QueryId = Hashable
StreamId = Hashable
Pair = tuple[StreamId, QueryId]

#: One coalesced delta batch: net non-zero NPV changes keyed by
#: ``(vertex, dimension)``, as flushed by
#: :meth:`repro.nnt.incremental.NNTIndex.batch`.
BatchDeltas = Mapping[tuple[VertexId, Dimension], int]

#: Live stream NPVs handed to :meth:`JoinEngine.add_query` so the engine
#: can backfill mirrors for dimensions the newcomer introduced (deltas on
#: dimensions outside the universe were dropped at the boundary).
StreamNpvs = Mapping[StreamId, Mapping[VertexId, NPV]]

#: Canonical form of a query's projected NPV multiset — the dedup key.
Fingerprint = tuple


@dataclass(frozen=True)
class QueryVector:
    """One query vertex's NPV, flattened into the engine-wide vector list.

    ``query_id`` is the query that founded the record's group (kept for
    diagnostics); dominance state is shared by every group member.
    """

    index: int
    query_id: QueryId
    vertex: VertexId
    vector: NPV
    group: int = 0
    num_dims: int = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "num_dims", len(self.vector))


class QueryGroup:
    """One fingerprint-dedup group: the unit of engine-side dominance state."""

    __slots__ = ("group_id", "fingerprint", "indices", "members")

    def __init__(self, group_id: int, fingerprint: Fingerprint, indices: list[int]) -> None:
        self.group_id = group_id
        self.fingerprint = fingerprint
        #: Indices into :attr:`QuerySet.vectors` (shared by reference with
        #: every member's ``by_query`` entry).
        self.indices = indices
        #: Queries currently fanning this group's verdict out.
        self.members: list[QueryId] = []


@dataclass(frozen=True)
class QueryChange:
    """What one :meth:`QuerySet.add_query` / :meth:`~QuerySet.remove_query`
    did — engines key their incremental reaction off these fields."""

    query_id: QueryId
    group_id: int
    #: Add only: the query founded a brand-new group (no fingerprint hit).
    group_added: bool = False
    #: Remove only: the last member left and the group was retired.
    group_retired: bool = False
    #: The group's vector indices (new on add, retired on remove).
    indices: tuple[int, ...] = ()
    #: Dimensions that entered the universe with this change.
    added_dims: frozenset = frozenset()
    #: Dimensions that left the universe with this change.
    removed_dims: frozenset = frozenset()


class QuerySet:
    """Dynamic set of query graphs, projected to NPVs and deduplicated
    into fingerprint groups as they register."""

    def __init__(
        self,
        queries: Mapping[QueryId, LabeledGraph],
        depth_limit: int = 3,
        scheme: DimensionScheme = PAPER_SCHEME,
    ) -> None:
        self.depth_limit = depth_limit
        self.scheme = scheme
        self.queries: dict[QueryId, LabeledGraph] = {}
        #: Append-only; records of retired groups stay tombstoned (no live
        #: group references them), so indices are stable for engine state.
        self.vectors: list[QueryVector] = []
        #: Per query, the *shared* index list of its group.
        self.by_query: dict[QueryId, list[int]] = {}
        self.groups: dict[int, QueryGroup] = {}
        self.group_of: dict[QueryId, int] = {}
        self.dimension_universe: set[Dimension] = set()
        self._dim_refs: dict[Dimension, int] = {}
        self._fingerprints: dict[Fingerprint, int] = {}
        self._next_group = 0
        for query_id, graph in queries.items():
            self.add_query(query_id, graph)

    # -- dynamic membership ------------------------------------------------
    def add_query(self, query_id: QueryId, graph: LabeledGraph) -> QueryChange:
        """Project and register one query, deduplicating by fingerprint."""
        if query_id in self.queries:
            raise ValueError(f"query {query_id!r} is already monitored")
        projected = sorted(
            project_graph(graph, self.depth_limit, self.scheme).items(),
            key=lambda kv: str(kv[0]),
        )
        fingerprint: Fingerprint = tuple(
            sorted(
                tuple(sorted((repr(dim), value) for dim, value in vector.items()))
                for _, vector in projected
            )
        )
        self.queries[query_id] = graph
        group_id = self._fingerprints.get(fingerprint)
        added_dims: set[Dimension] = set()
        group_added = group_id is None
        if group_id is None:
            group_id = self._next_group
            self._next_group += 1
            indices: list[int] = []
            for vertex, vector in projected:
                record = QueryVector(len(self.vectors), query_id, vertex, vector, group_id)
                self.vectors.append(record)
                indices.append(record.index)
                for dim in vector:
                    if not self._dim_refs.get(dim):
                        added_dims.add(dim)
                    self._dim_refs[dim] = self._dim_refs.get(dim, 0) + 1
            self.dimension_universe |= added_dims
            group = QueryGroup(group_id, fingerprint, indices)
            self.groups[group_id] = group
            self._fingerprints[fingerprint] = group_id
        else:
            group = self.groups[group_id]
        group.members.append(query_id)
        self.group_of[query_id] = group_id
        self.by_query[query_id] = group.indices
        return QueryChange(
            query_id=query_id,
            group_id=group_id,
            group_added=group_added,
            indices=tuple(group.indices),
            added_dims=frozenset(added_dims),
        )

    def remove_query(self, query_id: QueryId) -> QueryChange:
        """Deregister one query, retiring its group when it was the last
        member and shrinking the dimension universe by refcount."""
        if query_id not in self.queries:
            raise KeyError(f"query {query_id!r} is not monitored")
        del self.queries[query_id]
        del self.by_query[query_id]
        group_id = self.group_of.pop(query_id)
        group = self.groups[group_id]
        group.members.remove(query_id)
        removed_dims: set[Dimension] = set()
        retired = not group.members
        indices = tuple(group.indices)
        if retired:
            del self.groups[group_id]
            del self._fingerprints[group.fingerprint]
            for index in group.indices:
                for dim in self.vectors[index].vector:
                    self._dim_refs[dim] -= 1
                    if not self._dim_refs[dim]:
                        del self._dim_refs[dim]
                        removed_dims.add(dim)
            self.dimension_universe -= removed_dims
        return QueryChange(
            query_id=query_id,
            group_id=group_id,
            group_retired=retired,
            indices=indices,
            removed_dims=frozenset(removed_dims),
        )

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.queries)

    def query_ids(self) -> list[QueryId]:
        """Ids of the registered query graphs."""
        return list(self.queries)

    @property
    def num_groups(self) -> int:
        """Distinct dominance-row groups currently live (the dedup win:
        ``len(query_set) - num_groups`` queries share another's rows)."""
        return len(self.groups)

    def live_vector_count(self) -> int:
        """Query-vector rows engines currently maintain (post-dedup)."""
        return sum(len(group.indices) for group in self.groups.values())


class JoinEngine(ABC):
    """Continuous dominance join between registered streams and the query set."""

    #: Short engine name (the :data:`repro.join.ENGINES` key); used to
    #: label this engine's observability instruments.
    name: str = "engine"

    def __init__(self, query_set: QuerySet) -> None:
        self.query_set = query_set
        # Cached once so the per-probe cost is one gated ``inc()``, not a
        # registry lookup; every concrete ``is_candidate`` bumps this.
        self._obs_checks = obs.counter(
            f"join.{self.name}.dominance_checks",
            help=f"dominance-filter probes answered by the {self.name} engine",
        )

    # -- query lifecycle ---------------------------------------------------
    def add_query(
        self,
        query_id: QueryId,
        graph: LabeledGraph,
        stream_npvs: StreamNpvs | None = None,
    ) -> QueryChange:
        """Register a standing query against the live streams.

        ``stream_npvs`` is a snapshot view of every registered stream's
        current NPVs, used to backfill mirrors for dimensions the
        newcomer introduced (their deltas were dropped at the boundary
        while no query referenced them).  The hook order is fixed:
        dimensions first (so mirrors are complete), then the new group's
        dominance state, both before the change is visible to
        :meth:`candidates`.
        """
        change = self.query_set.add_query(query_id, graph)
        npvs = stream_npvs or {}
        if change.added_dims:
            self._on_dims_added(change.added_dims, npvs)
        if change.group_added:
            self._on_group_added(change, npvs)
        return change

    def remove_query(self, query_id: QueryId) -> QueryChange:
        """Deregister a query, retiring group state when it was the last
        member and purging mirrors of dimensions that left the universe."""
        change = self.query_set.remove_query(query_id)
        if change.group_retired:
            self._on_group_retired(change)
        if change.removed_dims:
            self._on_dims_removed(change.removed_dims)
        return change

    # -- churn hooks (engines override what they need) ---------------------
    def _on_dims_added(self, dims: frozenset, stream_npvs: StreamNpvs) -> None:
        """New universe dimensions: backfill stream mirrors from ``stream_npvs``."""

    def _on_group_added(self, change: QueryChange, stream_npvs: StreamNpvs) -> None:
        """A new dominance group: build its state against current streams."""

    def _on_group_retired(self, change: QueryChange) -> None:
        """The group's last member left: retire its rows and counters."""

    def _on_dims_removed(self, dims: frozenset) -> None:
        """Dimensions left the universe: purge them from stream mirrors."""

    # -- stream lifecycle ------------------------------------------------
    @abstractmethod
    def register_stream(self, stream_id: StreamId, npvs: Mapping[VertexId, NPV]) -> None:
        """Attach a stream with its current per-vertex NPVs."""

    @abstractmethod
    def remove_stream(self, stream_id: StreamId) -> None:
        """Detach a stream entirely."""

    # -- NPV evolution (forwarded from the NNT index) ---------------------
    @abstractmethod
    def on_vertex_added(self, stream_id: StreamId, vertex: VertexId) -> None:
        """A vertex (empty NPV) joined the stream graph."""

    @abstractmethod
    def on_vertex_removed(self, stream_id: StreamId, vertex: VertexId) -> None:
        """A vertex (already zeroed) left the stream graph."""

    @abstractmethod
    def on_dimension_delta(
        self, stream_id: StreamId, vertex: VertexId, dim: Dimension, delta: int
    ) -> None:
        """One NPV entry of a stream vertex changed by ``delta``."""

    def batch_update(self, stream_id: StreamId, deltas: BatchDeltas) -> None:
        """One coalesced batch of net NPV deltas for a stream.

        Every delta is non-zero and every referenced vertex is currently
        registered (vertices removed mid-batch had their queued deltas
        purged at removal time).  The default unrolls the batch into
        per-delta calls; engines override it with a natively batched
        update when that is cheaper.
        """
        for (vertex, dim), delta in deltas.items():
            self.on_dimension_delta(stream_id, vertex, dim, delta)

    # -- results ----------------------------------------------------------
    @abstractmethod
    def is_candidate(self, stream_id: StreamId, query_id: QueryId) -> bool:
        """Does the pair currently pass the dominance filter?"""

    def candidates(self) -> set[Pair]:
        """All currently passing (stream, query) pairs."""
        with obs.span("join.candidates", engine=self.name):
            return {
                (stream_id, query_id)
                for stream_id in self.stream_ids()
                for query_id in self.query_set.query_ids()
                if self.is_candidate(stream_id, query_id)
            }

    @abstractmethod
    def stream_ids(self) -> list[StreamId]:
        """Ids of the currently attached streams."""


class StreamListenerAdapter:
    """Adapts one stream's :class:`~repro.nnt.incremental.NPVListener`
    callbacks onto a join engine by tagging them with the stream id."""

    def __init__(self, engine: JoinEngine, stream_id: StreamId) -> None:
        self.engine = engine
        self.stream_id = stream_id

    def on_vertex_added(self, vertex: VertexId) -> None:
        """Forward with this adapter's stream id."""
        self.engine.on_vertex_added(self.stream_id, vertex)

    def on_vertex_removed(self, vertex: VertexId) -> None:
        """Forward with this adapter's stream id."""
        self.engine.on_vertex_removed(self.stream_id, vertex)

    def on_dimension_delta(self, vertex: VertexId, dim: Dimension, delta: int) -> None:
        """Forward with this adapter's stream id."""
        self.engine.on_dimension_delta(self.stream_id, vertex, dim, delta)

    def on_batch_update(self, deltas: BatchDeltas) -> None:
        """Forward one coalesced delta batch with this adapter's stream id."""
        self.engine.batch_update(self.stream_id, deltas)
