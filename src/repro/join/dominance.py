"""Dominance utilities over sparse node-projected vectors (Section IV-B).

The paper adapts the skyline vocabulary to its join problem: a stream
vector ``v`` *dominates* a query vector ``u`` when ``v[d] >= u[d]`` on
every non-zero dimension of ``u`` (Lemma 4.2's direction).  This module
provides the sparse dominance predicate, the *maximal vector* set of a
query graph (its monochromatic skyline — the only vectors the skyline
join needs to probe), and brute-force oracles the tests compare the
engines against.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

from ..nnt.projection import dominates

Vector = Mapping[Hashable, int]


def maximal_vectors(vectors: Sequence[Vector]) -> list[int]:
    """Indices of the vectors not dominated by any *other* vector.

    This is the monochromatic skyline of the set under the paper's
    dominance order.  Duplicates: exactly one representative of each
    maximal duplicate group is kept (checking one of them suffices — a
    stream vector dominates either all duplicates or none).
    """
    kept: list[int] = []
    for i, candidate in enumerate(vectors):
        dominated = False
        for j, other in enumerate(vectors):
            if i == j:
                continue
            if dominates(other, candidate):
                if dict(other) != dict(candidate):
                    dominated = True
                    break
                if j < i:
                    # Duplicate group: keep only the first occurrence.
                    dominated = True
                    break
        if not dominated:
            kept.append(i)
    return kept


def dominated_count(vector: Vector, others: Iterable[Vector]) -> int:
    """How many of ``others`` the given vector dominates (ordering heuristic
    for the skyline join's fail-fast probe order)."""
    return sum(1 for other in others if dominates(vector, other))


def is_bichromatic_skyline(query_vector: Vector, stream_vectors: Iterable[Vector]) -> bool:
    """True iff no stream vector dominates ``query_vector`` (brute force)."""
    return not any(dominates(v, query_vector) for v in stream_vectors)


def pair_joinable_bruteforce(
    query_vectors: Iterable[Vector], stream_vectors: Sequence[Vector]
) -> bool:
    """Reference predicate: every query vector finds a dominating stream
    vector.  All three join engines must agree with this oracle."""
    return all(
        any(dominates(stream_vec, query_vec) for stream_vec in stream_vectors)
        for query_vec in query_vectors
    )
