"""Dominated-set-cover join (Theorem 4.1 / Figure 8 of the paper).

Query vectors are projected once into each of their non-zero single
dimensions and kept sorted there.  For every stream vector the engine
derives, per dimension, a *position counter* (how many query values it is
>= of, recovered by binary search) and, per query vector it has ever
covered in some dimension, a *dominant counter* (in how many of that
query vector's non-zero dimensions it currently dominates it).  A query
vector whose dominant counter reaches its non-zero-dimension count is
dominated in the full space; a (stream, query) pair is a candidate when
every vector of the query is dominated by some vector of the stream —
tracked by per-group uncovered counts (queries with identical projected
fingerprints share one group, :class:`repro.join.base.QueryGroup`) so
the answer set is read off in O(streams x queries).

When one NPV entry changes, only the query vectors whose sorted position
the stream value crossed have their counters touched — this is the
incremental update illustrated around Figure 9.  Query churn is equally
incremental: a new group splices its values into the sorted projections
(no counters move — insertion cannot change any other vector's dominant
count) and scans each stream once to seed its own counters; a retired
group filters its entries back out and drops its counters.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Mapping

from .. import obs
from ..graph.labeled_graph import VertexId
from ..nnt.projection import Dimension, NPV
from .base import BatchDeltas, JoinEngine, QueryChange, QueryId, QuerySet, StreamId, StreamNpvs


class _StreamState:
    """All per-stream counters of the DSC engine."""

    __slots__ = ("vectors", "dominant", "cover", "uncovered")

    def __init__(self, uncovered: dict) -> None:
        self.vectors: dict[VertexId, NPV] = {}
        # dominant[vertex][qv_index] -> in how many of qv's non-zero dims
        # this stream vertex currently dominates it (zeros dropped).
        self.dominant: dict[VertexId, dict[int, int]] = {}
        # cover[qv_index] -> number of stream vertices fully dominating it.
        self.cover: dict[int, int] = {}
        # uncovered[group_id] -> number of the group's (non-trivial) query
        # vectors not yet dominated by any stream vertex.
        self.uncovered: dict[int, int] = uncovered


class DominatedSetCoverJoin(JoinEngine):
    """The ``DSC`` engine (Procedure Dominated_Set_Cover_Join)."""

    name = "dsc"

    def __init__(self, query_set: QuerySet) -> None:
        super().__init__(query_set)
        # Sorted per-dimension projections of the query vectors.
        self._dim_values: dict[Dimension, list[int]] = {}
        self._dim_entries: dict[Dimension, list[int]] = {}
        # Indexed by global qv index; extended (never shrunk) on churn so
        # retired indices keep a harmless stale entry.
        self._required: list[int] = [record.num_dims for record in query_set.vectors]
        # Trivial (all-zero) query vectors are dominated by any existing
        # vertex; they are excluded from the counter machinery and handled
        # by a non-empty-stream test instead.
        self._trivial_per_group: dict[int, int] = {}
        self._base_uncovered: dict[int, int] = {}
        self._streams: dict[StreamId, _StreamState] = {}
        for group in query_set.groups.values():
            self._index_group(group.group_id, group.indices)

    def _index_group(self, group_id: int, indices: list[int] | tuple[int, ...]) -> None:
        """Splice one group's vectors into the sorted projections and set
        up its trivial/uncovered baselines (no stream counters touched)."""
        trivial = 0
        for index in indices:
            record = self.query_set.vectors[index]
            if record.num_dims == 0:
                trivial += 1
            for dim, value in record.vector.items():
                values = self._dim_values.setdefault(dim, [])
                entries = self._dim_entries.setdefault(dim, [])
                pos = bisect_right(values, value)
                values.insert(pos, value)
                entries.insert(pos, index)
        self._trivial_per_group[group_id] = trivial
        self._base_uncovered[group_id] = len(indices) - trivial

    # -- query churn -------------------------------------------------------
    def _on_dims_added(self, dims: frozenset, stream_npvs: StreamNpvs) -> None:
        # Runs before the new group is spliced in, so the mirror writes
        # cannot cross any sorted position: pure backfill, no counters.
        for stream_id, state in self._streams.items():
            npvs = stream_npvs.get(stream_id, {})
            for vertex, vector in state.vectors.items():
                source = npvs.get(vertex)
                if not source:
                    continue
                for dim in dims:
                    value = source.get(dim, 0)
                    if value:
                        vector[dim] = value

    def _on_group_added(self, change: QueryChange, stream_npvs: StreamNpvs) -> None:
        while len(self._required) < len(self.query_set.vectors):
            self._required.append(self.query_set.vectors[len(self._required)].num_dims)
        self._index_group(change.group_id, change.indices)
        base = self._base_uncovered[change.group_id]
        records = [
            self.query_set.vectors[index]
            for index in change.indices
            if self.query_set.vectors[index].num_dims > 0
        ]
        for state in self._streams.values():
            state.uncovered[change.group_id] = base
            for record in records:
                required = record.num_dims
                for vertex, vector in state.vectors.items():
                    count = sum(
                        1
                        for dim, value in record.vector.items()
                        if vector.get(dim, 0) >= value
                    )
                    if count:
                        state.dominant[vertex][record.index] = count
                        if count == required:
                            self._cover_gained(state, record.index)

    def _on_group_retired(self, change: QueryChange) -> None:
        retired = set(change.indices)
        dims_touched: set[Dimension] = set()
        for index in retired:
            dims_touched.update(self.query_set.vectors[index].vector)
        for dim in dims_touched:
            kept = [
                (value, index)
                for value, index in zip(self._dim_values[dim], self._dim_entries[dim])
                if index not in retired
            ]
            if kept:
                self._dim_values[dim] = [value for value, _ in kept]
                self._dim_entries[dim] = [index for _, index in kept]
            else:
                del self._dim_values[dim]
                del self._dim_entries[dim]
        for state in self._streams.values():
            for dominant in state.dominant.values():
                for index in retired:
                    dominant.pop(index, None)
            for index in retired:
                state.cover.pop(index, None)
            state.uncovered.pop(change.group_id, None)
        del self._trivial_per_group[change.group_id]
        del self._base_uncovered[change.group_id]

    def _on_dims_removed(self, dims: frozenset) -> None:
        # Purge retired dimensions from the mirrors: ``on_vertex_removed``
        # replays mirror entries through ``_value_changed``, which expects
        # every mirrored dimension to still have a sorted projection.
        for state in self._streams.values():
            for vector in state.vectors.values():
                for dim in dims:
                    vector.pop(dim, None)

    # -- stream lifecycle ------------------------------------------------
    def register_stream(self, stream_id: StreamId, npvs: Mapping[VertexId, NPV]) -> None:
        if stream_id in self._streams:
            raise ValueError(f"stream {stream_id!r} is already registered")
        self._streams[stream_id] = _StreamState(dict(self._base_uncovered))
        for vertex, vector in npvs.items():
            self.on_vertex_added(stream_id, vertex)
            for dim, value in vector.items():
                self.on_dimension_delta(stream_id, vertex, dim, value)

    def remove_stream(self, stream_id: StreamId) -> None:
        del self._streams[stream_id]

    def stream_ids(self) -> list[StreamId]:
        return list(self._streams)

    # -- NPV evolution ----------------------------------------------------
    def on_vertex_added(self, stream_id: StreamId, vertex: VertexId) -> None:
        state = self._streams[stream_id]
        state.vectors[vertex] = {}
        state.dominant[vertex] = {}

    def on_vertex_removed(self, stream_id: StreamId, vertex: VertexId) -> None:
        state = self._streams[stream_id]
        vector = state.vectors.pop(vertex, None)
        if vector:
            for dim, value in vector.items():
                self._value_changed(state, vertex, dim, value, 0)
        state.dominant.pop(vertex, None)

    def on_dimension_delta(
        self, stream_id: StreamId, vertex: VertexId, dim: Dimension, delta: int
    ) -> None:
        if dim not in self._dim_values:
            # Dimension absent from every query vector: cannot matter.
            return
        state = self._streams[stream_id]
        vector = state.vectors[vertex]
        old = vector.get(dim, 0)
        new = old + delta
        if new:
            vector[dim] = new
        else:
            vector.pop(dim, None)
        self._value_changed(state, vertex, dim, old, new)

    def batch_update(self, stream_id: StreamId, deltas: BatchDeltas) -> None:
        """Apply a coalesced batch: one value transition — hence at most
        one pair of bisects — per net-changed ``(vertex, dimension)``,
        instead of one per spliced tree edge."""
        state = self._streams[stream_id]
        dim_values = self._dim_values
        vectors = state.vectors
        for (vertex, dim), delta in deltas.items():
            if dim not in dim_values:
                continue
            vector = vectors[vertex]
            old = vector.get(dim, 0)
            new = old + delta
            if new:
                vector[dim] = new
            else:
                vector.pop(dim, None)
            self._value_changed(state, vertex, dim, old, new)

    # -- counter maintenance ----------------------------------------------
    def _value_changed(
        self, state: _StreamState, vertex: VertexId, dim: Dimension, old: int, new: int
    ) -> None:
        """Walk the sorted query projection of ``dim`` between the old and
        new positions of this stream value, adjusting dominant counters."""
        values = self._dim_values[dim]
        old_pos = bisect_right(values, old) if old > 0 else 0
        new_pos = bisect_right(values, new) if new > 0 else 0
        if new_pos == old_pos:
            return
        entries = self._dim_entries[dim]
        dominant = state.dominant[vertex]
        if new_pos > old_pos:
            for qv_index in entries[old_pos:new_pos]:
                count = dominant.get(qv_index, 0) + 1
                dominant[qv_index] = count
                if count == self._required[qv_index]:
                    self._cover_gained(state, qv_index)
        else:
            for qv_index in entries[new_pos:old_pos]:
                count = dominant[qv_index]
                if count == self._required[qv_index]:
                    self._cover_lost(state, qv_index)
                if count == 1:
                    del dominant[qv_index]
                else:
                    dominant[qv_index] = count - 1

    def _cover_gained(self, state: _StreamState, qv_index: int) -> None:
        count = state.cover.get(qv_index, 0) + 1
        state.cover[qv_index] = count
        if count == 1:
            state.uncovered[self.query_set.vectors[qv_index].group] -= 1

    def _cover_lost(self, state: _StreamState, qv_index: int) -> None:
        count = state.cover[qv_index]
        if count == 1:
            del state.cover[qv_index]
            state.uncovered[self.query_set.vectors[qv_index].group] += 1
        else:
            state.cover[qv_index] = count - 1

    # -- results ----------------------------------------------------------
    def is_candidate(self, stream_id: StreamId, query_id: QueryId) -> bool:
        self._obs_checks.inc()
        group_id = self.query_set.group_of[query_id]
        state = self._streams[stream_id]
        if state.uncovered[group_id]:
            if obs.enabled():
                obs.quality.record_pruned(self.name, self._blame(state, query_id))
            return False
        if self._trivial_per_group[group_id] and not state.vectors:
            if obs.enabled():
                # Trivial query vectors only fail on an empty stream.
                obs.quality.record_pruned(self.name, "combination")
            return False
        return True

    def _blame(self, state: _StreamState, query_id: QueryId) -> str:
        """Which dimension to blame for an uncovered query vector —
        diagnostic only (the verdict already came from the counters).
        Picks the first uncovered vector of the query and delegates to
        :func:`repro.obs.quality.blame_dimension` over the live stream
        vectors."""
        for qv_index in self.query_set.by_query[query_id]:
            if self._required[qv_index] > 0 and not state.cover.get(qv_index, 0):
                return obs.quality.blame_dimension(
                    self.query_set.vectors[qv_index].vector, state.vectors.values()
                )
        return "combination"
