"""Nested-loop dominance join — the paper's baseline search strategy.

Keeps a per-stream mirror of the NPVs (restricted to the query dimension
universe) and, on every candidate probe, compares each query vector
against the stream vectors pair by pair.  No cross-timestamp state is
reused, which is precisely why the improved engines of the paper exist.
"""

from __future__ import annotations

from typing import Mapping

from .. import obs
from ..graph.labeled_graph import VertexId
from ..nnt.projection import Dimension, NPV, dominates
from .base import BatchDeltas, JoinEngine, QueryId, QuerySet, StreamId, StreamNpvs


class NestedLoopJoin(JoinEngine):
    """Baseline ``NL`` engine (Section IV-B)."""

    name = "nl"

    def __init__(self, query_set: QuerySet) -> None:
        super().__init__(query_set)
        self._streams: dict[StreamId, dict[VertexId, NPV]] = {}

    # -- query churn -------------------------------------------------------
    def _on_dims_added(self, dims: frozenset, stream_npvs: StreamNpvs) -> None:
        # Mirrors were filtered to the old universe; pull the values the
        # new dimensions already accumulated from the live NPVs.
        for stream_id, mirror in self._streams.items():
            npvs = stream_npvs.get(stream_id, {})
            for vertex, vector in mirror.items():
                source = npvs.get(vertex)
                if not source:
                    continue
                for dim in dims:
                    value = source.get(dim, 0)
                    if value:
                        vector[dim] = value

    def _on_dims_removed(self, dims: frozenset) -> None:
        for mirror in self._streams.values():
            for vector in mirror.values():
                for dim in dims:
                    vector.pop(dim, None)

    # -- stream lifecycle ------------------------------------------------
    def register_stream(self, stream_id: StreamId, npvs: Mapping[VertexId, NPV]) -> None:
        if stream_id in self._streams:
            raise ValueError(f"stream {stream_id!r} is already registered")
        universe = self.query_set.dimension_universe
        self._streams[stream_id] = {
            vertex: {dim: value for dim, value in vector.items() if dim in universe}
            for vertex, vector in npvs.items()
        }

    def remove_stream(self, stream_id: StreamId) -> None:
        del self._streams[stream_id]

    def stream_ids(self) -> list[StreamId]:
        return list(self._streams)

    # -- NPV evolution ----------------------------------------------------
    def on_vertex_added(self, stream_id: StreamId, vertex: VertexId) -> None:
        self._streams[stream_id][vertex] = {}

    def on_vertex_removed(self, stream_id: StreamId, vertex: VertexId) -> None:
        self._streams[stream_id].pop(vertex, None)

    def on_dimension_delta(
        self, stream_id: StreamId, vertex: VertexId, dim: Dimension, delta: int
    ) -> None:
        if dim not in self.query_set.dimension_universe:
            return
        vector = self._streams[stream_id][vertex]
        value = vector.get(dim, 0) + delta
        if value:
            vector[dim] = value
        else:
            vector.pop(dim, None)

    def batch_update(self, stream_id: StreamId, deltas: BatchDeltas) -> None:
        """Fold a coalesced batch straight into the mirror (one dict
        update per net-changed entry, no per-call dispatch)."""
        universe = self.query_set.dimension_universe
        vectors = self._streams[stream_id]
        for (vertex, dim), delta in deltas.items():
            if dim not in universe:
                continue
            vector = vectors[vertex]
            value = vector.get(dim, 0) + delta
            if value:
                vector[dim] = value
            else:
                vector.pop(dim, None)

    # -- results ----------------------------------------------------------
    def is_candidate(self, stream_id: StreamId, query_id: QueryId) -> bool:
        self._obs_checks.inc()
        stream_vectors = list(self._streams[stream_id].values())
        for index in self.query_set.by_query[query_id]:
            query_vector = self.query_set.vectors[index].vector
            if not any(dominates(v, query_vector) for v in stream_vectors):
                if obs.enabled():
                    obs.quality.record_pruned(
                        self.name,
                        obs.quality.blame_dimension(query_vector, stream_vectors),
                    )
                return False
        return True
