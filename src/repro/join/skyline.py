"""Skyline-with-early-stop join (Section IV-B.2 / Figure 11 of the paper).

Instead of proving that every query vector is dominated, this engine
hunts for one *bichromatic skyline point*: a query vector no stream
vector dominates.  Finding one prunes the pair immediately (the early
stop).  Three optimizations from the paper:

1. **Query side, maximality** — only the maximal query vectors (the
   monochromatic skyline of the query's vector set) are probed: if any
   query vector escapes domination, a maximal one does (transitivity).
2. **Query side, ordering** — maximal vectors are probed in fail-fast
   order: those that dominate many other query vectors (and carry more
   L1 mass) are the least likely to be dominated, so they go first.
3. **Stream side, subspace search** — per dimension the engine keeps the
   member set, its cardinality and (lazily cached) maximum.  A probe
   first compares against the per-dimension maxima (exceeding one proves
   skyline-ness without scanning), then scans only the members of the
   probe's minimum-cardinality non-zero dimension: any dominator must
   appear in every non-zero dimension of the probe.
"""

from __future__ import annotations

from typing import Mapping

from .. import obs
from ..graph.labeled_graph import VertexId
from ..nnt.projection import Dimension, NPV, dominates, vector_mass
from .base import BatchDeltas, JoinEngine, QueryChange, QueryId, QuerySet, StreamId, StreamNpvs
from .dominance import dominated_count, maximal_vectors


class _StreamState:
    """Per-stream mirrors and per-dimension statistics."""

    __slots__ = ("vectors", "members", "max_cache", "version")

    def __init__(self) -> None:
        self.vectors: dict[VertexId, NPV] = {}
        # members[dim] -> set of vertices with a non-zero entry in dim.
        self.members: dict[Dimension, set[VertexId]] = {}
        # max_cache[dim] -> cached maximum value in dim (None = stale).
        self.max_cache: dict[Dimension, int | None] = {}
        self.version = 0

    def max_of(self, dim: Dimension) -> int:
        cached = self.max_cache.get(dim)
        if cached is None:
            members = self.members.get(dim)
            cached = max((self.vectors[v][dim] for v in members), default=0) if members else 0
            self.max_cache[dim] = cached
        return cached


class SkylineEarlyStopJoin(JoinEngine):
    """The ``Skyline`` engine (Procedure Skyline_with_Earlystop_Join)."""

    name = "skyline"

    def __init__(self, query_set: QuerySet) -> None:
        super().__init__(query_set)
        # Probe order per dedup group (member queries share it).
        self._probe_order: dict[int, list[int]] = {}
        for group in query_set.groups.values():
            self._rank_group(group.group_id, group.indices)
        self._streams: dict[StreamId, _StreamState] = {}
        # verdict cache: (stream, group) -> (stream version, verdict)
        self._verdicts: dict[tuple, tuple[int, bool]] = {}

    def _rank_group(self, group_id: int, indices: list[int] | tuple[int, ...]) -> None:
        vectors = [self.query_set.vectors[i].vector for i in indices]
        maximal = maximal_vectors(vectors)
        ranked = sorted(
            maximal,
            key=lambda local: (
                -dominated_count(vectors[local], vectors),
                -vector_mass(vectors[local]),
            ),
        )
        self._probe_order[group_id] = [indices[local] for local in ranked]

    # -- query churn -------------------------------------------------------
    def _on_dims_added(self, dims: frozenset, stream_npvs: StreamNpvs) -> None:
        for stream_id, state in self._streams.items():
            npvs = stream_npvs.get(stream_id, {})
            for vertex in state.vectors:
                source = npvs.get(vertex)
                if not source:
                    continue
                for dim in dims:
                    value = source.get(dim, 0)
                    if value:
                        self._apply_delta(state, vertex, dim, value)
            state.version += 1

    def _on_group_added(self, change: QueryChange, stream_npvs: StreamNpvs) -> None:
        self._rank_group(change.group_id, change.indices)

    def _on_group_retired(self, change: QueryChange) -> None:
        del self._probe_order[change.group_id]
        self._verdicts = {
            key: v for key, v in self._verdicts.items() if key[1] != change.group_id
        }

    def _on_dims_removed(self, dims: frozenset) -> None:
        for state in self._streams.values():
            for vector in state.vectors.values():
                for dim in dims:
                    vector.pop(dim, None)
            for dim in dims:
                state.members.pop(dim, None)
                state.max_cache.pop(dim, None)
            state.version += 1

    # -- stream lifecycle ------------------------------------------------
    def register_stream(self, stream_id: StreamId, npvs: Mapping[VertexId, NPV]) -> None:
        if stream_id in self._streams:
            raise ValueError(f"stream {stream_id!r} is already registered")
        self._streams[stream_id] = _StreamState()
        for vertex, vector in npvs.items():
            self.on_vertex_added(stream_id, vertex)
            for dim, value in vector.items():
                self.on_dimension_delta(stream_id, vertex, dim, value)

    def remove_stream(self, stream_id: StreamId) -> None:
        del self._streams[stream_id]
        self._verdicts = {key: v for key, v in self._verdicts.items() if key[0] != stream_id}

    def stream_ids(self) -> list[StreamId]:
        return list(self._streams)

    # -- NPV evolution ----------------------------------------------------
    def on_vertex_added(self, stream_id: StreamId, vertex: VertexId) -> None:
        state = self._streams[stream_id]
        state.vectors[vertex] = {}
        state.version += 1

    def on_vertex_removed(self, stream_id: StreamId, vertex: VertexId) -> None:
        state = self._streams[stream_id]
        vector = state.vectors.pop(vertex, None)
        if vector:
            for dim in vector:
                self._drop_member(state, dim, vertex)
        state.version += 1

    def on_dimension_delta(
        self, stream_id: StreamId, vertex: VertexId, dim: Dimension, delta: int
    ) -> None:
        if dim not in self.query_set.dimension_universe:
            return
        state = self._streams[stream_id]
        self._apply_delta(state, vertex, dim, delta)
        state.version += 1

    def batch_update(self, stream_id: StreamId, deltas: BatchDeltas) -> None:
        """Apply a coalesced batch: per-dimension statistics are updated
        per net entry and the verdict-cache version is bumped once for
        the whole batch."""
        universe = self.query_set.dimension_universe
        state = self._streams[stream_id]
        touched = False
        for (vertex, dim), delta in deltas.items():
            if dim not in universe:
                continue
            self._apply_delta(state, vertex, dim, delta)
            touched = True
        if touched:
            state.version += 1

    def _apply_delta(
        self, state: _StreamState, vertex: VertexId, dim: Dimension, delta: int
    ) -> None:
        vector = state.vectors[vertex]
        old = vector.get(dim, 0)
        new = old + delta
        if new:
            vector[dim] = new
            members = state.members.setdefault(dim, set())
            members.add(vertex)
            cached = state.max_cache.get(dim)
            if new > old:
                if cached is not None and new > cached:
                    state.max_cache[dim] = new
            elif cached is not None and old == cached:
                state.max_cache[dim] = None  # the maximum may have shrunk
        else:
            vector.pop(dim, None)
            self._drop_member(state, dim, vertex)

    def _drop_member(self, state: _StreamState, dim: Dimension, vertex: VertexId) -> None:
        members = state.members.get(dim)
        if members is not None:
            members.discard(vertex)
            if not members:
                del state.members[dim]
                state.max_cache.pop(dim, None)
            else:
                state.max_cache[dim] = None

    # -- results ----------------------------------------------------------
    def is_candidate(self, stream_id: StreamId, query_id: QueryId) -> bool:
        self._obs_checks.inc()
        state = self._streams[stream_id]
        group_id = self.query_set.group_of[query_id]
        key = (stream_id, group_id)
        cached = self._verdicts.get(key)
        if cached is not None and cached[0] == state.version:
            return cached[1]
        verdict = self._evaluate(state, group_id)
        self._verdicts[key] = (state.version, verdict)
        return verdict

    def _evaluate(self, state: _StreamState, group_id: int) -> bool:
        # Pruning blame is recorded here (fresh evaluations only): a
        # verdict replayed from the cache does not recount, so the
        # pruned{dim=...} counters measure distinct verdict computations.
        for qv_index in self._probe_order[group_id]:
            probe = self.query_set.vectors[qv_index].vector
            if not probe:
                # Trivial all-zero probe: dominated by any existing vertex.
                if not state.vectors:
                    if obs.enabled():
                        obs.quality.record_pruned(self.name, "combination")
                    return False
                continue
            best_dim: Dimension | None = None
            best_cardinality = None
            skyline_dim: Dimension | None = None
            for dim, value in probe.items():
                members = state.members.get(dim)
                cardinality = len(members) if members else 0
                if cardinality == 0 or value > state.max_of(dim):
                    # No stream vector can dominate the probe in this dim:
                    # the probe is a bichromatic skyline point.
                    skyline_dim = dim
                    break
                if best_cardinality is None or cardinality < best_cardinality:
                    best_cardinality = cardinality
                    best_dim = dim
            if skyline_dim is not None:
                if obs.enabled():
                    obs.quality.record_pruned(self.name, str(skyline_dim))
                return False  # early stop: the pair is pruned
            assert best_dim is not None
            vectors = state.vectors
            if not any(dominates(vectors[v], probe) for v in state.members[best_dim]):
                # Every probe dimension is individually covered (the max
                # checks above passed), just never by one vector at once.
                if obs.enabled():
                    obs.quality.record_pruned(self.name, "combination")
                return False
        return True
