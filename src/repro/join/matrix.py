"""Dense vectorized dominance join — the throughput-oriented backend.

The three paper engines chase per-delta incrementality; this one chases
bulk arithmetic instead.  Every query vector and every stream vertex's
NPV is projected onto the query dimension universe (Section IV-B.2's
subspace restriction) as a row of a dense integer matrix, and the
Lemma 4.2 dominance condition is answered for *all* query vectors at
once with broadcast comparisons::

    covered[j] = any_i  all_d  S[i, d] >= Q[j, d]

which is exactly sparse dominance: dimensions outside a query vector's
support are zero in its row, and any stream value is >= 0.  Stream rows
live in a compact grow-by-doubling matrix (removal swaps the last row
into the hole), so a coalesced delta batch lands as one fancy-indexed
scatter-add.  Coverage is recomputed lazily per stream — a stream that
was touched pays one vectorized sweep at the next poll, however many
deltas arrived — with the stream axis chunked to bound the broadcast
temporary.  The trade-off versus DSC/Skyline: per-poll cost grows with
``stream vertices x query vectors x dimensions``, but the constant is a
numpy comparison, which wins when the query set is large.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from .. import obs
from ..graph.labeled_graph import VertexId
from ..nnt.projection import Dimension, NPV
from .base import BatchDeltas, JoinEngine, QueryId, QuerySet, StreamId

#: Stream rows compared per broadcast block, bounding the boolean
#: temporary to CHUNK x #query-vectors x #dimensions bytes.
_CHUNK = 128

_INITIAL_ROWS = 16


class DenseRowStore:
    """In-process numpy row storage — the default ``RowStore``.

    The storage seam behind :class:`_StreamState`: anything exposing
    ``array`` (a ``(capacity, dims)`` int64 ndarray), ``grow()``
    (double capacity in place, preserving rows), ``set_row_count(n)``
    (sync the live row count for external readers), ``descriptor()``
    (an exportable handle, or ``None`` when rows only live in-process),
    and ``release()`` can back a stream.  The shared-memory plane
    (:class:`repro.runtime.shm.ShmRowStore`) implements the same
    surface and is injected via ``store_factory`` — the engine never
    imports it, keeping the concurrency layering one-directional.
    """

    __slots__ = ("array",)

    def __init__(self, rows: int, dims: int) -> None:
        self.array = np.zeros((rows, dims), dtype=np.int64)

    def grow(self) -> None:
        """Double capacity in place, preserving existing rows."""
        grown = np.zeros(
            (self.array.shape[0] * 2, self.array.shape[1]), dtype=np.int64
        )
        grown[: self.array.shape[0]] = self.array
        self.array = grown

    def set_row_count(self, count: int) -> None:
        """No external readers — nothing to sync."""

    def descriptor(self) -> Any | None:
        """No exportable handle — rows live only in this process."""
        return None

    def release(self) -> None:
        """Nothing to free beyond normal garbage collection."""


#: ``store_factory(initial_rows, num_dims) -> RowStore``.
StoreFactory = Callable[[int, int], Any]


class _StreamState:
    """One stream's dense NPV matrix and its lazily cached coverage."""

    __slots__ = ("store", "row_of", "vertex_at", "count", "covered", "verdicts")

    def __init__(self, num_dims: int, store_factory: StoreFactory) -> None:
        self.store = store_factory(_INITIAL_ROWS, num_dims)
        self.row_of: dict[VertexId, int] = {}
        self.vertex_at: list[VertexId] = []
        self.count = 0
        self.covered: np.ndarray | None = None  # None = stale
        self.verdicts: np.ndarray | None = None  # per query ordinal; None = stale

    @property
    def matrix(self) -> np.ndarray:
        return self.store.array

    def invalidate(self) -> None:
        self.covered = None
        self.verdicts = None


class MatrixJoin(JoinEngine):
    """The ``matrix`` engine: broadcast dominance over dense NPV rows."""

    name = "matrix"

    def __init__(
        self, query_set: QuerySet, store_factory: StoreFactory | None = None
    ) -> None:
        super().__init__(query_set)
        self._store_factory: StoreFactory = store_factory or DenseRowStore
        self._dims = sorted(query_set.dimension_universe, key=repr)
        self._dim_col: dict[Dimension, int] = {
            dim: col for col, dim in enumerate(self._dims)
        }
        self._query_matrix = np.zeros(
            (len(query_set.vectors), len(self._dims)), dtype=np.int64
        )
        for record in query_set.vectors:
            for dim, value in record.vector.items():
                self._query_matrix[record.index, self._dim_col[dim]] = value
        self._query_rows: dict[QueryId, np.ndarray] = {
            query_id: np.asarray(indices, dtype=np.intp)
            for query_id, indices in query_set.by_query.items()
        }
        # Flat vector-row -> query-ordinal map so one bincount over the
        # uncovered rows yields every query's verdict at once.
        self._query_ord: dict[QueryId, int] = {
            query_id: ordinal for ordinal, query_id in enumerate(self._query_rows)
        }
        self._row_query = np.zeros(len(query_set.vectors), dtype=np.intp)
        for query_id, rows in self._query_rows.items():
            self._row_query[rows] = self._query_ord[query_id]
        self._streams: dict[StreamId, _StreamState] = {}

    # -- stream lifecycle ------------------------------------------------
    def register_stream(self, stream_id: StreamId, npvs: Mapping[VertexId, NPV]) -> None:
        if stream_id in self._streams:
            raise ValueError(f"stream {stream_id!r} is already registered")
        state = _StreamState(len(self._dims), self._store_factory)
        self._streams[stream_id] = state
        for vertex, vector in npvs.items():
            row = self._add_row(state, vertex)
            for dim, value in vector.items():
                col = self._dim_col.get(dim)
                if col is not None:
                    state.matrix[row, col] = value

    def remove_stream(self, stream_id: StreamId) -> None:
        state = self._streams.pop(stream_id)
        state.store.release()

    def stream_ids(self) -> list[StreamId]:
        return list(self._streams)

    def close(self) -> None:
        """Release every stream's row storage (a no-op for the default
        in-process store; frees shared-memory segments otherwise)."""
        for state in self._streams.values():
            state.store.release()
        self._streams.clear()

    # -- row storage introspection ----------------------------------------
    def npv_descriptor(self, stream_id: StreamId) -> Any | None:
        """The stream's exportable row-store handle (``None`` when rows
        live only in-process) — what ships over the wire instead of rows."""
        return self._streams[stream_id].store.descriptor()

    def npv_rows(self, stream_id: StreamId) -> np.ndarray:
        """A copy of the stream's live NPV rows (tests pin the shared-
        memory plane bit-for-bit against this)."""
        state = self._streams[stream_id]
        return np.array(state.matrix[: state.count], copy=True)

    def segment_manifest(self) -> dict[str, dict[str, Any]]:
        """Per-stream segment descriptors for the checkpoint manifest.

        Only streams with exportable storage appear; with the default
        store the manifest is empty and checkpoints are unchanged.
        """
        segments: dict[str, dict[str, Any]] = {}
        for stream_id, state in self._streams.items():
            descriptor = state.store.descriptor()
            if descriptor is None:
                continue
            segments[str(stream_id)] = {
                "name": descriptor.name,
                "generation": descriptor.generation,
                "rows": descriptor.rows,
                "dims": descriptor.dims,
                "capacity": descriptor.capacity,
            }
        return segments

    # -- row management ---------------------------------------------------
    def _add_row(self, state: _StreamState, vertex: VertexId) -> int:
        if state.count == state.matrix.shape[0]:
            state.store.grow()
        row = state.count
        state.row_of[vertex] = row
        state.vertex_at.append(vertex)
        state.count += 1
        state.store.set_row_count(state.count)
        # The slot is all-zero: rows are zeroed when vacated.
        return row

    def _drop_row(self, state: _StreamState, vertex: VertexId) -> None:
        row = state.row_of.pop(vertex)
        last = state.count - 1
        if row != last:
            state.matrix[row] = state.matrix[last]
            moved = state.vertex_at[last]
            state.vertex_at[row] = moved
            state.row_of[moved] = row
        state.matrix[last] = 0
        state.vertex_at.pop()
        state.count = last
        state.store.set_row_count(state.count)

    # -- NPV evolution ----------------------------------------------------
    def on_vertex_added(self, stream_id: StreamId, vertex: VertexId) -> None:
        state = self._streams[stream_id]
        self._add_row(state, vertex)
        # A fresh all-zero row can newly cover all-zero query vectors.
        state.invalidate()

    def on_vertex_removed(self, stream_id: StreamId, vertex: VertexId) -> None:
        state = self._streams[stream_id]
        self._drop_row(state, vertex)
        state.invalidate()

    def on_dimension_delta(
        self, stream_id: StreamId, vertex: VertexId, dim: Dimension, delta: int
    ) -> None:
        col = self._dim_col.get(dim)
        if col is None:
            return
        state = self._streams[stream_id]
        state.matrix[state.row_of[vertex], col] += delta
        state.invalidate()

    def batch_update(self, stream_id: StreamId, deltas: BatchDeltas) -> None:
        """Land a coalesced batch as one fancy-indexed scatter-add.

        Batch keys are unique ``(vertex, dimension)`` pairs, so the
        target cells are distinct and plain ``+=`` indexing is exact.
        """
        state = self._streams[stream_id]
        dim_col = self._dim_col
        row_of = state.row_of
        rows: list[int] = []
        cols: list[int] = []
        values: list[int] = []
        for (vertex, dim), delta in deltas.items():
            col = dim_col.get(dim)
            if col is None:
                continue
            rows.append(row_of[vertex])
            cols.append(col)
            values.append(delta)
        if rows:
            state.matrix[rows, cols] += np.asarray(values, dtype=np.int64)
            state.invalidate()

    # -- results ----------------------------------------------------------
    def _coverage(self, state: _StreamState) -> np.ndarray:
        """Boolean per query vector: dominated by some stream row?"""
        if state.covered is not None:
            return state.covered
        query_matrix = self._query_matrix
        covered = np.zeros(query_matrix.shape[0], dtype=bool)
        active = state.matrix[: state.count]
        for start in range(0, state.count, _CHUNK):
            block = active[start : start + _CHUNK]
            covered |= (block[:, None, :] >= query_matrix[None, :, :]).all(axis=2).any(
                axis=0
            )
            if covered.all():
                break
        state.covered = covered
        return covered

    def _verdicts(self, state: _StreamState) -> np.ndarray:
        """Boolean per query ordinal: every one of its vectors covered?

        One bincount over the uncovered rows replaces a fancy-indexed
        gather per ``is_candidate`` call — the poll loop asks about every
        (stream, query) pair, so per-pair work must be a plain lookup.
        """
        if state.verdicts is None:
            uncovered = self._row_query[~self._coverage(state)]
            misses = np.bincount(uncovered, minlength=len(self._query_ord))
            state.verdicts = misses == 0
        return state.verdicts

    def is_candidate(self, stream_id: StreamId, query_id: QueryId) -> bool:
        self._obs_checks.inc()
        state = self._streams[stream_id]
        if self._query_rows[query_id].size == 0:
            # Degenerate empty query graph: vacuously covered (the other
            # engines' per-vector loops agree).
            return True
        if state.count == 0:
            if obs.enabled():
                obs.quality.record_pruned(self.name, self._blame(state, query_id))
            return False
        verdict = bool(self._verdicts(state)[self._query_ord[query_id]])
        if not verdict and obs.enabled():
            obs.quality.record_pruned(self.name, self._blame(state, query_id))
        return verdict

    def _blame(self, state: _StreamState, query_id: QueryId) -> str:
        """Which dimension to blame for a failed verdict — diagnostic
        only, same convention as :func:`repro.obs.quality.blame_dimension`:
        the first uncovered query vector's first dimension (``_dims`` is
        sorted by ``repr``, matching the sorted-by-``str`` blame order)
        that no stream row covers alone, else ``"combination"``."""
        query_rows = self._query_rows[query_id]
        if state.count == 0:
            for row in query_rows:
                qrow = self._query_matrix[row]
                nonzero = np.flatnonzero(qrow)
                if nonzero.size:
                    return str(self._dims[int(nonzero[0])])
            return "combination"
        covered = self._coverage(state)
        active = state.matrix[: state.count]
        for row in query_rows:
            if covered[row]:
                continue
            qrow = self._query_matrix[row]
            for col in np.flatnonzero(qrow):
                if not (active[:, col] >= qrow[col]).any():
                    return str(self._dims[int(col)])
            return "combination"
        return "combination"
