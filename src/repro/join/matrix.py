"""Dense vectorized dominance join — the throughput-oriented backend.

The three paper engines chase per-delta incrementality; this one chases
bulk arithmetic instead.  Every query vector and every stream vertex's
NPV is projected onto the query dimension universe (Section IV-B.2's
subspace restriction) as a row of a dense integer matrix, and the
Lemma 4.2 dominance condition is answered for *all* query vectors at
once with broadcast comparisons::

    covered[j] = any_i  all_d  S[i, d] >= Q[j, d]

which is exactly sparse dominance: dimensions outside a query vector's
support are zero in its row, and any stream value is >= 0.  Stream rows
live in a compact grow-by-doubling matrix (removal swaps the last row
into the hole), so a coalesced delta batch lands as one fancy-indexed
scatter-add.  Coverage is recomputed lazily per stream — a stream that
was touched pays one vectorized sweep at the next poll, however many
deltas arrived — with the stream axis chunked to bound the broadcast
temporary.  The trade-off versus DSC/Skyline: per-poll cost grows with
``stream vertices x query vectors x dimensions``, but the constant is a
numpy comparison, which wins when the query set is large.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from .. import obs
from ..graph.labeled_graph import VertexId
from ..nnt.projection import Dimension, NPV
from .base import (
    BatchDeltas,
    JoinEngine,
    QueryChange,
    QueryId,
    QuerySet,
    QueryVector,
    StreamId,
    StreamNpvs,
)

#: Stream rows compared per broadcast block, bounding the boolean
#: temporary to CHUNK x #query-vectors x #dimensions bytes.
_CHUNK = 128

_INITIAL_ROWS = 16


class DenseRowStore:
    """In-process numpy row storage — the default ``RowStore``.

    The storage seam behind :class:`_StreamState`: anything exposing
    ``array`` (a ``(capacity, dims)`` int64 ndarray), ``grow()``
    (double capacity in place, preserving rows), ``set_row_count(n)``
    (sync the live row count for external readers), ``descriptor()``
    (an exportable handle, or ``None`` when rows only live in-process),
    and ``release()`` can back a stream.  The shared-memory plane
    (:class:`repro.runtime.shm.ShmRowStore`) implements the same
    surface and is injected via ``store_factory`` — the engine never
    imports it, keeping the concurrency layering one-directional.
    """

    __slots__ = ("array",)

    def __init__(self, rows: int, dims: int) -> None:
        self.array = np.zeros((rows, dims), dtype=np.int64)

    def grow(self) -> None:
        """Double capacity in place, preserving existing rows."""
        grown = np.zeros(
            (self.array.shape[0] * 2, self.array.shape[1]), dtype=np.int64
        )
        grown[: self.array.shape[0]] = self.array
        self.array = grown

    def set_row_count(self, count: int) -> None:
        """No external readers — nothing to sync."""

    def descriptor(self) -> Any | None:
        """No exportable handle — rows live only in this process."""
        return None

    def release(self) -> None:
        """Nothing to free beyond normal garbage collection."""


#: ``store_factory(initial_rows, num_dims) -> RowStore``.
StoreFactory = Callable[[int, int], Any]


class _StreamState:
    """One stream's dense NPV matrix and its lazily cached coverage."""

    __slots__ = ("store", "row_of", "vertex_at", "count", "covered", "verdicts")

    def __init__(self, num_dims: int, store_factory: StoreFactory) -> None:
        self.store = store_factory(_INITIAL_ROWS, num_dims)
        self.row_of: dict[VertexId, int] = {}
        self.vertex_at: list[VertexId] = []
        self.count = 0
        self.covered: np.ndarray | None = None  # None = stale
        self.verdicts: np.ndarray | None = None  # per query ordinal; None = stale

    @property
    def matrix(self) -> np.ndarray:
        return self.store.array

    def invalidate(self) -> None:
        self.covered = None
        self.verdicts = None


class MatrixJoin(JoinEngine):
    """The ``matrix`` engine: broadcast dominance over dense NPV rows."""

    name = "matrix"

    def __init__(
        self, query_set: QuerySet, store_factory: StoreFactory | None = None
    ) -> None:
        super().__init__(query_set)
        self._store_factory: StoreFactory = store_factory or DenseRowStore
        self._streams: dict[StreamId, _StreamState] = {}
        self._dims: list[Dimension] = []
        self._dim_col: dict[Dimension, int] = {}
        self._query_matrix = np.zeros((0, 0), dtype=np.int64)
        # Per dedup group: its compact query-matrix row indices and its
        # ordinal in the verdict vector (member queries share both).
        self._group_rows: dict[int, np.ndarray] = {}
        self._group_ord: dict[int, int] = {}
        self._row_group = np.zeros(0, dtype=np.intp)
        self._rebuild_query_side()

    # -- query churn -------------------------------------------------------
    def _rebuild_query_side(self, stream_npvs: StreamNpvs | None = None) -> None:
        """Recompact the query matrix from the live groups.

        The query side is tiny next to the stream rows, so churn rebuilds
        it wholesale; the stream stores are only touched (reallocated and
        the old segment tombstoned) when the sorted dimension universe
        actually changed.
        """
        query_set = self.query_set
        old_dims = self._dims
        new_dims = sorted(query_set.dimension_universe, key=repr)
        records: list[QueryVector] = []
        row_group: list[int] = []
        self._group_rows = {}
        self._group_ord = {}
        for ordinal, group_id in enumerate(sorted(query_set.groups)):
            group = query_set.groups[group_id]
            start = len(records)
            for index in group.indices:
                records.append(query_set.vectors[index])
                row_group.append(ordinal)
            self._group_rows[group_id] = np.arange(start, len(records), dtype=np.intp)
            self._group_ord[group_id] = ordinal
        self._dims = new_dims
        self._dim_col = {dim: col for col, dim in enumerate(new_dims)}
        matrix = np.zeros((len(records), len(new_dims)), dtype=np.int64)
        for row, record in enumerate(records):
            for dim, value in record.vector.items():
                matrix[row, self._dim_col[dim]] = value
        self._query_matrix = matrix
        self._row_group = np.asarray(row_group, dtype=np.intp)
        if new_dims != old_dims:
            self._remap_stores(old_dims, stream_npvs or {})
        for state in self._streams.values():
            state.invalidate()

    def _remap_stores(self, old_dims: list[Dimension], stream_npvs: StreamNpvs) -> None:
        """Reallocate every stream's row store onto the new column layout:
        shared columns are copied, columns for newly introduced dimensions
        are backfilled from the live NPVs (their deltas were dropped while
        no query referenced them), and the old store is released — on the
        shared-memory plane that tombstones the segment back to the
        free-list."""
        old_col = {dim: col for col, dim in enumerate(old_dims)}
        shared = [
            (col, old_col[dim]) for dim, col in self._dim_col.items() if dim in old_col
        ]
        fresh = [dim for dim in self._dims if dim not in old_col]
        for stream_id, state in self._streams.items():
            old_store = state.store
            capacity = max(old_store.array.shape[0], _INITIAL_ROWS)
            store = self._store_factory(capacity, len(self._dims))
            count = state.count
            if count:
                array = store.array
                old_array = old_store.array
                for new_c, old_c in shared:
                    array[:count, new_c] = old_array[:count, old_c]
                if fresh:
                    npvs = stream_npvs.get(stream_id, {})
                    for row in range(count):
                        source = npvs.get(state.vertex_at[row])
                        if not source:
                            continue
                        for dim in fresh:
                            value = source.get(dim, 0)
                            if value:
                                array[row, self._dim_col[dim]] = value
            state.store = store
            store.set_row_count(count)
            old_store.release()

    def _on_group_added(self, change: QueryChange, stream_npvs: StreamNpvs) -> None:
        self._rebuild_query_side(stream_npvs)

    def _on_group_retired(self, change: QueryChange) -> None:
        self._rebuild_query_side()

    # -- stream lifecycle ------------------------------------------------
    def register_stream(self, stream_id: StreamId, npvs: Mapping[VertexId, NPV]) -> None:
        if stream_id in self._streams:
            raise ValueError(f"stream {stream_id!r} is already registered")
        state = _StreamState(len(self._dims), self._store_factory)
        self._streams[stream_id] = state
        for vertex, vector in npvs.items():
            row = self._add_row(state, vertex)
            for dim, value in vector.items():
                col = self._dim_col.get(dim)
                if col is not None:
                    state.matrix[row, col] = value

    def remove_stream(self, stream_id: StreamId) -> None:
        state = self._streams.pop(stream_id)
        state.store.release()

    def stream_ids(self) -> list[StreamId]:
        return list(self._streams)

    def close(self) -> None:
        """Release every stream's row storage (a no-op for the default
        in-process store; frees shared-memory segments otherwise)."""
        for state in self._streams.values():
            state.store.release()
        self._streams.clear()

    # -- row storage introspection ----------------------------------------
    def npv_descriptor(self, stream_id: StreamId) -> Any | None:
        """The stream's exportable row-store handle (``None`` when rows
        live only in-process) — what ships over the wire instead of rows."""
        return self._streams[stream_id].store.descriptor()

    def npv_rows(self, stream_id: StreamId) -> np.ndarray:
        """A copy of the stream's live NPV rows (tests pin the shared-
        memory plane bit-for-bit against this)."""
        state = self._streams[stream_id]
        return np.array(state.matrix[: state.count], copy=True)

    def segment_manifest(self) -> dict[str, dict[str, Any]]:
        """Per-stream segment descriptors for the checkpoint manifest.

        Only streams with exportable storage appear; with the default
        store the manifest is empty and checkpoints are unchanged.
        """
        segments: dict[str, dict[str, Any]] = {}
        for stream_id, state in self._streams.items():
            descriptor = state.store.descriptor()
            if descriptor is None:
                continue
            segments[str(stream_id)] = {
                "name": descriptor.name,
                "generation": descriptor.generation,
                "rows": descriptor.rows,
                "dims": descriptor.dims,
                "capacity": descriptor.capacity,
            }
        return segments

    # -- row management ---------------------------------------------------
    def _add_row(self, state: _StreamState, vertex: VertexId) -> int:
        if state.count == state.matrix.shape[0]:
            state.store.grow()
        row = state.count
        state.row_of[vertex] = row
        state.vertex_at.append(vertex)
        state.count += 1
        state.store.set_row_count(state.count)
        # The slot is all-zero: rows are zeroed when vacated.
        return row

    def _drop_row(self, state: _StreamState, vertex: VertexId) -> None:
        row = state.row_of.pop(vertex)
        last = state.count - 1
        if row != last:
            state.matrix[row] = state.matrix[last]
            moved = state.vertex_at[last]
            state.vertex_at[row] = moved
            state.row_of[moved] = row
        state.matrix[last] = 0
        state.vertex_at.pop()
        state.count = last
        state.store.set_row_count(state.count)

    # -- NPV evolution ----------------------------------------------------
    def on_vertex_added(self, stream_id: StreamId, vertex: VertexId) -> None:
        state = self._streams[stream_id]
        self._add_row(state, vertex)
        # A fresh all-zero row can newly cover all-zero query vectors.
        state.invalidate()

    def on_vertex_removed(self, stream_id: StreamId, vertex: VertexId) -> None:
        state = self._streams[stream_id]
        self._drop_row(state, vertex)
        state.invalidate()

    def on_dimension_delta(
        self, stream_id: StreamId, vertex: VertexId, dim: Dimension, delta: int
    ) -> None:
        col = self._dim_col.get(dim)
        if col is None:
            return
        state = self._streams[stream_id]
        state.matrix[state.row_of[vertex], col] += delta
        state.invalidate()

    def batch_update(self, stream_id: StreamId, deltas: BatchDeltas) -> None:
        """Land a coalesced batch as one fancy-indexed scatter-add.

        Batch keys are unique ``(vertex, dimension)`` pairs, so the
        target cells are distinct and plain ``+=`` indexing is exact.
        """
        state = self._streams[stream_id]
        dim_col = self._dim_col
        row_of = state.row_of
        rows: list[int] = []
        cols: list[int] = []
        values: list[int] = []
        for (vertex, dim), delta in deltas.items():
            col = dim_col.get(dim)
            if col is None:
                continue
            rows.append(row_of[vertex])
            cols.append(col)
            values.append(delta)
        if rows:
            state.matrix[rows, cols] += np.asarray(values, dtype=np.int64)
            state.invalidate()

    # -- results ----------------------------------------------------------
    def _coverage(self, state: _StreamState) -> np.ndarray:
        """Boolean per query vector: dominated by some stream row?"""
        if state.covered is not None:
            return state.covered
        query_matrix = self._query_matrix
        covered = np.zeros(query_matrix.shape[0], dtype=bool)
        active = state.matrix[: state.count]
        for start in range(0, state.count, _CHUNK):
            block = active[start : start + _CHUNK]
            covered |= (block[:, None, :] >= query_matrix[None, :, :]).all(axis=2).any(
                axis=0
            )
            if covered.all():
                break
        state.covered = covered
        return covered

    def _verdicts(self, state: _StreamState) -> np.ndarray:
        """Boolean per group ordinal: every one of its vectors covered?

        One bincount over the uncovered rows replaces a fancy-indexed
        gather per ``is_candidate`` call — the poll loop asks about every
        (stream, query) pair, so per-pair work must be a plain lookup.
        """
        if state.verdicts is None:
            uncovered = self._row_group[~self._coverage(state)]
            misses = np.bincount(uncovered, minlength=len(self._group_ord))
            state.verdicts = misses == 0
        return state.verdicts

    def is_candidate(self, stream_id: StreamId, query_id: QueryId) -> bool:
        self._obs_checks.inc()
        state = self._streams[stream_id]
        group_id = self.query_set.group_of[query_id]
        if self._group_rows[group_id].size == 0:
            # Degenerate empty query graph: vacuously covered (the other
            # engines' per-vector loops agree).
            return True
        if state.count == 0:
            if obs.enabled():
                obs.quality.record_pruned(self.name, self._blame(state, query_id))
            return False
        verdict = bool(self._verdicts(state)[self._group_ord[group_id]])
        if not verdict and obs.enabled():
            obs.quality.record_pruned(self.name, self._blame(state, query_id))
        return verdict

    def _blame(self, state: _StreamState, query_id: QueryId) -> str:
        """Which dimension to blame for a failed verdict — diagnostic
        only, same convention as :func:`repro.obs.quality.blame_dimension`:
        the first uncovered query vector's first dimension (``_dims`` is
        sorted by ``repr``, matching the sorted-by-``str`` blame order)
        that no stream row covers alone, else ``"combination"``."""
        query_rows = self._group_rows[self.query_set.group_of[query_id]]
        if state.count == 0:
            for row in query_rows:
                qrow = self._query_matrix[row]
                nonzero = np.flatnonzero(qrow)
                if nonzero.size:
                    return str(self._dims[int(nonzero[0])])
            return "combination"
        covered = self._coverage(state)
        active = state.matrix[: state.count]
        for row in query_rows:
            if covered[row]:
                continue
            qrow = self._query_matrix[row]
            for col in np.flatnonzero(qrow):
                if not (active[:, col] >= qrow[col]).any():
                    return str(self._dims[int(col)])
            return "combination"
        return "combination"
