"""Command-line interface.

Eleven subcommands::

    python -m repro generate ...    # write synthetic datasets to files
    python -m repro search ...      # static filter-and-verify search
    python -m repro monitor ...     # replay streams, print match events
    python -m repro replay ...      # same, through the sharded runtime
    python -m repro serve ...       # serving layer: stdin lines or --tcp JSON
    python -m repro dlq ...         # inspect/replay the dead-letter journal
    python -m repro stats ...       # render an observability dump (Prometheus/JSON)
    python -m repro trace ...       # export a replay's span tree (Perfetto/text)
    python -m repro top ...         # live dashboard over stats()
    python -m repro experiment ...  # run a paper-figure driver
    python -m repro lint ...        # static analysis (--project adds cross-file rules)

Graphs and query sets use the text format of :mod:`repro.graph.io`
(gSpan-style ``t # / v / e`` blocks); streams add ``op`` blocks.
``replay`` and ``serve`` take ``--stats-every N`` to emit the merged
observability registries every N timestamps; ``monitor``/``replay``
take ``--probe-rate``/``--probe-budget-ms`` to run the sampled
precision probe alongside the filter (see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from pathlib import Path

from .core.database import GraphDatabase
from .core.monitor import StreamMonitor
from .datasets.ggen import generate_graph_set
from .datasets.molecules import generate_molecule_set
from .datasets.queries import make_query_set
from .datasets.reality import RealityConfig, generate_reality_stream
from .datasets.stream_gen import DENSE, SPARSE, synthesize_stream
from .graph.io import read_graph_set, read_stream, write_graph_set, write_stream


def _add_probe_arguments(sub: argparse.ArgumentParser) -> None:
    """The precision-probe knobs shared by replaying subcommands."""
    sub.add_argument(
        "--probe-rate",
        type=float,
        default=0.0,
        help="fraction of emitted candidate pairs to verify with exact "
        "isomorphism per timestamp (0 = probe off, 1 = verify every pair)",
    )
    sub.add_argument(
        "--probe-budget-ms",
        type=float,
        default=50.0,
        help="wall-clock budget per probe pass in milliseconds "
        "(0 = unbudgeted; pairs beyond the budget are skipped and counted)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (also used by the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Continuous subgraph pattern search over graph streams "
        "(Wang & Chen, ICDE 2009 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # -- generate ---------------------------------------------------------
    gen = subparsers.add_parser("generate", help="write synthetic datasets to files")
    gen.add_argument(
        "kind",
        choices=["molecules", "ggen", "queries", "reality-stream", "synthetic-stream"],
    )
    gen.add_argument("--out", required=True, help="output file path")
    gen.add_argument("--count", type=int, default=100, help="number of graphs/queries")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--size", type=float, default=20.0, help="mean graph size (ggen T)")
    gen.add_argument("--labels", type=int, default=4, help="vertex label count (ggen V)")
    gen.add_argument("--query-edges", type=int, default=8, help="edges per query")
    gen.add_argument("--from-db", help="source graph set for 'queries'")
    gen.add_argument("--timestamps", type=int, default=100, help="stream length")
    gen.add_argument("--devices", type=int, default=97, help="reality-stream devices")
    gen.add_argument(
        "--density",
        choices=["dense", "sparse"],
        default="dense",
        help="synthetic-stream coin-flip regime (p1/p2 of the paper)",
    )
    gen.add_argument("--base", help="base graph set for 'synthetic-stream' (first block)")

    # -- search -----------------------------------------------------------
    search = subparsers.add_parser("search", help="static subgraph search over a graph set")
    search.add_argument("--db", required=True, help="graph-set file")
    search.add_argument("--queries", required=True, help="graph-set file of patterns")
    search.add_argument("--depth", type=int, default=3, help="NNT depth l")
    search.add_argument(
        "--no-verify", action="store_true", help="report filter candidates only"
    )

    # -- monitor ----------------------------------------------------------
    monitor = subparsers.add_parser("monitor", help="replay streams and print match events")
    monitor.add_argument("--queries", required=True, help="graph-set file of patterns")
    monitor.add_argument("--streams", nargs="+", required=True, help="stream files")
    monitor.add_argument(
        "--method", choices=["nl", "dsc", "skyline", "matrix"], default="dsc"
    )
    monitor.add_argument("--depth", type=int, default=3, help="NNT depth l")
    monitor.add_argument(
        "--verify", action="store_true", help="confirm events with exact isomorphism"
    )
    _add_probe_arguments(monitor)

    # -- replay -----------------------------------------------------------
    replay = subparsers.add_parser(
        "replay",
        help="replay streams through the sharded runtime and print match events",
    )
    replay.add_argument("--queries", required=True, help="graph-set file of patterns")
    replay.add_argument("--streams", nargs="+", required=True, help="stream files")
    replay.add_argument(
        "--method", choices=["nl", "dsc", "skyline", "matrix"], default="dsc"
    )
    replay.add_argument("--depth", type=int, default=3, help="NNT depth l")
    replay.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = in-process StreamMonitor, no subprocesses)",
    )
    replay.add_argument(
        "--queue-capacity", type=int, default=128, help="worker inbox bound"
    )
    replay.add_argument(
        "--policy",
        choices=["block", "drop", "spill"],
        default="block",
        help="backpressure policy when a worker inbox is full",
    )
    replay.add_argument("--checkpoint-dir", help="shard snapshot directory")
    replay.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="auto-checkpoint cadence in accepted batches (0 = off)",
    )
    replay.add_argument(
        "--shm",
        action="store_true",
        help="shared-memory NPV plane + payload rings (workers >= 2; "
        "most effective with --method matrix)",
    )
    replay.add_argument(
        "--rescale-at",
        action="append",
        metavar="T:N",
        help="rescale the worker pool to N workers after the events of "
        "timestamp T (repeatable; workers >= 2)",
    )
    replay.add_argument(
        "--register-at",
        action="append",
        metavar="T:ID:FILE[:KEY]",
        help="register query ID (pattern KEY from graph-set FILE, first "
        "graph when omitted) live after the events of timestamp T "
        "(repeatable)",
    )
    replay.add_argument(
        "--deregister-at",
        action="append",
        metavar="T:ID",
        help="deregister query ID live after the events of timestamp T "
        "(repeatable)",
    )
    replay.add_argument(
        "--stats-every",
        type=int,
        default=0,
        help="print merged observability metrics (Prometheus text) every "
        "N timestamps (0 = off)",
    )
    replay.add_argument(
        "--stats-json",
        help="write the final merged observability summary to this JSON file",
    )
    replay.add_argument(
        "--flight-dir",
        help="per-shard flight-recorder directory (journals survive "
        "SIGKILL; workers >= 2)",
    )
    _add_probe_arguments(replay)

    # -- serve ------------------------------------------------------------
    serve = subparsers.add_parser(
        "serve",
        help="monitoring server: line protocol on stdin, or an asyncio TCP "
        "server with sessions + admission control via --tcp HOST:PORT",
    )
    serve.add_argument("--queries", required=True, help="graph-set file of patterns")
    serve.add_argument(
        "--method", choices=["nl", "dsc", "skyline", "matrix"], default="dsc"
    )
    serve.add_argument("--depth", type=int, default=3, help="NNT depth l")
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = in-process StreamMonitor)",
    )
    serve.add_argument("--queue-capacity", type=int, default=128)
    serve.add_argument("--policy", choices=["block", "drop", "spill"], default="block")
    serve.add_argument("--checkpoint-dir", help="shard snapshot directory")
    serve.add_argument("--checkpoint-every", type=int, default=0)
    serve.add_argument(
        "--stats-every",
        type=int,
        default=0,
        help="emit an observability summary JSON line every N ticks "
        "(0 = off; stdin mode only)",
    )
    serve.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        help="serve newline-delimited JSON over TCP instead of stdin "
        "(PORT 0 picks a free port, announced in the listening notice)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="per-session data commands per second (0 = unlimited)",
    )
    serve.add_argument(
        "--burst", type=float, default=8.0, help="token-bucket burst size"
    )
    serve.add_argument(
        "--admission-capacity",
        type=int,
        default=64,
        help="max data commands queued ahead of the writer task",
    )
    serve.add_argument(
        "--admission-policy",
        choices=["reject", "shed"],
        default="reject",
        help="full-queue behavior: refuse the newcomer, or shed the oldest",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=float,
        default=0.0,
        help="circuit breaker trips when the deepest worker inbox stays "
        "at/above this (0 = disabled)",
    )
    serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=1.0,
        help="seconds an open breaker waits before going half-open",
    )
    serve.add_argument(
        "--dlq-dir",
        help="directory for the poison-batch dead-letter journal "
        "(dlq.jsonl; omit for in-memory only)",
    )
    serve.add_argument(
        "--http",
        metavar="HOST:PORT",
        help="HTTP observability endpoint (/metrics /healthz /readyz "
        "/slo /timeline.json /trace; PORT 0 picks a free port; "
        "--tcp mode only)",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=0.0,
        help="seconds to hold between the draining notice and shutdown "
        "so /readyz flips to 503 before work stops (k8s preStop)",
    )
    serve.add_argument(
        "--timeline-interval",
        type=float,
        default=1.0,
        help="seconds between metrics-timeline samples (--tcp mode)",
    )
    serve.add_argument(
        "--flight-dir",
        help="flight-recorder directory (refusals/sheds/dead-letters "
        "journaled to flight-serve.jsonl)",
    )

    # -- slo --------------------------------------------------------------
    slo = subparsers.add_parser(
        "slo",
        help="evaluate the SLO rules: against a live server's /slo "
        "endpoint, or over a local replay (exit 1 on breach)",
    )
    slo.add_argument(
        "--url",
        help="base URL of a live observability endpoint "
        "(e.g. http://127.0.0.1:9100); mutually exclusive with replay mode",
    )
    slo.add_argument("--queries", help="graph-set file of patterns (replay mode)")
    slo.add_argument("--streams", nargs="+", help="stream files (replay mode)")
    slo.add_argument(
        "--method", choices=["nl", "dsc", "skyline", "matrix"], default="dsc"
    )
    slo.add_argument("--depth", type=int, default=3, help="NNT depth l")
    slo.add_argument(
        "--workers", type=int, default=0, help="worker processes (0 = in-process)"
    )
    slo.add_argument(
        "--window",
        type=float,
        default=60.0,
        help="trailing evaluation window in seconds (replay mode)",
    )

    # -- flight -----------------------------------------------------------
    flight = subparsers.add_parser(
        "flight",
        help="inspect flight-recorder journals and dumps, or trigger a "
        "live dump via SIGUSR2",
    )
    flight.add_argument(
        "action",
        choices=["list", "show", "signal"],
        help="list = enumerate recordings in --dir; show = print one "
        "journal/dump; signal = SIGUSR2 a live process to dump",
    )
    flight.add_argument("--dir", help="flight-recorder directory (list)")
    flight.add_argument("--file", help="journal (.jsonl) or dump (.json) to show")
    flight.add_argument(
        "--pid", type=int, help="process to SIGUSR2 (signal action)"
    )

    # -- dlq --------------------------------------------------------------
    dlq = subparsers.add_parser(
        "dlq",
        help="inspect or replay the serve dead-letter journal",
    )
    dlq.add_argument("action", choices=["list", "show", "replay"])
    dlq.add_argument(
        "--dir", required=True, help="journal directory (serve's --dlq-dir)"
    )
    dlq.add_argument("--id", type=int, help="dead-letter id (show / replay)")
    dlq.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        help="live server to replay against (required for replay)",
    )
    dlq.add_argument(
        "--include-replayed",
        action="store_true",
        help="also list entries already replayed",
    )

    # -- stats ------------------------------------------------------------
    stats = subparsers.add_parser(
        "stats",
        help="render an observability summary dump as Prometheus text or JSON",
    )
    stats.add_argument(
        "dump",
        nargs="?",
        help="summary JSON file written by `replay --stats-json` (default: stdin); "
        "full `stats` dumps with a merged_obs/obs key are unwrapped automatically",
    )
    stats.add_argument(
        "--format",
        choices=["prometheus", "json"],
        default="prometheus",
        help="exposition format (default Prometheus text 0.0.4)",
    )
    stats.add_argument("--prefix", default="repro", help="metric name prefix")

    # -- trace --------------------------------------------------------------
    trace = subparsers.add_parser(
        "trace",
        help="replay streams and export the collected span tree "
        "(Chrome trace-event JSON for Perfetto, or a text critical-span table)",
    )
    trace.add_argument("--queries", required=True, help="graph-set file of patterns")
    trace.add_argument("--streams", nargs="+", required=True, help="stream files")
    trace.add_argument(
        "--method", choices=["nl", "dsc", "skyline", "matrix"], default="dsc"
    )
    trace.add_argument("--depth", type=int, default=3, help="NNT depth l")
    trace.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = in-process; >=1 adds per-shard trace tracks)",
    )
    trace.add_argument("--queue-capacity", type=int, default=128)
    trace.add_argument(
        "--format",
        choices=["chrome", "text"],
        default="chrome",
        help="chrome = Perfetto-loadable trace-event JSON, text = top-N spans",
    )
    trace.add_argument("--out", help="output file (default: stdout)")
    trace.add_argument(
        "--top", type=int, default=10, help="spans shown by --format text"
    )

    # -- top ----------------------------------------------------------------
    top = subparsers.add_parser(
        "top",
        help="live plain-terminal dashboard: latency percentiles, inbox "
        "depths, pruning power, FP-ratio estimate",
    )
    top.add_argument(
        "dump",
        nargs="?",
        help="stats JSON file to poll each frame (e.g. refreshed by "
        "`replay --stats-json`); omit to drive a replay directly",
    )
    top.add_argument("--queries", help="graph-set file of patterns (replay mode)")
    top.add_argument("--streams", nargs="+", help="stream files (replay mode)")
    top.add_argument(
        "--method", choices=["nl", "dsc", "skyline", "matrix"], default="dsc"
    )
    top.add_argument("--depth", type=int, default=3, help="NNT depth l")
    top.add_argument(
        "--workers", type=int, default=0, help="worker processes (0 = in-process)"
    )
    top.add_argument("--queue-capacity", type=int, default=128)
    top.add_argument(
        "--interval", type=float, default=1.0, help="seconds between frames"
    )
    top.add_argument(
        "--iterations",
        type=int,
        help="frames to paint (default: until Ctrl-C, or one per "
        "timestamp plus a final frame in replay mode)",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen (pipes/tests)",
    )
    _add_probe_arguments(top)

    # -- experiment ---------------------------------------------------------
    experiment = subparsers.add_parser("experiment", help="run a paper-figure driver")
    experiment.add_argument("figure", help="fig02|fig12|...|fig17|ablation_a1..a7|all")
    experiment.add_argument("--scale", choices=["smoke", "default", "paper"])
    experiment.add_argument(
        "--out",
        help="also save results; suffix picks the format (.csv/.json/.md/.txt); "
        "with 'all', a directory receiving one file per figure",
    )
    experiment.add_argument(
        "--format",
        choices=["csv", "json", "md", "txt"],
        default="md",
        help="file format when --out is a directory (default md)",
    )
    experiment.add_argument(
        "--workers",
        type=int,
        help="replay engine methods through the sharded runtime "
        "(figures that support it: fig16, fig17)",
    )

    # -- lint ---------------------------------------------------------------
    from .analysis.cli import add_lint_arguments

    lint = subparsers.add_parser(
        "lint",
        help="static analysis of the repo's soundness/layering invariants",
    )
    add_lint_arguments(lint)
    return parser


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------
def _cmd_generate(args: argparse.Namespace) -> int:
    out = Path(args.out)
    if args.kind == "molecules":
        graphs = generate_molecule_set(args.count, seed=args.seed)
        write_graph_set(graphs, out)
    elif args.kind == "ggen":
        graphs = generate_graph_set(
            args.count,
            graph_size=args.size,
            num_vertex_labels=args.labels,
            seed=args.seed,
        )
        write_graph_set(graphs, out)
    elif args.kind == "queries":
        if not args.from_db:
            print("generate queries requires --from-db", file=sys.stderr)
            return 2
        source = [graph for _, graph in read_graph_set(args.from_db)]
        queries = make_query_set(source, args.query_edges, args.count, seed=args.seed)
        write_graph_set(queries, out, names=[f"q{i}" for i in range(len(queries))])
    elif args.kind == "reality-stream":
        stream = generate_reality_stream(
            random.Random(args.seed),
            args.timestamps,
            RealityConfig(num_devices=args.devices),
            name=out.stem,
        )
        write_stream(stream, out)
    elif args.kind == "synthetic-stream":
        if args.base:
            base = read_graph_set(args.base)[0][1]
        else:
            base = generate_graph_set(
                1, graph_size=args.size, num_vertex_labels=args.labels, seed=args.seed
            )[0]
        p_appear, p_disappear = DENSE if args.density == "dense" else SPARSE
        stream = synthesize_stream(
            base,
            p_appear,
            p_disappear,
            args.timestamps,
            random.Random(args.seed + 1),
            all_pairs=True,
            name=out.stem,
        )
        write_stream(stream, out)
    print(f"wrote {out}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    database = GraphDatabase(dict(read_graph_set(args.db)), depth_limit=args.depth)
    for name, query in read_graph_set(args.queries):
        if args.no_verify:
            hits = database.filter_candidates(query)
            label = "candidates"
        else:
            hits = database.search(query, verify=True)
            label = "matches"
        print(f"{name}: {len(hits)} {label}: {' '.join(sorted(map(str, hits)))}")
    return 0


def _read_streams(paths: list[str]) -> dict:
    streams = {}
    for path in paths:
        stream = read_stream(path)
        stream_id = stream.name or Path(path).stem
        streams[stream_id] = stream
    return streams


def _collect_obs_summary(monitor) -> dict:
    """The monitor's observability summary: for a ShardedMonitor the
    fleet-merged per-worker registries (plus the coordinator's own), for
    an in-process monitor the process-local registry."""
    from . import obs

    if hasattr(monitor, "inbox_depths"):  # ShardedMonitor
        return monitor.stats()["merged_obs"]
    return obs.get_registry().summary()


def _make_probe(monitor, args) -> "object | None":
    """A :class:`~repro.core.verify.PrecisionProbe` when the arguments
    ask for one and the monitor can support it (the probe verifies with
    exact VF2, which needs in-process access to the stream graphs —
    only the library-path :class:`StreamMonitor` exposes them)."""
    rate = getattr(args, "probe_rate", 0.0)
    if not rate:
        return None
    if not isinstance(monitor, StreamMonitor):
        print(
            "precision probe needs in-process graphs; ignoring --probe-rate "
            "with --workers >= 1",
            file=sys.stderr,
        )
        return None
    from .core.verify import PrecisionProbe

    budget_ms = getattr(args, "probe_budget_ms", 50.0)
    return PrecisionProbe(
        monitor,
        rate=rate,
        budget_seconds=budget_ms / 1000.0 if budget_ms > 0 else None,
    )


def _report_probe(probe) -> None:
    estimate = probe.fp_ratio_estimate
    line = (
        "probe: checked={checked} false_positives={false_positives} "
        "skipped={skipped}".format(**probe.stats)
    )
    if estimate is not None:
        line += f"  fp_ratio~{estimate:.3f}"
    print(line)


def _replay_and_report(
    monitor,
    streams,
    verify_with=None,
    stats_every=0,
    probe=None,
    rescales=None,
    churn=None,
) -> None:
    """Drive ``monitor`` (StreamMonitor or ShardedMonitor — same API)
    through recorded streams, printing one line per match event.

    Both the library and runtime paths report transitions through
    ``events()``, so the output format is identical regardless of
    ``--workers``.  With ``stats_every`` > 0, the merged observability
    metrics are printed as a Prometheus text block every that many
    timestamps (and once more after the final poll).  A ``probe``
    samples the candidate set once per timestamp, after events are
    reported — strictly off the filtering path.  ``rescales`` maps a
    printed timestamp to a target worker-pool size; the pool is rescaled
    live right after that timestamp's events (runtime path only).
    ``churn`` maps a timestamp to live query churn operations (from
    :func:`_parse_churn`), executed right after that timestamp's events
    and any rescale — both monitor flavours support them live.
    """
    from .obs import render_prometheus

    for stream_id, stream in streams.items():
        monitor.add_stream(stream_id, stream.initial)
    for event in monitor.events():
        print(f"t=0: {event.kind} {event.query_id} on {event.stream_id}")

    horizon = min(len(stream.operations) for stream in streams.values())
    for timestamp in range(horizon):
        for stream_id, stream in streams.items():
            monitor.apply(stream_id, stream.operations[timestamp])
        for event in monitor.events():
            line = f"t={timestamp + 1}: {event.kind} {event.query_id} on {event.stream_id}"
            if verify_with is not None and event.kind == "appeared":
                pair = (event.stream_id, event.query_id)
                confirmed = pair in verify_with.verified_matches({pair})
                line += "  [CONFIRMED]" if confirmed else "  [filter only]"
            print(line)
        target = rescales.get(timestamp + 1) if rescales else None
        if target is not None:
            report = monitor.rescale(target)
            print(
                f"t={timestamp + 1}: rescale workers "
                f"{report['from']}->{report['to']} "
                f"moved={report['moved_streams']} in {report['seconds']:.3f}s"
            )
        for operation in (churn or {}).get(timestamp + 1, ()):
            if operation[0] == "register":
                _, query_id, pattern = operation
                monitor.register_query(query_id, pattern)
                print(f"t={timestamp + 1}: register query {query_id}")
            else:
                monitor.deregister_query(operation[1])
                print(f"t={timestamp + 1}: deregister query {operation[1]}")
        if probe is not None:
            probe.sample()
        if stats_every and (timestamp + 1) % stats_every == 0:
            print(f"# repro stats t={timestamp + 1}")
            print(render_prometheus(_collect_obs_summary(monitor)), end="")
    final = sorted(monitor.matches())
    print(f"final possible pairs: {final}")
    if probe is not None:
        _report_probe(probe)
    if stats_every:
        print("# repro stats final")
        print(render_prometheus(_collect_obs_summary(monitor)), end="")


def _cmd_monitor(args: argparse.Namespace) -> int:
    queries = dict(read_graph_set(args.queries))
    streams = _read_streams(args.streams)
    monitor = StreamMonitor(queries, method=args.method, depth_limit=args.depth)
    _replay_and_report(
        monitor,
        streams,
        verify_with=monitor if args.verify else None,
        probe=_make_probe(monitor, args),
    )
    return 0


def _write_stats_json(monitor, path: str) -> None:
    import json

    summary = _collect_obs_summary(monitor)
    Path(path).write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def _parse_rescales(specs) -> dict[int, int]:
    """``--rescale-at T:N`` occurrences -> ``{timestamp: target}``."""
    rescales: dict[int, int] = {}
    for spec in specs or []:
        timestamp_text, separator, target_text = spec.partition(":")
        if not separator:
            raise SystemExit(f"--rescale-at expects T:N, got {spec!r}")
        try:
            timestamp, target = int(timestamp_text), int(target_text)
        except ValueError:
            raise SystemExit(f"--rescale-at expects T:N, got {spec!r}") from None
        if timestamp < 1 or target < 1:
            raise SystemExit(f"--rescale-at needs T >= 1 and N >= 1, got {spec!r}")
        rescales[timestamp] = target
    return rescales


def _parse_churn(register_specs, deregister_specs) -> dict[int, list[tuple]]:
    """``--register-at T:ID:FILE[:KEY]`` / ``--deregister-at T:ID``
    occurrences -> ``{timestamp: [churn operations]}``.

    Patterns are loaded eagerly so a missing file or key fails before
    the replay starts, not halfway through it.
    """
    churn: dict[int, list[tuple]] = {}
    for spec in register_specs or []:
        parts = spec.split(":")
        if len(parts) not in (3, 4):
            raise SystemExit(
                f"--register-at expects T:ID:FILE[:KEY], got {spec!r}"
            )
        timestamp_text, query_id, graph_file = parts[0], parts[1], parts[2]
        key = parts[3] if len(parts) == 4 else None
        try:
            timestamp = int(timestamp_text)
        except ValueError:
            raise SystemExit(
                f"--register-at expects T:ID:FILE[:KEY], got {spec!r}"
            ) from None
        if timestamp < 1:
            raise SystemExit(f"--register-at needs T >= 1, got {spec!r}")
        graph_set = dict(read_graph_set(graph_file))
        if key is None:
            if not graph_set:
                raise SystemExit(f"--register-at: empty graph set {graph_file!r}")
            key = next(iter(graph_set))
        if key not in graph_set:
            raise SystemExit(f"--register-at: graph {key!r} not in {graph_file}")
        churn.setdefault(timestamp, []).append(
            ("register", query_id, graph_set[key])
        )
    for spec in deregister_specs or []:
        timestamp_text, separator, query_id = spec.partition(":")
        if not separator or not query_id:
            raise SystemExit(f"--deregister-at expects T:ID, got {spec!r}")
        try:
            timestamp = int(timestamp_text)
        except ValueError:
            raise SystemExit(f"--deregister-at expects T:ID, got {spec!r}") from None
        if timestamp < 1:
            raise SystemExit(f"--deregister-at needs T >= 1, got {spec!r}")
        churn.setdefault(timestamp, []).append(("deregister", query_id))
    return churn


def _cmd_replay(args: argparse.Namespace) -> int:
    queries = dict(read_graph_set(args.queries))
    streams = _read_streams(args.streams)
    rescales = _parse_rescales(args.rescale_at)
    churn = _parse_churn(args.register_at, args.deregister_at)
    if args.workers <= 1:
        if rescales:
            raise SystemExit("--rescale-at requires --workers >= 2")
        if args.shm:
            raise SystemExit("--shm requires --workers >= 2")
        monitor = StreamMonitor(queries, method=args.method, depth_limit=args.depth)
        _replay_and_report(
            monitor,
            streams,
            stats_every=args.stats_every,
            probe=_make_probe(monitor, args),
            churn=churn,
        )
        if args.stats_json:
            _write_stats_json(monitor, args.stats_json)
        return 0
    from .runtime import ShardedMonitor

    with ShardedMonitor(
        queries,
        method=args.method,
        depth_limit=args.depth,
        num_workers=args.workers,
        queue_capacity=args.queue_capacity,
        backpressure=args.policy,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        shm=args.shm,
        flight_dir=args.flight_dir,
    ) as monitor:
        _replay_and_report(
            monitor,
            streams,
            stats_every=args.stats_every,
            probe=_make_probe(monitor, args),
            rescales=rescales,
            churn=churn,
        )
        stats = monitor.stats()
        pressure = stats["backpressure"]
        line = (
            f"workers: {stats['num_workers']}  "
            f"policy: {pressure['policy']}  "
            f"batches: {pressure['accepted_batches']}  "
            f"dropped: {pressure['dropped']}  "
            f"spilled: {pressure['spilled']}"
        )
        rescale = stats.get("rescale") or {}
        if rescale.get("count"):
            line += f"  rescales: {rescale['count']}"
        print(line)
        if args.stats_json:
            _write_stats_json(monitor, args.stats_json)
    return 0


def _parse_host_port(spec: str) -> tuple[str, int]:
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(f"--tcp wants HOST:PORT, got {spec!r}")
    return host or "127.0.0.1", int(port)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import DeadLetterQueue, ServeConfig, run_server, serve_lines
    from .serve.protocol import encode_reply

    queries = dict(read_graph_set(args.queries))
    if args.workers >= 1:
        from .runtime import ShardedMonitor

        monitor = ShardedMonitor(
            queries,
            method=args.method,
            depth_limit=args.depth,
            num_workers=args.workers,
            queue_capacity=args.queue_capacity,
            backpressure=args.policy,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            flight_dir=args.flight_dir,
        )
    else:
        monitor = StreamMonitor(queries, method=args.method, depth_limit=args.depth)

    def emit(payload: dict) -> None:
        print(encode_reply(payload), flush=True)

    dlq = DeadLetterQueue(args.dlq_dir)
    try:
        if args.tcp:
            host, port = _parse_host_port(args.tcp)
            http_host, http_port = (None, 0)
            if args.http:
                http_host, http_port = _parse_host_port(args.http)
            run_server(
                monitor,
                ServeConfig(
                    host=host,
                    port=port,
                    rate=args.rate,
                    burst=args.burst,
                    admission_capacity=args.admission_capacity,
                    admission_policy=args.admission_policy,
                    breaker_threshold=args.breaker_threshold,
                    breaker_cooldown=args.breaker_cooldown,
                    http_host=http_host,
                    http_port=http_port,
                    drain_grace=args.drain_grace,
                    timeline_interval=args.timeline_interval,
                    flight_dir=args.flight_dir,
                ),
                dlq=dlq,
                emit=emit,
            )
        else:
            serve_lines(
                monitor, sys.stdin, emit, dlq=dlq, stats_every=args.stats_every
            )
    finally:
        if hasattr(monitor, "close"):
            monitor.close()
    return 0


def _cmd_dlq(args: argparse.Namespace) -> int:
    import json

    from .serve import DeadLetterQueue, replay_dead_letters

    dlq = DeadLetterQueue(args.dir)
    if args.action == "list":
        entries = dlq.entries(include_replayed=args.include_replayed)
        for entry in entries:
            flag = "replayed" if entry.replayed else "pending"
            print(
                f"{entry.dlq_id}\t{flag}\tstream={entry.stream}\t"
                f"changes={len(entry.changes)}\t{entry.error}"
            )
        print(f"total: {len(entries)}")
        return 0
    if args.action == "show":
        if args.id is None:
            print("dlq show needs --id", file=sys.stderr)
            return 2
        entry = dlq.get(args.id)
        if entry is None:
            print(f"no dead letter with id {args.id}", file=sys.stderr)
            return 2
        print(json.dumps(entry.to_dict(), indent=2, sort_keys=True))
        return 0
    # replay
    if not args.tcp:
        print("dlq replay needs --tcp HOST:PORT of a live server", file=sys.stderr)
        return 2
    host, port = _parse_host_port(args.tcp)
    if args.id is not None and dlq.get(args.id) is None:
        print(f"no dead letter with id {args.id}", file=sys.stderr)
        return 2
    replayed = replay_dead_letters(dlq, host, port)
    if args.id is not None and args.id not in replayed:
        print(f"dead letter {args.id} was not replayed", file=sys.stderr)
        return 1
    print(f"replayed: {' '.join(map(str, replayed)) or '-'}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from .obs import render_json, render_prometheus

    if args.dump:
        text = Path(args.dump).read_text()
    else:
        text = sys.stdin.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        print(f"not a JSON summary: {exc}", file=sys.stderr)
        return 2
    if not isinstance(data, dict):
        print("summary must be a JSON object", file=sys.stderr)
        return 2
    # Accept either a bare registry summary or a full stats() dump that
    # wraps one under merged_obs/obs.
    if "merged_obs" in data and not all(
        isinstance(v, dict) and "kind" in v for v in data.values()
    ):
        data = data["merged_obs"]
    elif "obs" in data and not all(
        isinstance(v, dict) and "kind" in v for v in data.values()
    ):
        data = data["obs"]
    if args.format == "json":
        print(render_json(data))
    else:
        print(render_prometheus(data, prefix=args.prefix), end="")
    return 0


def _replay_silently(monitor, streams) -> None:
    """Drive a monitor through recorded streams without reporting —
    the replay exists only for the side effects being exported."""
    for stream_id, stream in streams.items():
        monitor.add_stream(stream_id, stream.initial)
    monitor.events()
    horizon = min(len(stream.operations) for stream in streams.values())
    for timestamp in range(horizon):
        for stream_id, stream in streams.items():
            monitor.apply(stream_id, stream.operations[timestamp])
        monitor.events()


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from . import obs

    obs.enable()  # tracing is the whole point; override REPRO_OBS=0
    queries = dict(read_graph_set(args.queries))
    streams = _read_streams(args.streams)
    if args.workers >= 1:
        from .runtime import ShardedMonitor

        with ShardedMonitor(
            queries,
            method=args.method,
            depth_limit=args.depth,
            num_workers=args.workers,
            queue_capacity=args.queue_capacity,
        ) as monitor:
            _replay_silently(monitor, streams)
            records = monitor.trace_spans()
    else:
        monitor = StreamMonitor(queries, method=args.method, depth_limit=args.depth)
        _replay_silently(monitor, streams)
        records = list(obs.spans())
    if args.format == "chrome":
        text = json.dumps(obs.to_chrome(records), indent=2, sort_keys=True) + "\n"
    else:
        text = obs.render_critical_spans(records, top=args.top)
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out} ({len(records)} spans)")
    else:
        print(text, end="")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import json

    from . import obs
    from .dashboard import run_top

    if args.dump:
        path = Path(args.dump)

        def poll() -> dict:
            return json.loads(path.read_text())

        frames = run_top(
            poll,
            sys.stdout,
            interval=args.interval,
            iterations=args.iterations,
            clear=not args.no_clear,
        )
        print(f"{frames} frames", file=sys.stderr)
        return 0

    if not (args.queries and args.streams):
        print(
            "top needs a stats JSON dump or --queries/--streams to replay",
            file=sys.stderr,
        )
        return 2
    obs.enable()
    queries = dict(read_graph_set(args.queries))
    streams = _read_streams(args.streams)
    horizon = min(len(stream.operations) for stream in streams.values())
    iterations = args.iterations if args.iterations is not None else horizon + 1

    def run_over(monitor) -> int:
        probe = _make_probe(monitor, args)
        for stream_id, stream in streams.items():
            monitor.add_stream(stream_id, stream.initial)
        monitor.events()
        cursor = {"t": 0}

        def poll() -> dict:
            # One frame = one timestamp: the dashboard doubles as the
            # replay driver, so everything stays single-threaded.
            timestamp = cursor["t"]
            if timestamp < horizon:
                for stream_id, stream in streams.items():
                    monitor.apply(stream_id, stream.operations[timestamp])
                cursor["t"] = timestamp + 1
            monitor.events()
            if probe is not None:
                probe.sample()
            if hasattr(monitor, "inbox_depths"):  # ShardedMonitor
                return monitor.stats()
            return {**monitor.stats(), "obs": obs.get_registry().summary()}

        return run_top(
            poll,
            sys.stdout,
            interval=args.interval,
            iterations=iterations,
            clear=not args.no_clear,
        )

    if args.workers >= 1:
        from .runtime import ShardedMonitor

        with ShardedMonitor(
            queries,
            method=args.method,
            depth_limit=args.depth,
            num_workers=args.workers,
            queue_capacity=args.queue_capacity,
        ) as monitor:
            frames = run_over(monitor)
    else:
        frames = run_over(
            StreamMonitor(queries, method=args.method, depth_limit=args.depth)
        )
    print(f"{frames} frames", file=sys.stderr)
    return 0


def _print_slo_table(snapshot: dict) -> None:
    print(f"worst: {snapshot['worst']}")
    header = f"{'rule':<20} {'state':<7} {'value':>12} {'threshold':>10}  objective"
    print(header)
    print("-" * len(header))
    for rule in snapshot["rules"]:
        value = rule.get("value")
        value_text = f"{value:.4g}" if value is not None else "-"
        objective = rule["objective"]
        if objective == "quantile":
            objective = f"p{int(rule['q'] * 100)} quantile"
        print(
            f"{rule['name']:<20} {rule['state']:<7} {value_text:>12} "
            f"{rule['threshold']:>10.4g}  {objective} over {rule['metric']}"
        )


def _cmd_slo(args: argparse.Namespace) -> int:
    import json

    if args.url:
        import urllib.error
        import urllib.request

        url = args.url.rstrip("/") + "/slo"
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                snapshot = json.loads(response.read())
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
            print(f"cannot fetch {url}: {exc}", file=sys.stderr)
            return 2
        _print_slo_table(snapshot)
        return 1 if snapshot["worst"] == "breach" else 0

    if not (args.queries and args.streams):
        print("slo needs --url or --queries/--streams to replay", file=sys.stderr)
        return 2
    from . import obs

    obs.enable()
    queries = dict(read_graph_set(args.queries))
    streams = _read_streams(args.streams)
    import dataclasses

    rules = tuple(
        dataclasses.replace(rule, window=args.window) for rule in obs.DEFAULT_RULES
    )
    timeline = obs.Timeline()
    engine = obs.SloEngine(rules=rules, timeline=timeline)

    def run_over(monitor) -> dict:
        def collect() -> dict:
            stats = monitor.stats() if hasattr(monitor, "inbox_depths") else None
            if stats is not None and isinstance(stats.get("merged_obs"), dict):
                return stats["merged_obs"]
            return obs.get_registry().summary()

        for stream_id, stream in streams.items():
            monitor.add_stream(stream_id, stream.initial)
        monitor.events()
        timeline.sample(collect())
        horizon = min(len(stream.operations) for stream in streams.values())
        for timestamp in range(horizon):
            for stream_id, stream in streams.items():
                monitor.apply(stream_id, stream.operations[timestamp])
            monitor.events()
            timeline.sample(collect())
            engine.evaluate()
        return engine.snapshot()

    if args.workers >= 1:
        from .runtime import ShardedMonitor

        with ShardedMonitor(
            queries,
            method=args.method,
            depth_limit=args.depth,
            num_workers=args.workers,
        ) as monitor:
            snapshot = run_over(monitor)
    else:
        snapshot = run_over(
            StreamMonitor(queries, method=args.method, depth_limit=args.depth)
        )
    _print_slo_table(snapshot)
    return 1 if snapshot["worst"] == "breach" else 0


def _cmd_flight(args: argparse.Namespace) -> int:
    import json
    import signal as signal_module

    from .obs import FlightRecorder

    if args.action == "signal":
        if args.pid is None:
            print("flight signal needs --pid", file=sys.stderr)
            return 2
        try:
            os.kill(args.pid, signal_module.SIGUSR2)
        except (ProcessLookupError, PermissionError) as exc:
            print(f"cannot signal pid {args.pid}: {exc}", file=sys.stderr)
            return 2
        print(f"sent SIGUSR2 to {args.pid}")
        return 0

    if args.action == "list":
        if not args.dir:
            print("flight list needs --dir", file=sys.stderr)
            return 2
        directory = Path(args.dir)
        if not directory.is_dir():
            print(f"no such directory: {directory}", file=sys.stderr)
            return 2
        found = sorted(
            path
            for path in directory.iterdir()
            if path.name.startswith("flight-")
            and path.suffix in (".jsonl", ".json", ".old")
        )
        for path in found:
            kind = "journal" if ".jsonl" in path.name else "dump"
            print(f"{path.name}\t{kind}\t{path.stat().st_size} bytes")
        if not found:
            print("no flight recordings found", file=sys.stderr)
        return 0

    # show
    if not args.file:
        print("flight show needs --file", file=sys.stderr)
        return 2
    path = Path(args.file)
    if not path.exists():
        print(f"no such file: {path}", file=sys.stderr)
        return 2
    loaded = FlightRecorder.read(path)
    if isinstance(loaded, list):  # journal: one event per line
        for event in loaded:
            print(json.dumps(event, sort_keys=True))
    else:  # full dump document
        print(json.dumps(loaded, indent=2, sort_keys=True))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import inspect

    from .experiments import ALL_FIGURES, get_scale

    scale = get_scale(args.scale) if args.scale else get_scale()
    names = sorted(ALL_FIGURES) if args.figure == "all" else [args.figure]
    out = Path(args.out) if args.out else None
    out_is_dir = out is not None and (len(names) > 1 or out.suffix == "")
    if out_is_dir:
        out.mkdir(parents=True, exist_ok=True)
    for name in names:
        if name not in ALL_FIGURES:
            print(
                f"unknown figure {name!r}; choose from {sorted(ALL_FIGURES)} or 'all'",
                file=sys.stderr,
            )
            return 2
        runner = ALL_FIGURES[name].run
        kwargs = {}
        if args.workers and "workers" in inspect.signature(runner).parameters:
            kwargs["workers"] = args.workers
        result = runner(scale, **kwargs)
        print(result.render())
        print()
        if out is not None:
            target = out / f"{name}.{args.format}" if out_is_dir else out
            result.save(target)
            print(f"saved {target}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.cli import run as run_lint

    return run_lint(args)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "search": _cmd_search,
        "monitor": _cmd_monitor,
        "replay": _cmd_replay,
        "serve": _cmd_serve,
        "dlq": _cmd_dlq,
        "stats": _cmd_stats,
        "trace": _cmd_trace,
        "top": _cmd_top,
        "slo": _cmd_slo,
        "flight": _cmd_flight,
        "experiment": _cmd_experiment,
        "lint": _cmd_lint,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early: exit quietly.
        try:
            sys.stdout.close()
        except OSError:  # pragma: no cover - double-close race
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
