"""Command-line interface.

Five subcommands::

    python -m repro generate ...    # write synthetic datasets to files
    python -m repro search ...      # static filter-and-verify search
    python -m repro monitor ...     # replay streams, print match events
    python -m repro experiment ...  # run a paper-figure driver
    python -m repro lint ...        # static analysis (RP001-RP007)

Graphs and query sets use the text format of :mod:`repro.graph.io`
(gSpan-style ``t # / v / e`` blocks); streams add ``op`` blocks.
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path

from .core.database import GraphDatabase
from .core.monitor import StreamMonitor
from .datasets.ggen import generate_graph_set
from .datasets.molecules import generate_molecule_set
from .datasets.queries import make_query_set
from .datasets.reality import RealityConfig, generate_reality_stream
from .datasets.stream_gen import DENSE, SPARSE, synthesize_stream
from .graph.io import read_graph_set, read_stream, write_graph_set, write_stream


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (also used by the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Continuous subgraph pattern search over graph streams "
        "(Wang & Chen, ICDE 2009 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # -- generate ---------------------------------------------------------
    gen = subparsers.add_parser("generate", help="write synthetic datasets to files")
    gen.add_argument(
        "kind",
        choices=["molecules", "ggen", "queries", "reality-stream", "synthetic-stream"],
    )
    gen.add_argument("--out", required=True, help="output file path")
    gen.add_argument("--count", type=int, default=100, help="number of graphs/queries")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--size", type=float, default=20.0, help="mean graph size (ggen T)")
    gen.add_argument("--labels", type=int, default=4, help="vertex label count (ggen V)")
    gen.add_argument("--query-edges", type=int, default=8, help="edges per query")
    gen.add_argument("--from-db", help="source graph set for 'queries'")
    gen.add_argument("--timestamps", type=int, default=100, help="stream length")
    gen.add_argument("--devices", type=int, default=97, help="reality-stream devices")
    gen.add_argument(
        "--density",
        choices=["dense", "sparse"],
        default="dense",
        help="synthetic-stream coin-flip regime (p1/p2 of the paper)",
    )
    gen.add_argument("--base", help="base graph set for 'synthetic-stream' (first block)")

    # -- search -----------------------------------------------------------
    search = subparsers.add_parser("search", help="static subgraph search over a graph set")
    search.add_argument("--db", required=True, help="graph-set file")
    search.add_argument("--queries", required=True, help="graph-set file of patterns")
    search.add_argument("--depth", type=int, default=3, help="NNT depth l")
    search.add_argument(
        "--no-verify", action="store_true", help="report filter candidates only"
    )

    # -- monitor ----------------------------------------------------------
    monitor = subparsers.add_parser("monitor", help="replay streams and print match events")
    monitor.add_argument("--queries", required=True, help="graph-set file of patterns")
    monitor.add_argument("--streams", nargs="+", required=True, help="stream files")
    monitor.add_argument(
        "--method", choices=["nl", "dsc", "skyline", "matrix"], default="dsc"
    )
    monitor.add_argument("--depth", type=int, default=3, help="NNT depth l")
    monitor.add_argument(
        "--verify", action="store_true", help="confirm events with exact isomorphism"
    )

    # -- experiment ---------------------------------------------------------
    experiment = subparsers.add_parser("experiment", help="run a paper-figure driver")
    experiment.add_argument("figure", help="fig02|fig12|...|fig17|ablation_a1..a7|all")
    experiment.add_argument("--scale", choices=["smoke", "default", "paper"])
    experiment.add_argument(
        "--out",
        help="also save results; suffix picks the format (.csv/.json/.md/.txt); "
        "with 'all', a directory receiving one file per figure",
    )
    experiment.add_argument(
        "--format",
        choices=["csv", "json", "md", "txt"],
        default="md",
        help="file format when --out is a directory (default md)",
    )

    # -- lint ---------------------------------------------------------------
    lint = subparsers.add_parser(
        "lint",
        help="static analysis of the repo's soundness/layering invariants",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src", "benchmarks"], help="files/dirs to analyze"
    )
    lint.add_argument("--format", choices=["text", "json"], default="text")
    lint.add_argument("--select", help="comma-separated rule ids (default: all)")
    lint.add_argument("--list-rules", action="store_true", help="print the rule catalog")
    return parser


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------
def _cmd_generate(args: argparse.Namespace) -> int:
    out = Path(args.out)
    if args.kind == "molecules":
        graphs = generate_molecule_set(args.count, seed=args.seed)
        write_graph_set(graphs, out)
    elif args.kind == "ggen":
        graphs = generate_graph_set(
            args.count,
            graph_size=args.size,
            num_vertex_labels=args.labels,
            seed=args.seed,
        )
        write_graph_set(graphs, out)
    elif args.kind == "queries":
        if not args.from_db:
            print("generate queries requires --from-db", file=sys.stderr)
            return 2
        source = [graph for _, graph in read_graph_set(args.from_db)]
        queries = make_query_set(source, args.query_edges, args.count, seed=args.seed)
        write_graph_set(queries, out, names=[f"q{i}" for i in range(len(queries))])
    elif args.kind == "reality-stream":
        stream = generate_reality_stream(
            random.Random(args.seed),
            args.timestamps,
            RealityConfig(num_devices=args.devices),
            name=out.stem,
        )
        write_stream(stream, out)
    elif args.kind == "synthetic-stream":
        if args.base:
            base = read_graph_set(args.base)[0][1]
        else:
            base = generate_graph_set(
                1, graph_size=args.size, num_vertex_labels=args.labels, seed=args.seed
            )[0]
        p_appear, p_disappear = DENSE if args.density == "dense" else SPARSE
        stream = synthesize_stream(
            base,
            p_appear,
            p_disappear,
            args.timestamps,
            random.Random(args.seed + 1),
            all_pairs=True,
            name=out.stem,
        )
        write_stream(stream, out)
    print(f"wrote {out}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    database = GraphDatabase(dict(read_graph_set(args.db)), depth_limit=args.depth)
    for name, query in read_graph_set(args.queries):
        if args.no_verify:
            hits = database.filter_candidates(query)
            label = "candidates"
        else:
            hits = database.search(query, verify=True)
            label = "matches"
        print(f"{name}: {len(hits)} {label}: {' '.join(sorted(map(str, hits)))}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    queries = dict(read_graph_set(args.queries))
    streams = {}
    for path in args.streams:
        stream = read_stream(path)
        stream_id = stream.name or Path(path).stem
        streams[stream_id] = stream
    monitor = StreamMonitor(queries, method=args.method, depth_limit=args.depth)
    for stream_id, stream in streams.items():
        monitor.add_stream(stream_id, stream.initial)
    for event in monitor.poll_events():
        print(f"t=0: {event.kind} {event.query_id} on {event.stream_id}")

    horizon = min(len(stream.operations) for stream in streams.values())
    for timestamp in range(horizon):
        for stream_id, stream in streams.items():
            monitor.apply(stream_id, stream.operations[timestamp])
        for event in monitor.poll_events():
            line = f"t={timestamp + 1}: {event.kind} {event.query_id} on {event.stream_id}"
            if args.verify and event.kind == "appeared":
                pair = (event.stream_id, event.query_id)
                confirmed = pair in monitor.verified_matches({pair})
                line += "  [CONFIRMED]" if confirmed else "  [filter only]"
            print(line)
    final = sorted(monitor.matches())
    print(f"final possible pairs: {final}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import ALL_FIGURES, get_scale

    scale = get_scale(args.scale) if args.scale else get_scale()
    names = sorted(ALL_FIGURES) if args.figure == "all" else [args.figure]
    out = Path(args.out) if args.out else None
    out_is_dir = out is not None and (len(names) > 1 or out.suffix == "")
    if out_is_dir:
        out.mkdir(parents=True, exist_ok=True)
    for name in names:
        if name not in ALL_FIGURES:
            print(
                f"unknown figure {name!r}; choose from {sorted(ALL_FIGURES)} or 'all'",
                file=sys.stderr,
            )
            return 2
        result = ALL_FIGURES[name].run(scale)
        print(result.render())
        print()
        if out is not None:
            target = out / f"{name}.{args.format}" if out_is_dir else out
            result.save(target)
            print(f"saved {target}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.cli import run as run_lint

    return run_lint(args)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "search": _cmd_search,
        "monitor": _cmd_monitor,
        "experiment": _cmd_experiment,
        "lint": _cmd_lint,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early: exit quietly.
        try:
            sys.stdout.close()
        except OSError:  # pragma: no cover - double-close race
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
