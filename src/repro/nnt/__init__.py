"""Node-Neighbor Trees: construction, incremental maintenance, projection."""

from .builder import build_all_nnts, build_nnt, enumerate_simple_paths, project_graph
from .branches import BranchFilter, branch_compatible, branch_profile
from .incremental import BatchNPVListener, NNTIndex, NPVListener, index_graphs
from .projection import (
    PAPER_SCHEME,
    Dimension,
    DimensionScheme,
    NPV,
    add_to_vector,
    dominates,
    project_tree,
    strictly_dominates,
    vector_mass,
)
from .tree import NNT, TreeNode

__all__ = [
    "BatchNPVListener",
    "BranchFilter",
    "Dimension",
    "DimensionScheme",
    "NNT",
    "NNTIndex",
    "NPV",
    "NPVListener",
    "PAPER_SCHEME",
    "TreeNode",
    "add_to_vector",
    "branch_compatible",
    "branch_profile",
    "build_all_nnts",
    "build_nnt",
    "dominates",
    "enumerate_simple_paths",
    "index_graphs",
    "project_graph",
    "project_tree",
    "strictly_dominates",
    "vector_mass",
]
