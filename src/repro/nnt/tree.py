"""Node-Neighbor Tree structure (Definition 3.1 of the paper).

``NNT(u)`` is a tree rooted at vertex ``u`` containing **all simple paths**
(paths with no repeated edge) of length at most ``l`` starting at ``u`` in
the host graph.  Each tree node corresponds to one occurrence of a graph
vertex at the end of one such path; a tree edge ``parent -> child``
corresponds to one occurrence of a graph edge.

The structure here is deliberately pointer-based (parent links, children
keyed by graph vertex) because the incremental maintenance of Section III
(:mod:`repro.nnt.incremental`) splices subtrees in and out in place and
indexes individual tree nodes in its inverted indexes.
"""

from __future__ import annotations

from typing import Iterator

from ..graph.labeled_graph import Label, VertexId


class TreeNode:
    """One node of an NNT: a graph vertex at the end of one simple path.

    ``children`` is keyed by the child's graph vertex: from a given tree
    node at graph vertex ``g``, a graph edge ``(g, x)`` can extend the path
    in at most one way, so keys are unique.
    """

    __slots__ = (
        "graph_vertex",
        "parent",
        "children",
        "depth",
        "edge_label",
        "root_vertex",
        "dim",
    )

    def __init__(
        self,
        graph_vertex: VertexId,
        parent: "TreeNode | None" = None,
        depth: int = 0,
        edge_label: Label | None = None,
    ) -> None:
        self.graph_vertex = graph_vertex
        self.parent = parent
        self.children: dict[VertexId, TreeNode] = {}
        self.depth = depth
        # Label of the graph edge (parent.graph_vertex, graph_vertex);
        # None for the root.
        self.edge_label = edge_label
        # Caches populated by the incremental index (hot-path bookkeeping):
        # the owning tree's root vertex, and the node's NPV dimension.
        self.root_vertex: VertexId | None = None
        self.dim = None

    def is_root(self) -> bool:
        """Is this the tree's root node?"""
        return self.parent is None

    def root_path_vertices(self) -> list[VertexId]:
        """Graph vertices on the path root -> this node (root first)."""
        path: list[VertexId] = []
        node: TreeNode | None = self
        while node is not None:
            path.append(node.graph_vertex)
            node = node.parent
        path.reverse()
        return path

    def edge_on_root_path(self, a: VertexId, b: VertexId) -> bool:
        """True iff graph edge ``{a, b}`` already lies on the root path.

        Walking parent links costs O(depth); depths are bounded by the
        small NNT depth ``l`` (the paper fixes 3) so this beats storing a
        per-node edge set.
        """
        node: TreeNode = self
        while node.parent is not None:
            x, y = node.graph_vertex, node.parent.graph_vertex
            if (x == a and y == b) or (x == b and y == a):
                return True
            node = node.parent
        return False

    def descendants(self, include_self: bool = True) -> Iterator["TreeNode"]:
        """Iterate the subtree under this node, preorder."""
        stack = [self]
        while stack:
            node = stack.pop()
            if include_self or node is not self:
                yield node
            stack.extend(node.children.values())

    def __repr__(self) -> str:
        return f"TreeNode(vertex={self.graph_vertex!r}, depth={self.depth})"


class NNT:
    """A node-neighbor tree rooted at one graph vertex."""

    __slots__ = ("root", "depth_limit")

    def __init__(self, root_vertex: VertexId, depth_limit: int) -> None:
        if depth_limit < 1:
            raise ValueError("NNT depth limit must be at least 1")
        self.root = TreeNode(root_vertex)
        self.depth_limit = depth_limit

    @property
    def root_vertex(self) -> VertexId:
        return self.root.graph_vertex

    def nodes(self) -> Iterator[TreeNode]:
        """All tree nodes, preorder from the root."""
        return self.root.descendants()

    def tree_edges(self) -> Iterator[tuple[TreeNode, TreeNode]]:
        """All tree edges as ``(parent, child)`` pairs."""
        for node in self.nodes():
            for child in node.children.values():
                yield node, child

    def size(self) -> int:
        """Number of tree nodes (>= 1)."""
        return sum(1 for _ in self.nodes())

    def num_tree_edges(self) -> int:
        """Number of tree edges (= size - 1)."""
        return self.size() - 1

    def branches(self) -> Iterator[list[TreeNode]]:
        """Root-to-leaf node paths, each a maximal simple path occurrence."""
        stack: list[list[TreeNode]] = [[self.root]]
        while stack:
            path = stack.pop()
            node = path[-1]
            if not node.children:
                yield path
            else:
                for child in node.children.values():
                    stack.append(path + [child])

    def canonical_form(self, label_of) -> tuple:
        """Order-independent nested-tuple form, for structural comparison.

        ``label_of`` maps a graph vertex to its label; labels (not raw
        vertex ids) are used so two NNTs of isomorphic neighborhoods
        compare equal.
        """

        def form(node: TreeNode) -> tuple:
            child_forms = sorted(
                (repr((child.edge_label, form(child))), (child.edge_label, form(child)))
                for child in node.children.values()
            )
            return (label_of(node.graph_vertex), tuple(f for _, f in child_forms))

        return form(self.root)

    def __repr__(self) -> str:
        return f"NNT(root={self.root_vertex!r}, depth_limit={self.depth_limit})"
