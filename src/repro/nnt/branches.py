"""Branch compatibility between NNTs (Lemma 4.1 of the paper).

``NNT(u)`` is *branch compatible* to ``NNT(v)`` when every simple path
(branch) of ``NNT(u)`` is contained in the branches of ``NNT(v)``.  We use
the multiset form — every root-path *signature* (the sequence of
``(edge label, vertex label)`` pairs from the root) of ``NNT(u)`` must
appear in ``NNT(v)`` at least as many times — which is still sound: an
injective subgraph embedding maps distinct simple paths to distinct
simple paths with identical signatures.

This check is strictly stronger than NPV dominance (the NPV forgets the
order of labels along a path and ties counts only per depth) but costs a
full tree walk per comparison; ablation A1 quantifies the trade-off.
"""

from __future__ import annotations

from typing import Callable

from ..graph.labeled_graph import Label, LabeledGraph, VertexId
from .builder import build_all_nnts
from .tree import NNT

BranchSignature = tuple  # ((edge_label, vertex_label), ...) from the root
BranchProfile = dict  # BranchSignature -> multiplicity


def branch_profile(tree: NNT, label_of: Callable[[VertexId], Label]) -> BranchProfile:
    """Multiset of root-path signatures of every non-root node.

    Because an NNT contains *all* simple paths up to the depth limit, the
    profile is prefix-closed: every prefix of a contained signature is
    itself contained.
    """
    profile: BranchProfile = {}
    stack: list[tuple] = [(tree.root, ())]
    while stack:
        node, signature = stack.pop()
        if node.parent is not None:
            profile[signature] = profile.get(signature, 0) + 1
        for child in node.children.values():
            step = (child.edge_label, label_of(child.graph_vertex))
            stack.append((child, signature + (step,)))
    return profile


def branch_compatible(
    query_profile: BranchProfile,
    stream_profile: BranchProfile,
    query_root_label: Label,
    stream_root_label: Label,
) -> bool:
    """True iff the query tree's branches all fit inside the stream tree's."""
    if query_root_label != stream_root_label:
        return False
    if len(query_profile) > len(stream_profile):
        return False
    for signature, count in query_profile.items():
        if stream_profile.get(signature, 0) < count:
            return False
    return True


class BranchFilter:
    """Lemma 4.1 as a pair filter: every query vertex must find a
    branch-compatible stream vertex.

    Profiles of the query side are computed once at construction (queries
    are fixed); the stream side is recomputed per call — this filter is
    the *expensive* comparison point of ablation A1, not a streaming
    engine.
    """

    def __init__(self, query: LabeledGraph, depth_limit: int = 3) -> None:
        self.query = query
        self.depth_limit = depth_limit
        self._query_profiles = {
            vertex: branch_profile(tree, query.vertex_label)
            for vertex, tree in build_all_nnts(query, depth_limit).items()
        }

    def admits(self, stream_graph: LabeledGraph) -> bool:
        """True iff the pair (query, stream_graph) survives the filter."""
        stream_profiles = {
            vertex: branch_profile(tree, stream_graph.vertex_label)
            for vertex, tree in build_all_nnts(stream_graph, self.depth_limit).items()
        }
        for query_vertex, query_prof in self._query_profiles.items():
            query_label = self.query.vertex_label(query_vertex)
            if not any(
                branch_compatible(
                    query_prof,
                    stream_prof,
                    query_label,
                    stream_graph.vertex_label(stream_vertex),
                )
                for stream_vertex, stream_prof in stream_profiles.items()
            ):
                return False
        return True
