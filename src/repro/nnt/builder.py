"""From-scratch NNT construction (Definition 3.1).

:func:`build_nnt` is the reference constructor: a breadth-first expansion
that, at each tree node, follows every incident graph edge not already
used on the path from the root.  The incremental index
(:mod:`repro.nnt.incremental`) must always agree with it — the test suite
checks exactly that after random update sequences.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..graph.labeled_graph import LabeledGraph, VertexId
from .projection import NPV, DimensionScheme, PAPER_SCHEME, project_tree
from .tree import NNT, TreeNode


def build_nnt(graph: LabeledGraph, root: VertexId, depth_limit: int) -> NNT:
    """Build ``NNT(root)`` of ``graph`` up to ``depth_limit``."""
    if not graph.has_vertex(root):
        raise ValueError(f"vertex {root!r} is not in the graph")
    tree = NNT(root, depth_limit)
    queue: deque[TreeNode] = deque([tree.root])
    while queue:
        node = queue.popleft()
        if node.depth >= depth_limit:
            continue
        for neighbor, edge_label in graph.neighbor_items(node.graph_vertex):
            if node.edge_on_root_path(node.graph_vertex, neighbor):
                continue
            child = TreeNode(neighbor, node, node.depth + 1, edge_label)
            node.children[neighbor] = child
            queue.append(child)
    return tree


def build_all_nnts(graph: LabeledGraph, depth_limit: int) -> dict[VertexId, NNT]:
    """NNT of every vertex of ``graph``."""
    return {vertex: build_nnt(graph, vertex, depth_limit) for vertex in graph.vertices()}


def project_graph(
    graph: LabeledGraph,
    depth_limit: int,
    scheme: DimensionScheme = PAPER_SCHEME,
) -> dict[VertexId, NPV]:
    """One-shot NPVs for every vertex (build + project, no index kept)."""
    label_of: Callable[[VertexId], object] = graph.vertex_label
    return {
        vertex: project_tree(build_nnt(graph, vertex, depth_limit), label_of, scheme)
        for vertex in graph.vertices()
    }


def enumerate_simple_paths(
    graph: LabeledGraph, root: VertexId, depth_limit: int
) -> list[tuple[VertexId, ...]]:
    """All simple paths (no repeated edge) of length <= depth_limit from
    ``root``, as vertex tuples including the root.

    Brute-force oracle used by tests to validate :func:`build_nnt`: the
    paths must correspond one-to-one with NNT root-to-node paths.
    """
    paths: list[tuple[VertexId, ...]] = []

    def extend(path: list[VertexId], used_edges: set[frozenset]) -> None:
        paths.append(tuple(path))
        if len(path) - 1 >= depth_limit:
            return
        current = path[-1]
        for neighbor in graph.neighbors(current):
            key = frozenset((current, neighbor))
            if key in used_edges:
                continue
            used_edges.add(key)
            path.append(neighbor)
            extend(path, used_edges)
            path.pop()
            used_edges.discard(key)

    extend([root], set())
    return paths
