"""NNT-to-vector projection (Definitions 4.1-4.2, Figure 6 of the paper).

A *dimension* is ``(depth, parent_label, child_label)`` for a tree edge
whose child sits at ``depth`` — optionally extended with the edge label
(an extension the paper does not use; ablation A2 measures its effect).
The *node projected vector* ``NPV(u)`` counts, per dimension, the tree
edges of ``NNT(u)``; it is stored sparsely as a plain dict.

Soundness (Lemma 4.2): under a subgraph embedding ``f`` of ``Q`` into
``G``, every simple path of ``Q`` from ``u`` maps to a distinct simple
path of ``G`` from ``f(u)`` with identical depth/label profile, hence
``NPV(u)[d] <= NPV(f(u))[d]`` for every dimension ``d``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

from ..graph.labeled_graph import Label, VertexId
from .tree import NNT, TreeNode

Dimension = tuple
NPV = dict  # Dimension -> int, sparse (no zero entries stored)


@dataclass(frozen=True)
class DimensionScheme:
    """How tree edges map to projection dimensions.

    ``include_edge_label=False`` reproduces the paper's Definition 4.1;
    ``True`` yields a strictly finer (never less sound) projection at the
    cost of a larger dimension universe.
    """

    include_edge_label: bool = False

    def dimension(
        self,
        depth: int,
        parent_label: Label,
        child_label: Label,
        edge_label: Label,
    ) -> Dimension:
        """The dimension tuple for one tree edge's attributes."""
        if self.include_edge_label:
            return (depth, parent_label, child_label, edge_label)
        return (depth, parent_label, child_label)

    def dimension_of_node(
        self, child: TreeNode, label_of: Callable[[VertexId], Label]
    ) -> Dimension:
        """Dimension of the tree edge ending at (non-root) ``child``."""
        if child.parent is None:
            raise ValueError("the root node has no incoming tree edge")
        return self.dimension(
            child.depth,
            label_of(child.parent.graph_vertex),
            label_of(child.graph_vertex),
            child.edge_label,
        )


PAPER_SCHEME = DimensionScheme(include_edge_label=False)


def project_tree(
    tree: NNT,
    label_of: Callable[[VertexId], Label],
    scheme: DimensionScheme = PAPER_SCHEME,
) -> NPV:
    """Project a whole NNT into its sparse NPV (Procedure TreeProjection)."""
    vector: NPV = {}
    for _, child in tree.tree_edges():
        dim = scheme.dimension_of_node(child, label_of)
        vector[dim] = vector.get(dim, 0) + 1
    return vector


def add_to_vector(vector: NPV, dim: Dimension, delta: int) -> None:
    """Apply a sparse delta, dropping entries that reach zero."""
    value = vector.get(dim, 0) + delta
    if value < 0:
        raise ValueError(f"NPV entry for {dim!r} would become negative")
    if value == 0:
        vector.pop(dim, None)
    else:
        vector[dim] = value


def dominates(big: Mapping[Hashable, int], small: Mapping[Hashable, int]) -> bool:
    """True iff ``big`` dominates ``small``: big[d] >= small[d] on every
    non-zero dimension of ``small`` (the Lemma 4.2 direction)."""
    if len(big) < len(small):
        # ``small`` has a non-zero dimension that ``big`` lacks.
        return False
    for dim, value in small.items():
        if big.get(dim, 0) < value:
            return False
    return True


def strictly_dominates(big: Mapping[Hashable, int], small: Mapping[Hashable, int]) -> bool:
    """Domination that is not equality (used by skyline computation)."""
    if not dominates(big, small):
        return False
    # Given domination, the vectors are equal iff they have the same
    # number of non-zero entries and agree on every entry of ``big``
    # (sparse invariant: no zero entries are stored) — checked without
    # materializing dict copies, as this sits on the skyline hot path.
    if len(big) != len(small):
        return True
    return any(value != small.get(dim, 0) for dim, value in big.items())


def vector_mass(vector: Mapping[Hashable, int]) -> int:
    """L1 mass of a sparse vector (sum of counts)."""
    return sum(vector.values())
