"""Incremental NNT maintenance (Section III, Figures 4-5 of the paper).

:class:`NNTIndex` keeps, for one evolving graph, the NNT of every vertex
plus two inverted indexes:

* the **edge-tree index** ``I_edge``: graph edge -> the tree nodes whose
  incoming tree edge crosses it (each such node identifies one appearance
  of the graph edge in some NNT);
* the **node-tree index** ``I_node``: graph vertex -> every tree node that
  is an occurrence of it (across all NNTs, roots included).

Deleting a graph edge removes the subtree under each of its appearances
(Procedure *Delete-Edge*); inserting edge ``(a, b)`` appends, under every
pre-existing appearance of ``a`` and of ``b`` where the new edge is not on
the root path, a new branch expanded BFS-style to the depth limit
(Procedure *Insert-Edge*).  Per appearance the work is ``O(r^(l-1))`` for
maximum degree ``r`` (Lemma 3.2).

The index simultaneously maintains the sparse NPV of every vertex
(Section IV-A): every tree edge spliced in or out produces a ``+/-1``
delta on one projection dimension, which is applied to the owning
vertex's NPV and forwarded to registered listeners — this is what lets
the join engines of :mod:`repro.join` update their counters without ever
re-projecting a tree.

Delta delivery is *batched and coalesced* by default: all the ``+/-1``
deltas produced while one edge change (or one whole timestamp batch
applied through :meth:`NNTIndex.apply` / :meth:`NNTIndex.batch`) is in
flight are accumulated per ``(vertex, dimension)``, cancelling pairs are
netted out, and listeners receive a single
``on_batch_update({(vertex, dim): net_delta})`` call per batch (vertex
lifecycle events still fire eagerly, in order).  On temporal-locality
streams — where a timestamp deletes and re-inserts overlapping edge
sets — most deltas cancel, so the join engines see a fraction of the raw
tree-edge churn.  Listeners without an ``on_batch_update`` method fall
back to one ``on_dimension_delta`` call per *net* entry; constructing the
index with ``coalesce=False`` restores the legacy one-call-per-tree-edge
delivery (kept for differential testing and benchmarking).
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Iterable, Iterator, Mapping, Protocol

from .. import obs
from ..graph.labeled_graph import GraphError, Label, LabeledGraph, VertexId, edge_key
from ..graph.operations import GraphChangeOperation, INSERT, EdgeChange
from .projection import NPV, Dimension, DimensionScheme, PAPER_SCHEME, add_to_vector
from .tree import NNT, TreeNode


class NPVListener(Protocol):
    """Observer of NPV evolution for one evolving graph."""

    def on_vertex_added(self, vertex: VertexId) -> None:
        """A vertex (with an initially empty NPV) entered the graph."""

    def on_vertex_removed(self, vertex: VertexId) -> None:
        """A vertex left the graph (its index-side NPV is already empty).

        Under coalesced delivery the zeroing deltas are purged rather
        than flushed, so a listener mirroring NPVs must discard (or
        reverse) whatever its own copy of the vector still holds —
        which is what the join engines do.
        """

    def on_dimension_delta(self, vertex: VertexId, dim: Dimension, delta: int) -> None:
        """``NPV(vertex)[dim]`` changed by ``delta`` (+1 or -1 per tree edge)."""


class BatchNPVListener(NPVListener, Protocol):
    """Listener that additionally accepts coalesced delta batches.

    :class:`NNTIndex` probes for :meth:`on_batch_update` at flush time;
    listeners lacking it receive one :meth:`NPVListener.on_dimension_delta`
    call per *net* ``(vertex, dimension)`` entry instead.
    """

    def on_batch_update(self, deltas: Mapping[tuple[VertexId, Dimension], int]) -> None:
        """One batch's coalesced non-zero NPV deltas (treat as read-only)."""


def _root_of(node: TreeNode) -> VertexId:
    """Graph vertex owning the tree that contains ``node`` (O(depth) walk)."""
    while node.parent is not None:
        node = node.parent
    return node.graph_vertex


class NNTIndex:
    """All NNTs + NPVs of one evolving graph, maintained incrementally."""

    def __init__(
        self,
        initial: LabeledGraph | None = None,
        depth_limit: int = 3,
        scheme: DimensionScheme = PAPER_SCHEME,
        coalesce: bool = True,
    ) -> None:
        if depth_limit < 1:
            raise ValueError("depth_limit must be at least 1")
        self.depth_limit = depth_limit
        self.scheme = scheme
        # Fast path: the paper's scheme builds (depth, label, label)
        # tuples inline in _add_tree_edge instead of dispatching.
        self._paper_dims = not scheme.include_edge_label
        self.graph = LabeledGraph()
        self.trees: dict[VertexId, NNT] = {}
        self.node_index: dict[VertexId, set[TreeNode]] = {}
        self.edge_index: dict[tuple, set[TreeNode]] = {}
        self.npvs: dict[VertexId, NPV] = {}
        self.listeners: list[NPVListener] = []
        #: Net delta delivery (batched per edge change / timestamp batch)
        #: vs. the legacy one listener call per spliced tree edge.
        self.coalesce = coalesce
        #: Live occurrence count across all NNTs, roots included (O(1)
        #: alternative to summing the node-index buckets).
        self.num_tree_nodes = 0
        self._batch_depth = 0
        self._pending: dict[tuple[VertexId, Dimension], int] = {}
        self.stats = {
            "tree_nodes_added": 0,
            "tree_nodes_removed": 0,
            "edges_inserted": 0,
            "edges_deleted": 0,
            "deltas_delivered": 0,
        }
        if initial is not None:
            self._build_initial(initial)

    # ------------------------------------------------------------------
    # read API
    # ------------------------------------------------------------------
    def npv(self, vertex: VertexId) -> NPV:
        """The (live, do-not-mutate) NPV of ``vertex``."""
        return self.npvs[vertex]

    def tree(self, vertex: VertexId) -> NNT:
        """The live NNT rooted at ``vertex``."""
        return self.trees[vertex]

    def add_listener(self, listener: NPVListener) -> None:
        """Subscribe to NPV deltas (changes after this call only)."""
        self.listeners.append(listener)

    # ------------------------------------------------------------------
    # delta batching / coalescing
    # ------------------------------------------------------------------
    @contextmanager
    def batch(self) -> Iterator["NNTIndex"]:
        """Scope within which NPV deltas are accumulated and coalesced.

        Scopes nest (only the outermost flushes); every public mutation
        entry point opens one, so ``with index.batch(): ...`` widens the
        coalescing window from one edge change to anything — e.g. one
        whole timestamp batch, which is how :meth:`apply` uses it.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                self._flush_pending()

    def _emit_delta(self, vertex: VertexId, dim: Dimension, delta: int) -> None:
        """Queue (coalescing) or immediately deliver one NPV delta."""
        if self.coalesce and self._batch_depth:
            key = (vertex, dim)
            net = self._pending.get(key, 0) + delta
            if net:
                self._pending[key] = net
            else:
                del self._pending[key]
            return
        self.stats["deltas_delivered"] += 1
        if obs.enabled():
            obs.counter(
                "nnt.deltas_delivered",
                help="net NPV deltas delivered to listeners after coalescing",
            ).inc()
        for listener in self.listeners:
            listener.on_dimension_delta(vertex, dim, delta)

    def _flush_pending(self) -> None:
        """Deliver the netted deltas of the closing batch scope.

        Listeners exposing ``on_batch_update`` get the whole coalesced
        mapping in one call; others get one ``on_dimension_delta`` per
        net entry.  Entries for vertices removed mid-batch were already
        purged (their listener-side state is torn down by the eager
        ``on_vertex_removed``), so every delivered delta lands on a
        vertex the listener still tracks.
        """
        if not self._pending:
            return
        deltas = self._pending
        self._pending = {}
        self.stats["deltas_delivered"] += len(deltas)
        with obs.span("nnt.batch_update", size=len(deltas)):
            for listener in self.listeners:
                batch_method = getattr(listener, "on_batch_update", None)
                if batch_method is not None:
                    batch_method(deltas)
                else:
                    for (vertex, dim), net in deltas.items():
                        listener.on_dimension_delta(vertex, dim, net)
        if obs.enabled():
            obs.counter(
                "nnt.deltas_delivered",
                help="net NPV deltas delivered to listeners after coalescing",
            ).inc(len(deltas))
            obs.histogram(
                "nnt.batch_size",
                help="net NPV deltas per coalesced batch delivery",
                buckets=(1, 2, 5, 10, 25, 50, 100, 250, 1000),
            ).observe(len(deltas))

    def _purge_pending(self, vertex: VertexId) -> None:
        """Drop queued deltas owned by a vertex being removed mid-batch."""
        if self._pending:
            for key in [key for key in self._pending if key[0] == vertex]:
                del self._pending[key]

    # ------------------------------------------------------------------
    # initial build
    # ------------------------------------------------------------------
    def _build_initial(self, initial: LabeledGraph) -> None:
        """Bulk-load: copy the graph, then grow every NNT edge by edge.

        Reuses the same splice primitives as the streaming path (so the
        initial state is by construction consistent with incremental
        updates) but without listener notifications: consumers attach
        afterwards and read the finished NPVs.
        """
        for vertex, label in initial.vertex_items():
            self._create_vertex(vertex, label, notify=False)
        for u, v, label in initial.edges():
            self._insert_edge_internal(u, v, label, notify=False)

    # ------------------------------------------------------------------
    # change application
    # ------------------------------------------------------------------
    def apply(self, operation: GraphChangeOperation) -> None:
        """Apply a batch: all deletions first, then all insertions.

        The whole operation shares one coalescing scope, so deltas that
        cancel across its changes (e.g. a delete/re-insert pair touching
        the same tree edges) never reach the listeners.
        """
        with self.batch():
            for change in operation.sequentialized():
                self.apply_change(change)

    def apply_change(self, change: EdgeChange) -> None:
        """Apply a single edge insertion or deletion."""
        if change.op == INSERT:
            self.insert_edge(
                change.u, change.v, change.edge_label, change.u_label, change.v_label
            )
        else:
            self.delete_edge(change.u, change.v)

    # ------------------------------------------------------------------
    # insertion (Figure 5)
    # ------------------------------------------------------------------
    def insert_edge(
        self,
        a: VertexId,
        b: VertexId,
        edge_label: Label,
        a_label: Label | None = None,
        b_label: Label | None = None,
    ) -> None:
        """Insert graph edge ``(a, b)``, creating missing endpoints."""
        with self.batch():
            for vertex, label in ((a, a_label), (b, b_label)):
                if not self.graph.has_vertex(vertex):
                    if label is None:
                        raise GraphError(
                            f"inserting edge ({a!r}, {b!r}) creates vertex "
                            f"{vertex!r} but no label was provided"
                        )
                    self._create_vertex(vertex, label, notify=True)
            self._insert_edge_internal(a, b, edge_label, notify=True)
            self.stats["edges_inserted"] += 1

    def _insert_edge_internal(
        self, a: VertexId, b: VertexId, edge_label: Label, notify: bool
    ) -> None:
        # Snapshot the pre-existing appearances of both endpoints before
        # touching anything: the expansion below creates new appearances
        # of a and b that are already complete w.r.t. the new edge and
        # must not be re-extended.
        snapshot_a = list(self.node_index.get(a, ()))
        snapshot_b = list(self.node_index.get(b, ()))
        self.graph.add_edge(a, b, edge_label)
        # Hang the new edge (and its BFS-expanded subtree) below every
        # pre-existing appearance where the simple-path rule allows it.
        # Most appearances sit at the depth limit; check that inline
        # before paying a call (this loop runs once per appearance).
        limit = self.depth_limit
        for node in snapshot_a:
            if node.depth < limit and not node.edge_on_root_path(node.graph_vertex, b):
                self._expand_subtree(self._add_tree_edge(node, b, edge_label, notify), notify)
        for node in snapshot_b:
            if node.depth < limit and not node.edge_on_root_path(node.graph_vertex, a):
                self._expand_subtree(self._add_tree_edge(node, a, edge_label, notify), notify)

    def _expand_subtree(self, start: TreeNode, notify: bool) -> None:
        """BFS expansion of a freshly created node down to the depth limit."""
        queue = deque([start])
        while queue:
            node = queue.popleft()
            if node.depth >= self.depth_limit:
                continue
            for neighbor, edge_label in self.graph.neighbor_items(node.graph_vertex):
                if node.edge_on_root_path(node.graph_vertex, neighbor):
                    continue
                child = self._add_tree_edge(node, neighbor, edge_label, notify)
                queue.append(child)

    # ------------------------------------------------------------------
    # deletion (Figure 4)
    # ------------------------------------------------------------------
    def delete_edge(self, a: VertexId, b: VertexId) -> None:
        """Delete graph edge ``(a, b)``; endpoints left isolated are dropped."""
        if not self.graph.has_edge(a, b):
            raise GraphError(f"edge ({a!r}, {b!r}) does not exist")
        key = edge_key(a, b)
        with self.batch():
            appearances = self.edge_index.get(key)
            # Appearances of one edge are never nested inside each other (a
            # simple path uses an edge at most once), but subtree removal can
            # still shrink the set we are iterating, so drain it destructively.
            while appearances:
                child = next(iter(appearances))
                self._remove_subtree(child, notify=True)
                appearances = self.edge_index.get(key)
            self.graph.remove_edge(a, b)
            self.stats["edges_deleted"] += 1
            for vertex in (a, b):
                if self.graph.has_vertex(vertex) and self.graph.degree(vertex) == 0:
                    self._remove_vertex(vertex)

    def _remove_subtree(self, top: TreeNode, notify: bool) -> None:
        """Detach ``top`` (a non-root tree node) and its whole subtree,
        unindexing every node and reversing every NPV contribution."""
        parent = top.parent
        if parent is None:
            raise GraphError("cannot remove the root of an NNT as a subtree")
        root_vertex = top.root_vertex if top.root_vertex is not None else _root_of(top)
        for node in top.descendants(include_self=True):
            self.node_index[node.graph_vertex].discard(node)
            assert node.parent is not None
            key = edge_key(node.parent.graph_vertex, node.graph_vertex)
            bucket = self.edge_index.get(key)
            if bucket is not None:
                bucket.discard(node)
                if not bucket:
                    del self.edge_index[key]
            dim = node.dim  # cached at creation by _add_tree_edge
            add_to_vector(self.npvs[root_vertex], dim, -1)
            self.num_tree_nodes -= 1
            self.stats["tree_nodes_removed"] += 1
            if notify:
                self._emit_delta(root_vertex, dim, -1)
        del parent.children[top.graph_vertex]
        top.parent = None

    # ------------------------------------------------------------------
    # vertex lifecycle
    # ------------------------------------------------------------------
    def _create_vertex(self, vertex: VertexId, label: Label, notify: bool) -> None:
        self.graph.add_vertex(vertex, label)
        tree = NNT(vertex, self.depth_limit)
        tree.root.root_vertex = vertex
        self.trees[vertex] = tree
        self.node_index.setdefault(vertex, set()).add(tree.root)
        self.npvs[vertex] = {}
        self.num_tree_nodes += 1
        if notify:
            for listener in self.listeners:
                listener.on_vertex_added(vertex)

    def _remove_vertex(self, vertex: VertexId) -> None:
        """Drop a now-isolated vertex.

        Isolation implies its NNT is a bare root and no other tree holds an
        occurrence of it (every depth >= 1 occurrence crosses one of its
        incident edges, all already deleted), so the cleanup is local.
        """
        tree = self.trees.pop(vertex)
        bucket = self.node_index.get(vertex, set())
        bucket.discard(tree.root)
        if bucket:
            raise AssertionError(
                f"isolated vertex {vertex!r} still has NNT occurrences; "
                "index is corrupt"
            )
        self.node_index.pop(vertex, None)
        leftover = self.npvs.pop(vertex)
        if leftover:
            raise AssertionError(
                f"isolated vertex {vertex!r} has a non-empty NPV; index is corrupt"
            )
        self.graph.remove_vertex(vertex)
        self.num_tree_nodes -= 1
        # Queued deltas for this vertex net out to minus its pre-batch NPV;
        # the eager on_vertex_removed below already tears the listener-side
        # vector down, so delivering them later would double-reverse.
        self._purge_pending(vertex)
        for listener in self.listeners:
            listener.on_vertex_removed(vertex)

    # ------------------------------------------------------------------
    # tree-edge splice primitive
    # ------------------------------------------------------------------
    def _add_tree_edge(
        self, parent: TreeNode, graph_vertex: VertexId, edge_label: Label, notify: bool
    ) -> TreeNode:
        child = TreeNode(graph_vertex, parent, parent.depth + 1, edge_label)
        parent.children[graph_vertex] = child
        self.node_index.setdefault(graph_vertex, set()).add(child)
        self.edge_index.setdefault(
            edge_key(parent.graph_vertex, graph_vertex), set()
        ).add(child)
        # Hot path: cache the owning root and the node's dimension so
        # subtree removal never recomputes either.
        root_vertex = parent.root_vertex if parent.root_vertex is not None else _root_of(child)
        child.root_vertex = root_vertex
        if self._paper_dims:
            labels = self.graph.labels
            dim = (child.depth, labels[parent.graph_vertex], labels[graph_vertex])
        else:
            dim = self.scheme.dimension_of_node(child, self.graph.vertex_label)
        child.dim = dim
        add_to_vector(self.npvs[root_vertex], dim, +1)
        self.num_tree_nodes += 1
        self.stats["tree_nodes_added"] += 1
        if notify:
            self._emit_delta(root_vertex, dim, +1)
        return child

    # ------------------------------------------------------------------
    # integrity checking (used heavily by the test suite)
    # ------------------------------------------------------------------
    def check_integrity(self) -> None:
        """Verify every cross-structure invariant; raise AssertionError if
        any is violated.  O(total tree size) — for tests and debugging."""
        from .builder import build_nnt  # local import avoids a cycle
        from .projection import project_tree

        if set(self.trees) != set(self.graph.vertices()):
            raise AssertionError("tree set does not match graph vertex set")
        recounted = sum(len(bucket) for bucket in self.node_index.values())
        if self.num_tree_nodes != recounted:
            raise AssertionError(
                f"running tree-node counter ({self.num_tree_nodes}) diverged "
                f"from the node index ({recounted})"
            )
        if self._batch_depth or self._pending:
            raise AssertionError("integrity checked inside an open delta batch")
        seen_nodes: set[int] = set()
        for vertex, tree in self.trees.items():
            if tree.root_vertex != vertex:
                raise AssertionError(f"tree of {vertex!r} rooted elsewhere")
            expected = build_nnt(self.graph, vertex, self.depth_limit)
            got_form = tree.canonical_form(self.graph.vertex_label)
            want_form = expected.canonical_form(self.graph.vertex_label)
            if got_form != want_form:
                raise AssertionError(f"NNT of {vertex!r} diverged from fresh build")
            want_npv = project_tree(expected, self.graph.vertex_label, self.scheme)
            if want_npv != self.npvs[vertex]:
                raise AssertionError(f"NPV of {vertex!r} diverged from fresh projection")
            for node in tree.nodes():
                seen_nodes.add(id(node))
                if node not in self.node_index.get(node.graph_vertex, set()):
                    raise AssertionError("tree node missing from node index")
                if node.parent is not None:
                    key = edge_key(node.parent.graph_vertex, node.graph_vertex)
                    if node not in self.edge_index.get(key, set()):
                        raise AssertionError("tree edge missing from edge index")
        for vertex, bucket in self.node_index.items():
            for node in bucket:
                if id(node) not in seen_nodes:
                    raise AssertionError(f"stale node-index entry for {vertex!r}")
        for key, bucket in self.edge_index.items():
            for node in bucket:
                if id(node) not in seen_nodes:
                    raise AssertionError(f"stale edge-index entry for {key!r}")


def index_graphs(
    graphs: Iterable[LabeledGraph],
    depth_limit: int = 3,
    scheme: DimensionScheme = PAPER_SCHEME,
) -> list[NNTIndex]:
    """Build an :class:`NNTIndex` per graph (bulk helper for experiments)."""
    return [NNTIndex(graph, depth_limit, scheme) for graph in graphs]
