"""Dataset generators: synthetic (ggen), AIDS-like, Reality-Mining-like,
coin-flip streams, and query extraction."""

from .ggen import GGen, GGenConfig, generate_graph_set, random_connected_graph
from .molecules import generate_molecule, generate_molecule_set
from .queries import extract_connected_query, make_query_set
from .reality import (
    DEVICE_LABELS,
    RealityConfig,
    generate_reality_stream,
    generate_reality_streams,
)
from .stream_gen import DENSE, SPARSE, inflate_graph, synthesize_stream, synthesize_streams

__all__ = [
    "DENSE",
    "DEVICE_LABELS",
    "GGen",
    "GGenConfig",
    "RealityConfig",
    "SPARSE",
    "extract_connected_query",
    "generate_graph_set",
    "generate_molecule",
    "generate_molecule_set",
    "generate_reality_stream",
    "generate_reality_streams",
    "inflate_graph",
    "make_query_set",
    "random_connected_graph",
    "synthesize_stream",
    "synthesize_streams",
]
