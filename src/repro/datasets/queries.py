"""Query-set construction: random connected subgraph extraction.

The paper's static query sets ``Q_m`` contain connected size-``m``
subgraphs "extracted randomly from the dataset" (the gIndex evaluation
convention, where size counts **edges**).  Extraction grows a connected
edge set from a random start edge; the query keeps exactly the chosen
edges (it is an edge subgraph, not the induced one), so every extracted
query is subgraph-isomorphic to its source by construction — which the
no-false-negative tests rely on.
"""

from __future__ import annotations

import random

from ..graph.labeled_graph import LabeledGraph


def extract_connected_query(
    graph: LabeledGraph, num_edges: int, rng: random.Random
) -> LabeledGraph:
    """A random connected query with ``min(num_edges, |E|)`` edges."""
    if graph.num_edges == 0:
        raise ValueError("cannot extract a query from an edgeless graph")
    all_edges = sorted(graph.edges(), key=lambda e: (str(e[0]), str(e[1])))
    start = rng.choice(all_edges)
    chosen: dict[frozenset, tuple] = {frozenset((start[0], start[1])): start}
    vertices = {start[0], start[1]}
    while len(chosen) < num_edges:
        frontier = [
            (u, v, label)
            for vertex in vertices
            for v, label in graph.neighbor_items(vertex)
            for u in (vertex,)
            if frozenset((u, v)) not in chosen
        ]
        if not frontier:
            break
        u, v, label = rng.choice(sorted(frontier, key=lambda e: (str(e[0]), str(e[1]))))
        chosen[frozenset((u, v))] = (u, v, label)
        vertices.update((u, v))
    query = LabeledGraph()
    for vertex in vertices:
        query.add_vertex(vertex, graph.vertex_label(vertex))
    for u, v, label in chosen.values():
        query.add_edge(u, v, label)
    return query


def make_query_set(
    graphs: list[LabeledGraph],
    num_edges: int,
    count: int,
    seed: int = 0,
) -> list[LabeledGraph]:
    """``count`` random queries of ``num_edges`` edges from random graphs."""
    rng = random.Random(seed)
    usable = [graph for graph in graphs if graph.num_edges > 0]
    if not usable:
        raise ValueError("no graph in the dataset has edges")
    return [
        extract_connected_query(rng.choice(usable), num_edges, rng) for _ in range(count)
    ]
