"""Reality-Mining-shaped proximity stream generator.

The paper's real stream dataset is the *Device Span* subset of the MIT
Reality Mining project: 97 users whose phones periodically scan for
nearby Bluetooth devices, Jan 2004 - May 2005, converted into one graph
per time window with 10 distinct device labels; multiple streams are
derived by reordering the series.

That dataset has restricted distribution, so this module simulates its
relevant statistics (DESIGN.md §5, substitution 2): a fixed population of
devices with 10 type labels, community structure (two labs), proximity
edges biased heavily within communities, and strong temporal locality —
only a handful of edge flips per timestamp.
"""

from __future__ import annotations

import random

from ..graph.labeled_graph import LabeledGraph, edge_key
from ..graph.operations import EdgeChange, GraphChangeOperation
from ..graph.stream import GraphStream

DEVICE_LABELS = [f"dev{i}" for i in range(10)]
PROXIMITY = "near"


class RealityConfig:
    """Population and dynamics parameters of the simulated Device Span data."""

    def __init__(
        self,
        num_devices: int = 97,
        num_communities: int = 2,
        within_community_density: float = 0.12,
        across_community_density: float = 0.01,
        mean_flips_per_timestamp: float = 3.0,
    ) -> None:
        self.num_devices = num_devices
        self.num_communities = num_communities
        self.within_community_density = within_community_density
        self.across_community_density = across_community_density
        self.mean_flips_per_timestamp = mean_flips_per_timestamp


def _community_of(device: int, config: RealityConfig) -> int:
    return device % config.num_communities


def _pair_density(u: int, v: int, config: RealityConfig) -> float:
    if _community_of(u, config) == _community_of(v, config):
        return config.within_community_density
    return config.across_community_density


def generate_reality_stream(
    rng: random.Random,
    timestamps: int,
    config: RealityConfig | None = None,
    name: str = "reality",
) -> GraphStream:
    """One proximity graph stream over the shared device population."""
    config = config or RealityConfig()
    labels = {device: DEVICE_LABELS[device % len(DEVICE_LABELS)] for device in range(config.num_devices)}

    present: set[tuple] = set()
    initial = LabeledGraph()
    for u in range(config.num_devices):
        for v in range(u + 1, config.num_devices):
            if rng.random() < _pair_density(u, v, config):
                present.add(edge_key(u, v))
    touched = {d for key in present for d in key}
    for device in sorted(touched):
        initial.add_vertex(device, labels[device])
    for u, v in sorted(present):
        initial.add_edge(u, v, PROXIMITY)

    operations: list[GraphChangeOperation] = []
    for _ in range(timestamps - 1):
        flips = max(1, round(rng.expovariate(1.0 / config.mean_flips_per_timestamp)))
        changes: list[EdgeChange] = []
        batch_deleted: set[tuple] = set()
        batch_inserted: set[tuple] = set()
        for _ in range(flips):
            if present and rng.random() < 0.5:
                key = rng.choice(sorted(present))
                present.discard(key)
                batch_deleted.add(key)
            else:
                u = rng.randrange(config.num_devices)
                v = rng.randrange(config.num_devices)
                if u == v:
                    continue
                # Bias new proximity toward the same community.
                if rng.random() > _pair_density(u, v, config) * 8:
                    continue
                key = edge_key(u, v)
                if key in present:
                    continue
                present.add(key)
                batch_inserted.add(key)
        # An edge removed and re-added within one batch is a no-op.
        for key in batch_deleted & batch_inserted:
            batch_deleted.discard(key)
            batch_inserted.discard(key)
        for u, v in sorted(batch_deleted):
            changes.append(EdgeChange.delete(u, v))
        for u, v in sorted(batch_inserted):
            changes.append(
                EdgeChange.insert(u, v, PROXIMITY, u_label=labels[u], v_label=labels[v])
            )
        operations.append(GraphChangeOperation(changes))
    return GraphStream(initial, operations, name=name)


def generate_reality_streams(
    num_streams: int,
    timestamps: int,
    seed: int = 0,
    config: RealityConfig | None = None,
) -> list[GraphStream]:
    """Derive several streams over one device population, as the paper does
    by reordering the original series."""
    rng = random.Random(seed)
    return [
        generate_reality_stream(rng, timestamps, config, name=f"reality{i}")
        for i in range(num_streams)
    ]
