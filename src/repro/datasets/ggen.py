"""Synthetic graph-set generator in the style of Kuramochi & Karypis.

The paper generates its synthetic datasets "by a generator provided by
[12]" (the gSpan/FSG synthetic data generator).  We reimplement it from
the published description using the paper's own parameter vocabulary:

* ``D`` — number of graphs to generate;
* ``S`` — number of seed fragments (the paper's experiment sections call
  this ``L``, "the number of frequent patterns as possible frequent
  graphs");
* ``I`` — average size (vertices) of a seed fragment, Poisson-distributed;
* ``T`` — average size (vertices) of a generated graph, Poisson-distributed;
* ``V`` — number of distinct vertex labels;
* ``E`` — number of distinct edge labels.

Seed fragments are drawn once; each output graph repeatedly overlays
randomly chosen seeds — gluing each new seed to the partial graph through
a random bridge edge so graphs stay connected — until the target size is
reached.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..graph.labeled_graph import LabeledGraph


def _poisson(rng: random.Random, mean: float, minimum: int = 1) -> int:
    """Knuth's Poisson sampler, clamped below by ``minimum``."""
    if mean <= 0:
        return minimum
    import math

    threshold = math.exp(-mean)
    count, product = 0, 1.0
    while True:
        product *= rng.random()
        if product <= threshold:
            break
        count += 1
    return max(count, minimum)


def random_connected_graph(
    rng: random.Random,
    num_vertices: int,
    vertex_labels: list,
    edge_labels: list,
    extra_edge_ratio: float = 0.25,
) -> LabeledGraph:
    """A random connected labeled graph: spanning tree + extra edges."""
    graph = LabeledGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, rng.choice(vertex_labels))
    order = list(range(num_vertices))
    rng.shuffle(order)
    for i in range(1, num_vertices):
        graph.add_edge(order[i], rng.choice(order[:i]), rng.choice(edge_labels))
    extra = int(extra_edge_ratio * num_vertices)
    for _ in range(extra):
        if num_vertices < 2:
            break
        u, v = rng.sample(range(num_vertices), 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v, rng.choice(edge_labels))
    return graph


@dataclass(frozen=True)
class GGenConfig:
    """Parameters of the synthetic generator (paper Section V notation)."""

    num_graphs: int = 100  # D
    num_seeds: int = 20  # the paper's L/S
    seed_size: float = 10.0  # I
    graph_size: float = 50.0  # T
    num_vertex_labels: int = 4  # V
    num_edge_labels: int = 1  # E
    seed: int = 0
    # Fraction of each inserted seed's vertices mapped onto vertices the
    # graph already has (the K&K generator overlays seeds with overlap,
    # which is what creates dense local cores in the output graphs).
    overlap_fraction: float = 0.35
    # Extra (non-spanning-tree) edges per seed vertex; higher values give
    # denser seed fragments and therefore denser local cores.
    seed_extra_edge_ratio: float = 0.25


class GGen:
    """Seed-fragment overlay generator."""

    def __init__(self, config: GGenConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self.vertex_labels = [f"v{i}" for i in range(config.num_vertex_labels)]
        self.edge_labels = [f"e{i}" for i in range(config.num_edge_labels)]
        self.seeds = [
            random_connected_graph(
                self._rng,
                _poisson(self._rng, config.seed_size, minimum=2),
                self.vertex_labels,
                self.edge_labels,
                extra_edge_ratio=config.seed_extra_edge_ratio,
            )
            for _ in range(config.num_seeds)
        ]

    def generate_graph(self, target_size: int | None = None) -> LabeledGraph:
        """One output graph: overlay random seeds (with vertex overlap)
        until ``target_size`` vertices are reached."""
        rng = self._rng
        if target_size is None:
            target_size = _poisson(rng, self.config.graph_size, minimum=3)
        graph = LabeledGraph()
        next_id = 0
        while graph.num_vertices < target_size:
            seed = rng.choice(self.seeds)
            seed_vertices = list(seed.vertices())
            mapping: dict = {}
            if graph.num_vertices:
                # Overlay: map part of the seed onto existing vertices so
                # fragments overlap (this keeps the graph connected and
                # creates the dense local cores of the K&K generator).
                overlap = max(
                    1,
                    min(
                        round(self.config.overlap_fraction * len(seed_vertices)),
                        graph.num_vertices,
                        len(seed_vertices) - 1,
                    ),
                )
                anchors = rng.sample(range(graph.num_vertices), overlap)
                for seed_vertex, anchor in zip(rng.sample(seed_vertices, overlap), anchors):
                    mapping[seed_vertex] = anchor
            for vertex, label in seed.vertex_items():
                if vertex not in mapping:
                    mapping[vertex] = next_id
                    graph.add_vertex(next_id, label)
                    next_id += 1
            for u, v, label in seed.edges():
                mu, mv = mapping[u], mapping[v]
                if mu != mv and not graph.has_edge(mu, mv):
                    graph.add_edge(mu, mv, label)
        return graph

    def generate(self) -> list[LabeledGraph]:
        """The whole graph set (``D`` graphs)."""
        return [self.generate_graph() for _ in range(self.config.num_graphs)]


def generate_graph_set(
    num_graphs: int,
    num_seeds: int = 20,
    seed_size: float = 10.0,
    graph_size: float = 50.0,
    num_vertex_labels: int = 4,
    num_edge_labels: int = 1,
    seed: int = 0,
) -> list[LabeledGraph]:
    """Convenience wrapper mirroring the paper's parameter lists."""
    config = GGenConfig(
        num_graphs=num_graphs,
        num_seeds=num_seeds,
        seed_size=seed_size,
        graph_size=graph_size,
        num_vertex_labels=num_vertex_labels,
        num_edge_labels=num_edge_labels,
        seed=seed,
    )
    return GGen(config).generate()
