"""The paper's synthetic stream construction (Section V-B).

From a base graph (a ggen query graph inflated to 1.5x its size with
randomly labeled vertices) the paper builds a stream by flipping, at
every timestamp, a biased coin per vertex-vertex pair: an absent edge
*appears* with probability ``p1``, a present edge *disappears* with
probability ``p2``.  The paper's settings: ``p1=20%, p2=15%`` (dense) and
``p1=10%, p2=30%`` (sparse).

We default the candidate pair set to the **base graph's edge set** (edges
toggle in and out of the designed topology), which keeps the equilibrium
density at ``p1/(p1+p2)`` of the base topology and matches the temporal-
locality premise of Section II.  ``all_pairs=True`` switches to the
literal every-vertex-pair reading (quadratically many candidate edges);
``extra_pair_factor`` interpolates between the two by adding a sampled
set of non-base pairs (``factor * |E_base|`` of them) to the candidate
set — the experiment harness uses it to land in the paper's candidate-
ratio regime at simulator-tractable densities.
"""

from __future__ import annotations

import random

from ..graph.labeled_graph import LabeledGraph, edge_key
from ..graph.operations import EdgeChange, GraphChangeOperation
from ..graph.stream import GraphStream

DENSE = (0.20, 0.15)
SPARSE = (0.10, 0.30)


def inflate_graph(
    graph: LabeledGraph,
    factor: float,
    rng: random.Random,
    vertex_labels: list,
    edge_labels: list,
) -> LabeledGraph:
    """Grow ``graph`` to ``factor`` times its vertex count by attaching
    randomly labeled vertices (the paper's stream base construction)."""
    inflated = graph.copy()
    extra = max(0, round(graph.num_vertices * (factor - 1.0)))
    existing = list(inflated.vertices())
    next_id = 0
    taken = set(existing)
    for _ in range(extra):
        while next_id in taken:
            next_id += 1
        vertex = next_id
        taken.add(vertex)
        inflated.add_vertex(vertex, rng.choice(vertex_labels))
        attachments = rng.randint(1, min(2, len(existing)))
        for anchor in rng.sample(existing, attachments):
            inflated.add_edge(vertex, anchor, rng.choice(edge_labels))
        existing.append(vertex)
    return inflated


def synthesize_stream(
    base: LabeledGraph,
    p_appear: float,
    p_disappear: float,
    timestamps: int,
    rng: random.Random,
    all_pairs: bool = False,
    extra_pair_factor: float = 0.0,
    name: str = "synthetic",
) -> GraphStream:
    """Coin-flip stream over ``base`` (see module docstring).

    Timestamp 0 is the full base graph; every subsequent timestamp flips
    each candidate pair independently.
    """
    labels = dict(base.vertex_items())
    edge_labels = {edge_key(u, v): label for u, v, label in base.edges()}
    default_edge_label = next(iter(edge_labels.values()), "-")
    if all_pairs:
        vertices = sorted(labels, key=str)
        candidates = [
            edge_key(vertices[i], vertices[j])
            for i in range(len(vertices))
            for j in range(i + 1, len(vertices))
        ]
    else:
        candidates = sorted(edge_labels, key=str)
        if extra_pair_factor > 0:
            vertices = sorted(labels, key=str)
            non_base = [
                edge_key(vertices[i], vertices[j])
                for i in range(len(vertices))
                for j in range(i + 1, len(vertices))
                if edge_key(vertices[i], vertices[j]) not in edge_labels
            ]
            wanted = min(len(non_base), round(extra_pair_factor * len(edge_labels)))
            candidates = candidates + sorted(rng.sample(non_base, wanted), key=str)

    present = set(edge_labels)
    operations: list[GraphChangeOperation] = []
    for _ in range(timestamps - 1):
        deletions: list[EdgeChange] = []
        insertions: list[EdgeChange] = []
        for key in candidates:
            u, v = key
            if key in present:
                if rng.random() < p_disappear:
                    present.discard(key)
                    deletions.append(EdgeChange.delete(u, v))
            elif rng.random() < p_appear:
                present.add(key)
                insertions.append(
                    EdgeChange.insert(
                        u,
                        v,
                        edge_labels.get(key, default_edge_label),
                        u_label=labels[u],
                        v_label=labels[v],
                    )
                )
        operations.append(GraphChangeOperation(deletions + insertions))
    return GraphStream(base.copy(), operations, name=name)


def synthesize_streams(
    bases: list[LabeledGraph],
    p_appear: float,
    p_disappear: float,
    timestamps: int,
    seed: int = 0,
    all_pairs: bool = False,
    extra_pair_factor: float = 0.0,
) -> list[GraphStream]:
    """One stream per base graph (the paper's 70-stream construction)."""
    rng = random.Random(seed)
    return [
        synthesize_stream(
            base,
            p_appear,
            p_disappear,
            timestamps,
            rng,
            all_pairs,
            extra_pair_factor,
            name=f"syn{i}",
        )
        for i, base in enumerate(bases)
    ]
