"""AIDS-screen-shaped molecule generator.

The paper's real static dataset is a 10,000-graph sample of the DTP AIDS
Antiviral Screen (avg 24.8 vertices / 26.8 edges).  That dataset is not
redistributable here, so this module generates graphs with the same
statistical fingerprint the filtering experiments depend on:

* heavy-atom label distribution skewed like organic chemistry
  (carbon dominates, then N/O, then a tail of heteroatoms);
* valence-bounded degrees (an atom's degree never exceeds its valence);
* topology that is a tree plus a few ring-closing edges, matching the
  edges/vertices ratio of the paper's sample (26.8 / 24.8 ~ 1.08);
* bond labels skewed toward single bonds.

See DESIGN.md §5 (substitution 1).
"""

from __future__ import annotations

import random

from ..graph.labeled_graph import LabeledGraph

# (element, relative frequency, valence) — coarse organic-chemistry skew.
ATOMS: list[tuple[str, float, int]] = [
    ("C", 0.72, 4),
    ("O", 0.10, 2),
    ("N", 0.09, 3),
    ("S", 0.03, 2),
    ("Cl", 0.02, 1),
    ("P", 0.01, 3),
    ("F", 0.01, 1),
    ("Br", 0.01, 1),
    ("I", 0.01, 1),
]

# (bond label, relative frequency) — single / double / aromatic.
BONDS: list[tuple[str, float]] = [("1", 0.78), ("2", 0.12), ("a", 0.10)]


def _weighted_choice(rng: random.Random, table: list[tuple]) -> tuple:
    roll = rng.random()
    cumulative = 0.0
    for row in table:
        cumulative += row[1]
        if roll <= cumulative:
            return row
    return table[-1]


def generate_molecule(
    rng: random.Random, mean_size: float = 24.8, ring_ratio: float = 0.085
) -> LabeledGraph:
    """One molecule-shaped labeled graph.

    ``ring_ratio`` controls extra (ring-closing) edges per vertex on top
    of the spanning tree; the default reproduces the AIDS sample's
    edge/vertex ratio of ~1.08.
    """
    size = max(4, round(rng.gauss(mean_size, mean_size * 0.35)))
    graph = LabeledGraph()
    valence: dict[int, int] = {}
    for atom_id in range(size):
        element, _, max_valence = _weighted_choice(rng, ATOMS)
        graph.add_vertex(atom_id, element)
        valence[atom_id] = max_valence

    def has_capacity(atom_id: int) -> bool:
        return graph.degree(atom_id) < valence[atom_id]

    # Spanning tree under valence constraints (carbon backbone bias).
    attached = [0]
    for atom_id in range(1, size):
        anchors = [a for a in attached if has_capacity(a)]
        if not anchors:
            anchors = attached  # degenerate labels; relax the valence cap
        anchor = rng.choice(anchors)
        bond, _ = _weighted_choice(rng, BONDS)
        graph.add_edge(atom_id, anchor, bond)
        attached.append(atom_id)

    # Ring closures.
    rings = round(ring_ratio * size)
    for _ in range(rings * 4):  # bounded retry budget
        if rings <= 0:
            break
        u, v = rng.sample(range(size), 2)
        if graph.has_edge(u, v) or not (has_capacity(u) and has_capacity(v)):
            continue
        graph.add_edge(u, v, _weighted_choice(rng, BONDS)[0])
        rings -= 1
    return graph


def generate_molecule_set(
    num_graphs: int, mean_size: float = 24.8, seed: int = 0
) -> list[LabeledGraph]:
    """A molecule dataset standing in for the paper's AIDS sample."""
    rng = random.Random(seed)
    return [generate_molecule(rng, mean_size) for _ in range(num_graphs)]
