"""The asyncio TCP server: sessions at the edge, one writer at the core.

Concurrency model
-----------------
One ``asyncio`` event loop runs:

* a **client handler** per connection — reads newline-delimited JSON
  commands, runs admission control, enqueues admitted work, awaits the
  reply future, writes the reply.  A handler has at most one command in
  flight, so each session observes strict FIFO semantics while separate
  sessions interleave freely;
* a single **writer task** — drains the admission queue and executes
  commands through :class:`~repro.serve.session.MonitorBridge`.  It is
  the only task that touches the monitor, which makes the sharded
  coordinator's synchronous request/reply protocol safe without locks.

Admission control happens *before* a command is queued: per-session
token bucket, then circuit breaker (keyed on worker inbox depth), then
the bounded admission queue.  Every rejection is a structured reply
with a ``retry_after`` hint — the edge never silently blocks and never
drops an *acked* batch (only never-admitted or explicitly ``shed``
commands are refused, and the client is told).  Control commands
(``matches``/``stats``/...) bypass admission so a congested server
stays observable.

Draining (SIGTERM or :meth:`ReproServer.drain`) stops the listener,
tells every session ``{"notice": "draining"}``, holds ``drain_grace``
seconds so load balancers see ``/readyz`` flip to 503 before in-flight
work finishes, lets the writer flush everything already admitted,
checkpoints when configured, and only then closes.

Observability rides the same loop: an optional HTTP endpoint
(:class:`~repro.serve.http.ObservabilityEndpoint`) serves scrapes and
health probes, a periodic sampler folds the merged registry summary
into a :class:`~repro.obs.timeline.Timeline` and re-evaluates the
:class:`~repro.obs.slo.SloEngine`, and a
:class:`~repro.obs.flight.FlightRecorder` journals every refusal,
shed, and dead-letter so overload incidents are reconstructable.  The
sampler only reads snapshots between writer commands (no awaits inside
the monitor critical section), so it can never interleave with a
half-executed command.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from .. import obs
from .admission import CircuitBreaker, TokenBucket
from .dlq import DeadLetterQueue
from .http import ObservabilityEndpoint
from .lifecycle import Lifecycle, install_signal_handlers
from .protocol import (
    Command,
    ProtocolError,
    Quit,
    encode_reply,
    parse_json_line,
)
from .session import MonitorBridge, Session, collect_obs_summary

__all__ = [
    "ServeConfig",
    "ReproServer",
    "run_server",
    "replay_dead_letters",
    "replay_dead_letters_async",
]

#: Floor for computed retry hints so clients never busy-spin.
_MIN_RETRY = 0.05


@dataclass
class ServeConfig:
    """Tunables of the serving edge (all CLI-exposed)."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Per-session token bucket: data commands/second (0 = unlimited).
    rate: float = 0.0
    burst: float = 8.0
    #: Bounded admission queue: max data commands queued but unexecuted.
    admission_capacity: int = 64
    #: ``reject`` refuses the newcomer; ``shed`` refuses the oldest
    #: queued data command to make room for it.
    admission_policy: str = "reject"
    #: Circuit breaker: trip when the load probe (deepest worker inbox)
    #: stays at/above this for ``breaker_trip_after`` samples (0 = off).
    breaker_threshold: float = 0.0
    breaker_cooldown: float = 1.0
    breaker_trip_after: int = 3
    #: Observability endpoint bind (None = no HTTP endpoint).
    http_host: str | None = None
    http_port: int = 0
    #: Seconds to hold between the draining notice and the writer
    #: sentinel, so ``/readyz`` flips to 503 while work still flows
    #: (the Kubernetes preStop pattern).
    drain_grace: float = 0.0
    #: Metrics-timeline sampler cadence and ring size.
    timeline_interval: float = 1.0
    timeline_capacity: int = 512
    #: Directory for the flight-recorder journal (None = in-memory only).
    flight_dir: str | None = None
    #: SLO rule overrides (() = the stock DEFAULT_RULES).
    slo_rules: tuple = ()

    def __post_init__(self) -> None:
        if self.admission_policy not in ("reject", "shed"):
            raise ValueError(
                f"admission_policy must be 'reject' or 'shed', "
                f"got {self.admission_policy!r}"
            )
        if self.admission_capacity < 1:
            raise ValueError("admission_capacity must be >= 1")
        if self.drain_grace < 0:
            raise ValueError("drain_grace must be >= 0 seconds")
        if self.timeline_interval <= 0:
            raise ValueError("timeline_interval must be > 0 seconds")
        if self.timeline_capacity < 2:
            raise ValueError("timeline_capacity must be >= 2")


@dataclass
class _WorkItem:
    session: Session
    command: Command
    future: asyncio.Future
    is_data: bool
    shed: bool = field(default=False)


class ReproServer:
    """Async TCP front-end over one monitor (library or sharded)."""

    def __init__(
        self,
        monitor: Any,
        config: ServeConfig | None = None,
        dlq: DeadLetterQueue | None = None,
        load_probe: Callable[[], float] | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.monitor = monitor
        self.dlq = dlq if dlq is not None else DeadLetterQueue()
        self.bridge = MonitorBridge(
            monitor, dlq=self.dlq, extra_stats=self._edge_stats
        )
        self.lifecycle = Lifecycle()
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
            trip_after=self.config.breaker_trip_after,
        )
        self._load_probe = load_probe
        self._queue: asyncio.Queue[_WorkItem | None] = asyncio.Queue()
        self._sheddable: deque[_WorkItem] = deque()
        self._data_depth = 0
        self._sessions: dict[int, tuple[Session, asyncio.StreamWriter]] = {}
        self._next_session = 1
        self._server: asyncio.base_events.Server | None = None
        self._writer_task: asyncio.Task | None = None
        self._drain_task: asyncio.Task | None = None
        #: EMA of per-command service time, feeding retry_after hints.
        self._service_ema = _MIN_RETRY
        self.counters = {
            "admitted": 0,
            "rejected_rate": 0,
            "rejected_breaker": 0,
            "rejected_queue": 0,
            "rejected_draining": 0,
            "shed": 0,
        }
        self._admitted = obs.counter("serve.admitted", "commands admitted")
        self._shed = obs.counter("serve.shed", "queued commands shed under overload")
        self._sessions_gauge = obs.gauge("serve.sessions", "connected sessions")
        self._depth_gauge = obs.gauge(
            "serve.queue_depth", "data commands waiting in the admission queue"
        )
        self._breaker_gauge = obs.gauge(
            "serve.breaker_state", "0=closed 1=half-open 2=open"
        )
        self.timeline = obs.Timeline(capacity=self.config.timeline_capacity)
        self.slo = obs.SloEngine(
            rules=self.config.slo_rules or None, timeline=self.timeline
        )
        flight_path = (
            Path(self.config.flight_dir) / "flight-serve.jsonl"
            if self.config.flight_dir
            else None
        )
        self.flight = obs.FlightRecorder(path=flight_path)
        self.http: ObservabilityEndpoint | None = None
        self._sampler_task: asyncio.Task | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener(s) and launch the writer + sampler tasks."""
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        loop = asyncio.get_running_loop()
        self._writer_task = loop.create_task(self._writer_loop())
        if self.config.http_host is not None:
            self.http = ObservabilityEndpoint(
                self.config.http_host,
                self.config.http_port,
                summary=lambda: collect_obs_summary(self.monitor),
                ready=lambda: not self.lifecycle.draining,
                slo=self.slo.snapshot,
                timeline=self.timeline,
            )
            await self.http.start()
        self._sampler_task = loop.create_task(self._sample_loop())
        self.lifecycle.mark_serving()

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def http_port(self) -> int:
        assert self.http is not None, "observability endpoint not configured"
        return self.http.address[1]

    async def _sample_loop(self) -> None:
        """Fold a registry snapshot into the timeline every interval and
        re-evaluate the SLO rules over it."""
        while True:
            await asyncio.sleep(self.config.timeline_interval)
            try:
                self.timeline.sample(collect_obs_summary(self.monitor))
                self.slo.evaluate()
            except asyncio.CancelledError:
                raise
            except Exception:
                # A failed sample must never kill the sampler (a sharded
                # monitor mid-rescale can transiently refuse stats); the
                # failure stays visible as a counter.
                obs.counter(
                    "timeline.sample_errors", "timeline collection failures"
                ).inc()

    def request_drain(self) -> None:
        """Signal-handler entry: schedule a drain on the running loop."""
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.get_running_loop().create_task(self.drain())

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, notify, flush, checkpoint."""
        if not self.lifecycle.begin_drain():
            return
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        notice = encode_reply(
            {
                "ok": True,
                "notice": "draining",
                "t": self.bridge.timestamp,
                "accepted_batches": self.bridge.accepted_batches,
            }
        )
        for _, writer in list(self._sessions.values()):
            try:
                writer.write(notice.encode() + b"\n")
                await writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                continue
        if self.config.drain_grace > 0:
            # Hold with /readyz already 503 so load balancers deroute
            # before the writer stops taking work.
            await asyncio.sleep(self.config.drain_grace)
        # The queue is FIFO: everything admitted before the sentinel is
        # executed (and its reply future resolved) before the writer
        # task exits — no acked batch is lost.
        self._queue.put_nowait(None)
        if self._writer_task is not None:
            await self._writer_task
        if hasattr(self.monitor, "checkpoint") and getattr(
            self.monitor, "store", None
        ) is not None:
            try:
                self.monitor.checkpoint()
            except RuntimeError:
                pass  # already closed or mid-recovery: nothing to snapshot
        for _, writer in list(self._sessions.values()):
            try:
                writer.close()
            except RuntimeError:
                continue
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            try:
                await self._sampler_task
            except asyncio.CancelledError:
                pass  # the cancellation we just requested
        if self.http is not None:
            await self.http.stop()
        self.flight.close()
        self.lifecycle.mark_stopped()

    async def wait_stopped(self) -> None:
        """Block until a drain has fully stopped the server."""
        await self.lifecycle.wait_stopped()

    # -- admission ---------------------------------------------------------

    def _load(self) -> float:
        if self._load_probe is not None:
            return float(self._load_probe())
        if hasattr(self.monitor, "inbox_depths"):
            depths = self.monitor.inbox_depths()
            return float(max(depths.values(), default=0))
        return float(self._data_depth)

    def _retry_hint(self) -> float:
        return round(max(self._service_ema * (self._data_depth + 1), _MIN_RETRY), 4)

    def _reject(self, code: str, reason: str, error: str, retry: float) -> dict:
        self.counters[f"rejected_{reason}"] += 1
        obs.counter(
            "serve.rejected",
            "commands rejected at the edge",
            labels={"reason": reason},
        ).inc()
        self.flight.note("refusal", code=code, reason=reason)
        return {
            "ok": False,
            "code": code,
            "error": error,
            "retry_after": round(max(retry, _MIN_RETRY), 4),
        }

    def _admit(self, session: Session, bucket: TokenBucket, command: Command) -> dict | None:
        """Admission decision: ``None`` admits, else the rejection reply."""
        if not command.is_data:
            return None  # control plane bypasses admission
        if self.lifecycle.draining:
            return self._reject(
                "draining", "draining", "server is draining", _MIN_RETRY
            )
        retry = bucket.try_acquire()
        if retry > 0:
            return self._reject(
                "rate_limited", "rate", "per-session rate limit exceeded", retry
            )
        self.breaker.observe(self._load())
        self._breaker_gauge.set(self.breaker.state_code())
        retry = self.breaker.allow()
        if retry > 0:
            return self._reject(
                "overloaded", "breaker", "circuit breaker open", retry
            )
        if self._data_depth >= self.config.admission_capacity:
            if self.config.admission_policy == "reject" or not self._sheddable:
                return self._reject(
                    "overloaded", "queue", "admission queue full", self._retry_hint()
                )
            victim = self._sheddable.popleft()
            victim.shed = True
            self._data_depth -= 1
            self.counters["shed"] += 1
            self._shed.inc()
            self.flight.note(
                "shed",
                session=victim.session.session_id,
                verb=victim.command.verb,
            )
            if not victim.future.done():
                victim.future.set_result(
                    {
                        "ok": False,
                        "code": "shed",
                        "error": "shed by a newer command under overload",
                        "retry_after": self._retry_hint(),
                    }
                )
        self.counters["admitted"] += 1
        self._admitted.inc()
        return None

    # -- the writer task ---------------------------------------------------

    async def _writer_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is None:
                break
            if item.shed:
                continue
            if item.is_data:
                self._data_depth -= 1
                if self._sheddable and self._sheddable[0] is item:
                    self._sheddable.popleft()
                self._depth_gauge.set(self._data_depth)
            started = loop.time()
            try:
                reply = self.bridge.execute(item.session, item.command)
            except ProtocolError as exc:
                reply = {"ok": False, "code": "bad_request", "error": str(exc)}
            except Exception as exc:
                # The writer must survive any single command: the client
                # gets a structured error and the failure is visible in
                # serve.rejected{reason=internal}.
                reply = {
                    "ok": False,
                    "code": "internal",
                    "error": f"{type(exc).__name__}: {exc}",
                }
                obs.counter(
                    "serve.rejected",
                    "commands rejected at the edge",
                    labels={"reason": "internal"},
                ).inc()
            if item.is_data:
                elapsed = max(loop.time() - started, 1e-6)
                self._service_ema = 0.8 * self._service_ema + 0.2 * elapsed
            if isinstance(reply, dict) and "dlq_id" in reply:
                self.flight.note(
                    "dead_letter",
                    dlq_id=reply["dlq_id"],
                    code=reply.get("code"),
                    verb=item.command.verb,
                )
            if not item.future.done():
                item.future.set_result(reply)

    # -- per-connection handler --------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = Session(self._next_session)
        self._next_session += 1
        bucket = TokenBucket(self.config.rate, self.config.burst)
        self._sessions[session.session_id] = (session, writer)
        self._sessions_gauge.set(len(self._sessions))
        loop = asyncio.get_running_loop()

        async def send(reply: dict) -> None:
            writer.write(encode_reply(reply).encode() + b"\n")
            await writer.drain()

        try:
            await send(
                {
                    "ok": True,
                    "notice": "hello",
                    "session": session.session_id,
                    "protocol": 1,
                }
            )
            while not self.lifecycle.stopped:
                line = await reader.readline()
                if not line:
                    break
                try:
                    command = parse_json_line(line.decode())
                except (ProtocolError, UnicodeDecodeError) as exc:
                    await send(
                        {"ok": False, "code": "bad_request", "error": str(exc)}
                    )
                    continue
                if command is None:
                    continue
                if isinstance(command, Quit):
                    await send({"ok": True, "cmd": command.verb})
                    break
                rejection = self._admit(session, bucket, command)
                if rejection is not None:
                    await send(rejection)
                    continue
                item = _WorkItem(
                    session, command, loop.create_future(), command.is_data
                )
                if item.is_data:
                    self._data_depth += 1
                    self._sheddable.append(item)
                    self._depth_gauge.set(self._data_depth)
                self._queue.put_nowait(item)
                reply = await item.future
                await send(reply)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client vanished mid-reply: the session just ends
        finally:
            session.closed = True
            self._sessions.pop(session.session_id, None)
            self._sessions_gauge.set(len(self._sessions))
            try:
                writer.close()
            except RuntimeError:
                pass  # loop already closing underneath us
    # -- stats -------------------------------------------------------------

    def _edge_stats(self) -> dict[str, Any]:
        return {
            "sessions": len(self._sessions),
            "queue_depth": self._data_depth,
            "breaker": self.breaker.state,
            "policy": self.config.admission_policy,
            **self.counters,
        }

    def serve_stats(self) -> dict[str, Any]:
        """The ``serve`` section of the ``stats`` reply."""
        return self.bridge.serve_stats()


def run_server(
    monitor: Any,
    config: ServeConfig,
    dlq: DeadLetterQueue | None = None,
    emit: Callable[[dict[str, Any]], None] | None = None,
    install_signals: bool = True,
    ready: Callable[[ReproServer], object] | None = None,
) -> dict[str, Any]:
    """Run a server until drained; returns its final edge stats.

    This is the synchronous entry the CLI calls — ``asyncio`` stays
    confined to :mod:`repro.serve` (rule RP017).  ``emit`` receives the
    ``listening`` notice (default: nothing); ``ready`` is a test hook
    called with the live server once the port is bound.
    """

    async def _amain() -> dict[str, Any]:
        server = ReproServer(monitor, config, dlq=dlq)
        await server.start()
        if install_signals:
            install_signal_handlers(
                asyncio.get_running_loop(), server.request_drain
            )
        if emit is not None:
            notice = {
                "ok": True,
                "notice": "listening",
                "host": config.host,
                "port": server.port,
            }
            if server.http is not None:
                notice["http_host"], notice["http_port"] = server.http.address
            emit(notice)
        if ready is not None:
            ready(server)
        await server.wait_stopped()
        return server._edge_stats()

    return asyncio.run(_amain())


async def _roundtrip(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    command: dict[str, Any],
) -> dict[str, Any]:
    import json

    writer.write(encode_reply(command).encode() + b"\n")
    await writer.drain()
    line = await reader.readline()
    if not line:
        raise ConnectionError("server closed the connection mid-replay")
    reply = json.loads(line)
    assert isinstance(reply, dict)
    return reply


async def replay_dead_letters_async(
    dlq: DeadLetterQueue, host: str, port: int
) -> list[int]:
    """Async flavor of :func:`replay_dead_letters` for callers already
    inside the serve event loop (tests, embedded tooling)."""
    reader, writer = await asyncio.open_connection(host, port)
    replayed: list[int] = []
    try:
        await reader.readline()  # hello notice
        for entry in dlq.entries(include_replayed=False):
            # The stream may already exist server-side; an error reply
            # here is fine (the batch commands carry the real payload).
            await _roundtrip(
                reader, writer, {"cmd": "stream", "stream": entry.stream}
            )
            batch = await _roundtrip(
                reader,
                writer,
                {
                    "cmd": "batch",
                    "stream": entry.stream,
                    "changes": entry.changes,
                },
            )
            if not batch.get("ok"):
                continue
            commit = await _roundtrip(reader, writer, {"cmd": "commit"})
            if commit.get("ok"):
                dlq.mark_replayed(entry.dlq_id)
                replayed.append(entry.dlq_id)
        await _roundtrip(reader, writer, {"cmd": "quit"})
    finally:
        writer.close()
    return replayed


def replay_dead_letters(dlq: DeadLetterQueue, host: str, port: int) -> list[int]:
    """Re-apply un-replayed dead letters against a live server.

    Each entry becomes ``stream`` + ``batch`` + ``commit``; entries whose
    commit succeeds are marked replayed in the journal.  Returns the ids
    replayed.  Synchronous wrapper so the CLI never imports asyncio.
    """
    return asyncio.run(replay_dead_letters_async(dlq, host, port))
