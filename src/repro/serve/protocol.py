"""Wire protocol of the serving layer: newline-delimited commands in,
one JSON object out per command.

Two front-ends share this module:

* the **text** protocol — the historical whitespace line format of
  ``repro serve`` on stdin (``ins a 1 2 - X Y``, ``tick`` ...), parsed
  by :func:`parse_text_line`;
* the **JSON** protocol — what TCP clients speak, parsed by
  :func:`parse_json_line` (``{"cmd": "ins", "stream": "a", ...}``).

Both produce the same small command dataclasses, so the session
executor (:mod:`repro.serve.session`) is front-end agnostic.  Malformed
input raises :class:`ProtocolError`, which callers turn into a
structured ``{"ok": false, "error": ...}`` reply — a bad line must
never surface as a raw ``IndexError`` traceback.

The text format reads ids as strings (matching :mod:`repro.graph.io`,
whose files yield string vertex ids); the JSON format preserves native
JSON types, so integer vertex ids and timestamps round-trip typed.
:func:`event_to_dict` is the one sanctioned event serializer — it keeps
``stream``/``query`` ids typed instead of funnelling them through a
``json.dumps(default=str)`` catch-all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..graph.operations import DELETE, INSERT, EdgeChange

__all__ = [
    "ProtocolError",
    "Command",
    "AddStream",
    "AddQuery",
    "DelQuery",
    "Edit",
    "BatchEdit",
    "Commit",
    "Poll",
    "Matches",
    "Stats",
    "Checkpoint",
    "Quit",
    "parse_text_line",
    "parse_json_line",
    "change_to_dict",
    "change_from_dict",
    "event_to_dict",
    "to_jsonable",
    "encode_reply",
]


class ProtocolError(ValueError):
    """A syntactically or semantically malformed protocol line."""


@dataclass(frozen=True)
class Command:
    """Base of all parsed protocol commands."""

    #: The verb as the client spelled it (``tick`` vs ``commit``); replies
    #: echo it back so clients can correlate without tracking aliases.
    verb: str = field(default="", kw_only=True)

    @property
    def is_data(self) -> bool:
        """Does this command feed data into the monitor (and therefore go
        through admission control), as opposed to reading state?"""
        return False


@dataclass(frozen=True)
class AddStream(Command):
    stream_id: Any
    graph_file: str | None = None
    graph_key: str | None = None

    @property
    def is_data(self) -> bool:
        return True


@dataclass(frozen=True)
class AddQuery(Command):
    """Register a standing query live (verb ``addq``).

    The pattern comes from a graph-set file on the server
    (``graph_file`` + optional ``graph_key``) or inline as
    ``vertices``/``edges`` tuples (JSON protocol only).  Semantic
    problems — unreadable file, missing key, malformed pattern,
    duplicate id — are *poison queries*: the executor dead-letters them
    (``kind: "query"``) instead of crashing the session.
    """

    query_id: Any
    graph_file: str | None = None
    graph_key: str | None = None
    vertices: tuple = ()
    edges: tuple = ()

    @property
    def is_data(self) -> bool:
        return True


@dataclass(frozen=True)
class DelQuery(Command):
    """Deregister a standing query live (verb ``delq``)."""

    query_id: Any

    @property
    def is_data(self) -> bool:
        return True


@dataclass(frozen=True)
class Edit(Command):
    """Stage one edge change on a session (applied at the next commit)."""

    stream_id: Any
    change: EdgeChange

    @property
    def is_data(self) -> bool:
        return True


@dataclass(frozen=True)
class BatchEdit(Command):
    """Stage a whole batch of changes in one command (JSON protocol only)."""

    stream_id: Any
    changes: tuple[EdgeChange, ...]

    @property
    def is_data(self) -> bool:
        return True


@dataclass(frozen=True)
class Commit(Command):
    """Apply every staged batch at the next timestamp (text verb: ``tick``)."""

    @property
    def is_data(self) -> bool:
        return True


@dataclass(frozen=True)
class Poll(Command):
    pass


@dataclass(frozen=True)
class Matches(Command):
    pass


@dataclass(frozen=True)
class Stats(Command):
    pass


@dataclass(frozen=True)
class Checkpoint(Command):
    pass


@dataclass(frozen=True)
class Quit(Command):
    pass


_TEXT_VERBS = frozenset(
    {
        "stream",
        "addq",
        "delq",
        "ins",
        "del",
        "tick",
        "commit",
        "poll",
        "events",
        "matches",
        "stats",
        "checkpoint",
        "quit",
    }
)


def _parse_edit(verb: str, rest: Sequence[str]) -> Edit:
    if len(rest) < 3:
        raise ProtocolError(
            f"{verb!r} needs at least <stream> <u> <v> (got {len(rest)} args)"
        )
    stream_id, u, v = rest[0], rest[1], rest[2]
    if verb == "ins":
        if len(rest) > 6:
            raise ProtocolError(
                "'ins' takes at most <stream> <u> <v> [elabel [ulabel vlabel]]"
            )
        edge_label = rest[3] if len(rest) > 3 else "-"
        u_label = rest[4] if len(rest) > 4 else None
        v_label = rest[5] if len(rest) > 5 else None
        try:
            change = EdgeChange.insert(u, v, edge_label, u_label, v_label)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
    else:
        if len(rest) > 3:
            raise ProtocolError("'del' takes exactly <stream> <u> <v>")
        try:
            change = EdgeChange.delete(u, v)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
    return Edit(stream_id, change, verb=verb)


def parse_text_line(line: str) -> Command | None:
    """Parse one line of the text protocol.

    Returns ``None`` for blank lines and ``#`` comments.  Raises
    :class:`ProtocolError` for unknown verbs and malformed argument
    lists (the historical code let those escape as ``IndexError``).
    """
    words = line.split()
    if not words or words[0].startswith("#"):
        return None
    verb, rest = words[0], words[1:]
    if verb not in _TEXT_VERBS:
        raise ProtocolError(f"unknown command {verb!r}")
    if verb == "stream":
        if not rest:
            raise ProtocolError("'stream' needs <id> [graphset-file [key]]")
        if len(rest) > 3:
            raise ProtocolError("'stream' takes at most <id> <graphset-file> <key>")
        return AddStream(
            rest[0],
            rest[1] if len(rest) > 1 else None,
            rest[2] if len(rest) > 2 else None,
            verb=verb,
        )
    if verb == "addq":
        if not rest or len(rest) < 2:
            raise ProtocolError("'addq' needs <id> <graphset-file> [key]")
        if len(rest) > 3:
            raise ProtocolError("'addq' takes at most <id> <graphset-file> <key>")
        return AddQuery(
            rest[0],
            rest[1],
            rest[2] if len(rest) > 2 else None,
            verb=verb,
        )
    if verb == "delq":
        if len(rest) != 1:
            raise ProtocolError("'delq' takes exactly <id>")
        return DelQuery(rest[0], verb=verb)
    if verb in ("ins", "del"):
        return _parse_edit(verb, rest)
    if rest:
        raise ProtocolError(f"{verb!r} takes no arguments")
    if verb in ("tick", "commit"):
        return Commit(verb=verb)
    if verb in ("poll", "events"):
        return Poll(verb=verb)
    simple = {
        "matches": Matches,
        "stats": Stats,
        "checkpoint": Checkpoint,
        "quit": Quit,
    }
    return simple[verb](verb=verb)


def change_to_dict(change: EdgeChange) -> dict[str, Any]:
    """Loss-free JSON shape of one edge change (also the DLQ format)."""
    doc: dict[str, Any] = {"op": change.op, "u": change.u, "v": change.v}
    if change.op == INSERT:
        doc["edge_label"] = change.edge_label
        if change.u_label is not None:
            doc["u_label"] = change.u_label
        if change.v_label is not None:
            doc["v_label"] = change.v_label
    return doc


def change_from_dict(doc: Mapping[str, Any]) -> EdgeChange:
    """Parse one wire/DLQ change object back into an :class:`EdgeChange`."""
    if not isinstance(doc, Mapping):
        raise ProtocolError(f"change must be an object, got {type(doc).__name__}")
    op = doc.get("op")
    if op not in (INSERT, DELETE):
        raise ProtocolError(f"change op must be 'ins' or 'del', got {op!r}")
    if "u" not in doc or "v" not in doc:
        raise ProtocolError("change needs 'u' and 'v'")
    try:
        if op == INSERT:
            return EdgeChange.insert(
                doc["u"],
                doc["v"],
                doc.get("edge_label", "-"),
                doc.get("u_label"),
                doc.get("v_label"),
            )
        return EdgeChange.delete(doc["u"], doc["v"])
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc


def _require_stream(doc: Mapping[str, Any], verb: str) -> Any:
    if "stream" not in doc:
        raise ProtocolError(f"{verb!r} needs a 'stream' field")
    return doc["stream"]


def parse_json_line(line: str) -> Command | None:
    """Parse one line of the JSON protocol (``None`` for blank lines)."""
    if not line.strip():
        return None
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError("command must be a JSON object")
    verb = doc.get("cmd")
    if not isinstance(verb, str):
        raise ProtocolError("command object needs a string 'cmd' field")
    if verb == "stream":
        return AddStream(
            _require_stream(doc, verb),
            doc.get("graph_file"),
            doc.get("graph_key"),
            verb=verb,
        )
    if verb == "addq":
        if "query" not in doc:
            raise ProtocolError("'addq' needs a 'query' field")
        vertices = doc.get("vertices", [])
        edges = doc.get("edges", [])
        if not isinstance(vertices, list) or not isinstance(edges, list):
            raise ProtocolError("'addq' inline 'vertices'/'edges' must be lists")
        if not (doc.get("graph_file") or vertices or edges):
            raise ProtocolError(
                "'addq' needs a 'graph_file' or inline 'vertices'/'edges'"
            )
        try:
            # Shape only; pattern *content* problems are poison queries,
            # handled (dead-lettered) by the executor, not the parser.
            inline_vertices = tuple(tuple(item) for item in vertices)
            inline_edges = tuple(tuple(item) for item in edges)
        except TypeError as exc:
            raise ProtocolError(f"malformed inline pattern: {exc}") from exc
        return AddQuery(
            doc["query"],
            doc.get("graph_file"),
            doc.get("graph_key"),
            inline_vertices,
            inline_edges,
            verb=verb,
        )
    if verb == "delq":
        if "query" not in doc:
            raise ProtocolError("'delq' needs a 'query' field")
        return DelQuery(doc["query"], verb=verb)
    if verb in ("ins", "del"):
        change_doc = dict(doc)
        change_doc["op"] = verb
        return Edit(
            _require_stream(doc, verb), change_from_dict(change_doc), verb=verb
        )
    if verb == "batch":
        changes = doc.get("changes")
        if not isinstance(changes, list):
            raise ProtocolError("'batch' needs a 'changes' list")
        return BatchEdit(
            _require_stream(doc, verb),
            tuple(change_from_dict(c) for c in changes),
            verb=verb,
        )
    if verb in ("tick", "commit"):
        return Commit(verb=verb)
    if verb in ("poll", "events"):
        return Poll(verb=verb)
    simple = {
        "matches": Matches,
        "stats": Stats,
        "checkpoint": Checkpoint,
        "quit": Quit,
    }
    if verb in simple:
        return simple[verb](verb=verb)
    raise ProtocolError(f"unknown command {verb!r}")


def event_to_dict(event: Any, timestamp: int) -> dict[str, Any]:
    """Typed JSON shape of a :class:`~repro.core.monitor.MatchEvent`.

    Ids that are JSON-representable (str/int/float/bool) pass through
    unchanged so integer vertex/stream ids round-trip typed; anything
    exotic falls back to ``str`` explicitly rather than via a
    serializer-wide ``default=str``.
    """

    def _typed(value: Any) -> Any:
        if isinstance(value, (str, int, float, bool)) or value is None:
            return value
        return str(value)

    return {
        "kind": event.kind,
        "stream": _typed(event.stream_id),
        "query": _typed(event.query_id),
        "t": timestamp,
    }


def to_jsonable(value: Any) -> Any:
    """Recursively coerce a reply value to JSON-native types.

    JSON-native scalars pass through untouched (so int ids and
    timestamps stay typed — the old ``json.dumps(..., default=str)``
    catch-all stringified them wholesale); mappings and sequences are
    rebuilt; only genuinely exotic leaves (e.g. ``Path`` objects inside
    checkpoint notes) fall back to ``str``.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=str) if isinstance(value, (set, frozenset)) else value
        return [to_jsonable(v) for v in items]
    return str(value)


def encode_reply(reply: Mapping[str, Any]) -> str:
    """One reply object as a compact JSON line (no trailing newline).

    Events must already be serialized via :func:`event_to_dict` (the
    explicit typed path); :func:`to_jsonable` only guards the long tail
    of stats/checkpoint blobs."""
    return json.dumps(to_jsonable(reply), sort_keys=True)
