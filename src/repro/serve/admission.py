"""Admission control primitives: token buckets and a circuit breaker.

Both are plain synchronous objects with an injectable monotonic clock so
tests drive them deterministically.  Policy decisions return a
``retry_after`` hint in seconds (``0.0`` means "admitted") which the
server copies verbatim into structured ``overloaded`` replies — the
network edge never blocks a client silently.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["TokenBucket", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

Clock = Callable[[], float]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, up to ``burst`` banked.

    ``rate <= 0`` disables limiting (every acquire succeeds).
    """

    def __init__(
        self, rate: float, burst: float = 1.0, clock: Clock = time.monotonic
    ) -> None:
        if rate > 0 and burst <= 0:
            raise ValueError("burst must be positive when rate limiting is on")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available.

        Returns ``0.0`` on success, otherwise the seconds until enough
        tokens will have accrued (the ``retry_after`` hint).
        """
        if self.rate <= 0:
            return 0.0
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate


CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Load-keyed breaker guarding the monitor behind the admission queue.

    ``observe(load)`` feeds a load sample (for the sharded runtime: the
    deepest worker inbox).  ``trip_after`` consecutive samples at or
    above ``threshold`` open the circuit; while open, ``allow`` returns
    the remaining cooldown as ``retry_after``.  After the cooldown the
    breaker goes half-open: requests are admitted as trials, and the
    next sample either closes it (load recovered) or re-opens it for a
    fresh cooldown.  ``threshold <= 0`` disables the breaker.
    """

    def __init__(
        self,
        threshold: float,
        cooldown: float = 1.0,
        trip_after: int = 3,
        clock: Clock = time.monotonic,
    ) -> None:
        if trip_after < 1:
            raise ValueError("trip_after must be >= 1")
        self.threshold = float(threshold)
        self.cooldown = float(cooldown)
        self.trip_after = int(trip_after)
        self._clock = clock
        self._state = CLOSED
        self._hot_samples = 0
        self._opened_at = 0.0
        self.trips = 0

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    @property
    def state(self) -> str:
        return self._state

    def state_code(self) -> int:
        """0 = closed, 1 = half-open, 2 = open (the gauge encoding)."""
        return _STATE_CODES[self._state]

    def _open(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._hot_samples = 0
        self.trips += 1

    def observe(self, load: float) -> None:
        """Feed one load sample; may trip, re-open, or close the circuit."""
        if not self.enabled:
            return
        if load >= self.threshold:
            if self._state == HALF_OPEN:
                self._open()
                return
            self._hot_samples += 1
            if self._state == CLOSED and self._hot_samples >= self.trip_after:
                self._open()
        else:
            self._hot_samples = 0
            if self._state == HALF_OPEN:
                self._state = CLOSED

    def allow(self) -> float:
        """Admit one request: ``0.0`` = yes, else ``retry_after`` seconds."""
        if not self.enabled or self._state == CLOSED:
            return 0.0
        if self._state == OPEN:
            remaining = self._opened_at + self.cooldown - self._clock()
            if remaining > 0:
                return max(remaining, 1e-4)
            self._state = HALF_OPEN
        return 0.0  # half-open: admit trial traffic
