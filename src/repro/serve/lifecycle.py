"""Server lifecycle: state machine + POSIX signal wiring.

The states are strictly ordered (``starting -> serving -> draining ->
stopped``); transitions are idempotent so a second SIGTERM during a
drain is harmless.  :func:`install_signal_handlers` attaches a drain
callback to SIGTERM/SIGINT on the running loop and degrades gracefully
on platforms without ``loop.add_signal_handler`` support.
"""

from __future__ import annotations

import asyncio
import signal
from typing import Callable, Iterable

__all__ = [
    "STARTING",
    "SERVING",
    "DRAINING",
    "STOPPED",
    "Lifecycle",
    "install_signal_handlers",
    "remove_signal_handlers",
]

STARTING = "starting"
SERVING = "serving"
DRAINING = "draining"
STOPPED = "stopped"

_ORDER = {STARTING: 0, SERVING: 1, DRAINING: 2, STOPPED: 3}


class Lifecycle:
    """Monotone server state with an awaitable terminal event."""

    def __init__(self) -> None:
        self._state = STARTING
        self._stopped = asyncio.Event()

    @property
    def state(self) -> str:
        return self._state

    @property
    def draining(self) -> bool:
        return _ORDER[self._state] >= _ORDER[DRAINING]

    @property
    def stopped(self) -> bool:
        return self._state == STOPPED

    def _advance(self, target: str) -> bool:
        """Move forward to ``target``; returns False if already past it."""
        if _ORDER[self._state] >= _ORDER[target]:
            return False
        self._state = target
        return True

    def mark_serving(self) -> bool:
        """Enter ``serving``; False if the server is already past it."""
        return self._advance(SERVING)

    def begin_drain(self) -> bool:
        """Enter ``draining``; False (idempotent) on a repeat signal."""
        return self._advance(DRAINING)

    def mark_stopped(self) -> bool:
        """Enter the terminal ``stopped`` state and wake any waiters."""
        advanced = self._advance(STOPPED)
        if advanced:
            self._stopped.set()
        return advanced

    async def wait_stopped(self) -> None:
        """Block until :meth:`mark_stopped` has run."""
        await self._stopped.wait()


def install_signal_handlers(
    loop: asyncio.AbstractEventLoop,
    drain: Callable[[], object],
    signals: Iterable[signal.Signals] = (signal.SIGTERM, signal.SIGINT),
) -> list[signal.Signals]:
    """Route ``signals`` to the drain callback; returns those installed.

    Platforms without loop-level signal support (e.g. Windows event
    loops) simply get no handlers — callers still stop via ``quit`` or
    :meth:`ReproServer.drain`.
    """
    installed: list[signal.Signals] = []
    for sig in signals:
        try:
            loop.add_signal_handler(sig, drain)
        except (NotImplementedError, RuntimeError, ValueError):
            continue
        installed.append(sig)
    return installed


def remove_signal_handlers(
    loop: asyncio.AbstractEventLoop, installed: Iterable[signal.Signals]
) -> None:
    """Detach the handlers :func:`install_signal_handlers` installed."""
    for sig in installed:
        try:
            loop.remove_signal_handler(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            continue
