"""Dead-letter journal for poison batches.

A *poison batch* is a staged change set the monitor refused to apply —
a :class:`~repro.graph.labeled_graph.GraphError` (e.g. duplicate edge),
a value/key error from malformed content that parsed syntactically, or
a repeated worker crash.  Instead of retrying it forever (the failure
mode of the old stdin loop, which kept the batch staged) or silently
dropping it, the session executor records it here and clears the stage,
so one bad client batch can never wedge a stream.

The journal is an append-only JSONL file (``dlq.jsonl`` under the
configured directory): one ``{"dlq_id": ...}`` record per dead letter,
plus ``{"replayed": id}`` marker lines appended when ``repro dlq
replay`` successfully re-applies an entry.  Append-only keeps writes
crash-safe; readers fold markers into the entries.  With no directory
configured the queue is memory-only (still inspectable over the
``stats`` command, lost on shutdown).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable

__all__ = ["DeadLetter", "DeadLetterQueue"]


@dataclass
class DeadLetter:
    """One refused batch, with everything needed to replay it."""

    dlq_id: int
    created: float
    session: int
    stream: Any
    changes: list[dict[str, Any]] = field(default_factory=list)
    error: str = ""
    kind: str = "apply"
    trace_id: str | None = None
    replayed: bool = False

    def to_dict(self) -> dict[str, Any]:
        """The journal-line shape of this entry."""
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "DeadLetter":
        known = {name for name in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in doc.items() if k in known})


class DeadLetterQueue:
    """Append-only journal of dead letters, optionally file-backed."""

    FILENAME = "dlq.jsonl"

    def __init__(
        self, directory: str | Path | None = None, clock: Callable[[], float] = time.time
    ) -> None:
        self._clock = clock
        self._entries: dict[int, DeadLetter] = {}
        self._next_id = 1
        self.path: Path | None = None
        if directory is not None:
            root = Path(directory)
            root.mkdir(parents=True, exist_ok=True)
            self.path = root / self.FILENAME
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        if not self.path.exists():
            return
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            if "replayed_id" in doc:
                entry = self._entries.get(doc["replayed_id"])
                if entry is not None:
                    entry.replayed = True
                continue
            entry = DeadLetter.from_dict(doc)
            self._entries[entry.dlq_id] = entry
            self._next_id = max(self._next_id, entry.dlq_id + 1)

    def _append(self, doc: dict[str, Any]) -> None:
        if self.path is None:
            return
        with self.path.open("a") as handle:
            handle.write(json.dumps(doc, sort_keys=True) + "\n")

    def record(
        self,
        *,
        session: int,
        stream: Any,
        changes: list[dict[str, Any]],
        error: str,
        kind: str = "apply",
        trace_id: str | None = None,
    ) -> int:
        """Journal one dead letter; returns its id."""
        entry = DeadLetter(
            dlq_id=self._next_id,
            created=self._clock(),
            session=session,
            stream=stream,
            changes=list(changes),
            error=error,
            kind=kind,
            trace_id=trace_id,
        )
        self._next_id += 1
        self._entries[entry.dlq_id] = entry
        self._append(entry.to_dict())
        return entry.dlq_id

    def mark_replayed(self, dlq_id: int) -> None:
        """Append a replay marker for ``dlq_id`` (raises KeyError if unknown)."""
        entry = self._entries.get(dlq_id)
        if entry is None:
            raise KeyError(f"no dead letter with id {dlq_id}")
        entry.replayed = True
        self._append({"replayed_id": dlq_id})

    def get(self, dlq_id: int) -> DeadLetter | None:
        """The entry with this id, or None."""
        return self._entries.get(dlq_id)

    def entries(self, include_replayed: bool = True) -> list[DeadLetter]:
        """Entries in id order, optionally hiding already-replayed ones."""
        entries = sorted(self._entries.values(), key=lambda e: e.dlq_id)
        if include_replayed:
            return entries
        return [e for e in entries if not e.replayed]

    def __len__(self) -> int:
        return len(self._entries)
