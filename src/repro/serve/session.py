"""Per-client sessions and the single-writer monitor bridge.

A :class:`Session` holds everything client-scoped: staged (uncommitted)
batches per stream, the last match set the client has seen (so each
session gets its *own* appeared/vanished deltas via
:func:`repro.core.monitor.diff_polls`), and request counters.

A :class:`MonitorBridge` owns the monitor.  Every command — from every
session, and from the stdin adapter — funnels through
:meth:`MonitorBridge.execute`, which is the **only** code that touches
the monitor.  The asyncio server enforces the single-writer discipline
by calling it from one writer task; the stdin loop is trivially single
writer.  Commits open an ``serve.commit`` span, which is what mints the
trace id (rule RP010: only :mod:`repro.obs.trace` mints) and lets the
coordinator stamp it onto runtime command envelopes — the reply carries
the id back to the client so one request is followable end-to-end in
``repro trace``.

Poison batches (:class:`~repro.graph.labeled_graph.GraphError`,
value/key errors, worker crashes) are journaled to the dead-letter
queue and *cleared from the stage*: the historical stdin loop kept the
failing batch staged, so every subsequent tick re-failed it forever.
Healthy streams in the same commit still apply.

Poison detection must be *synchronous*, but the sharded runtime's
``apply`` is not: it enqueues the batch and the graph error only
surfaces at the next poll — as a :class:`WorkerCrashed` whose journal
replay re-runs the same poison command, crash-looping the worker.  The
bridge therefore keeps a **shadow** :class:`LabeledGraph` per stream
and replays each batch against it (exact same mutation sequence the
worker runs, all-or-nothing via undo records) *before* submitting, so
graph-level poison is refused up front in both the in-process and the
sharded configurations and the monitor never sees it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from .. import obs
from ..core.monitor import diff_polls
from ..graph.io import read_graph_set
from ..graph.labeled_graph import GraphError, LabeledGraph
from ..graph.operations import (
    INSERT,
    EdgeChange,
    GraphChangeOperation,
    apply_change,
)
from . import protocol
from .dlq import DeadLetterQueue
from .protocol import (
    AddQuery,
    AddStream,
    BatchEdit,
    Checkpoint,
    Command,
    Commit,
    DelQuery,
    Edit,
    Matches,
    Poll,
    ProtocolError,
    Quit,
    Stats,
)

__all__ = [
    "Session",
    "MonitorBridge",
    "apply_batch_validated",
    "collect_obs_summary",
    "serve_lines",
]

#: Exceptions that make a batch *poison* (journaled, never retried).
#: WorkerCrashed is appended lazily to keep this import-light for the
#: in-process monitor path.
POISON_ERRORS: tuple[type[BaseException], ...] = (GraphError, ValueError, KeyError)


def _runtime_crash_errors() -> tuple[type[BaseException], ...]:
    from ..runtime.coordinator import WorkerCrashed

    return (WorkerCrashed,)


def apply_batch_validated(shadow: LabeledGraph, batch: GraphChangeOperation) -> None:
    """Apply ``batch`` to the shadow graph, all or nothing.

    Replays the exact mutation sequence the monitor runs (deletions
    first, then insertions — the paper's order) so graph-level poison
    (duplicate insert, missing delete, unlabeled new vertex) raises
    *here*, synchronously, before the batch is ever submitted.  On
    failure every already-applied change is undone in reverse, leaving
    the shadow identical to the monitor's state.
    """
    undo: list[tuple[EdgeChange, bool, Any, dict[Any, Any]]] = []
    try:
        for change in batch.sequentialized():
            had_edge = shadow.has_edge(change.u, change.v)
            prior_label = (
                shadow.edge_label(change.u, change.v) if had_edge else None
            )
            labels = {
                w: shadow.vertex_label(w)
                for w in (change.u, change.v)
                if shadow.has_vertex(w)
            }
            undo.append((change, had_edge, prior_label, labels))
            apply_change(shadow, change)
    except POISON_ERRORS:
        for change, had_edge, prior_label, labels in reversed(undo):
            _undo_change(shadow, change, had_edge, prior_label, labels)
        raise


def _undo_change(
    shadow: LabeledGraph,
    change: EdgeChange,
    had_edge: bool,
    prior_label: Any,
    labels: dict[Any, Any],
) -> None:
    """Revert one (possibly partially applied) change on the shadow.

    Guarded by pre-change facts rather than assumptions about how far
    the change got: an insert that failed after creating one endpoint
    still rolls back cleanly.
    """
    if change.op == INSERT:
        if not had_edge and shadow.has_edge(change.u, change.v):
            shadow.remove_edge(change.u, change.v)
        for vertex in (change.u, change.v):
            if (
                vertex not in labels  # created by this change, if at all
                and shadow.has_vertex(vertex)
                and shadow.degree(vertex) == 0
            ):
                shadow.remove_vertex(vertex)
    else:
        for vertex in (change.u, change.v):
            if vertex in labels and not shadow.has_vertex(vertex):
                shadow.add_vertex(vertex, labels[vertex])
        if had_edge and not shadow.has_edge(change.u, change.v):
            shadow.add_edge(change.u, change.v, prior_label)


class Session:
    """Client-scoped state; owns no monitor access of its own."""

    def __init__(self, session_id: int, label: str = "") -> None:
        self.session_id = session_id
        self.label = label or f"session-{session_id}"
        self.pending: dict[Any, list[EdgeChange]] = {}
        self.last_poll: set = set()
        self.commands = 0
        self.commits = 0
        self.closed = False

    def stage(self, stream_id: Any, changes: Iterable[EdgeChange]) -> int:
        """Stage changes for the next commit; returns the pending count."""
        staged = self.pending.setdefault(stream_id, [])
        staged.extend(changes)
        return len(staged)

    @property
    def staged_changes(self) -> int:
        return sum(len(changes) for changes in self.pending.values())


class MonitorBridge:
    """Single-writer executor translating commands into monitor calls."""

    def __init__(
        self,
        monitor: Any,
        dlq: DeadLetterQueue | None = None,
        extra_stats: Callable[[], Mapping[str, Any]] | None = None,
    ) -> None:
        self.monitor = monitor
        self.dlq = dlq if dlq is not None else DeadLetterQueue()
        self._extra_stats = extra_stats
        self.timestamp = 0
        self.accepted_batches = 0
        self.dead_letters = 0
        self._commits = obs.counter("serve.commits", "commits executed")
        self._batches = obs.counter(
            "serve.batches_applied", "stream batches applied by commits"
        )
        self._dlq_counter = obs.counter(
            "serve.dlq", "poison batches journaled to the dead-letter queue"
        )
        self._commands = obs.counter("serve.commands", "protocol commands executed")
        self._registrations = obs.counter(
            "serve.query_registrations", "live query registrations via addq"
        )
        self._deregistrations = obs.counter(
            "serve.query_deregistrations", "live query retirements via delq"
        )
        self._poison: tuple[type[BaseException], ...] = POISON_ERRORS
        if hasattr(monitor, "inbox_depths"):  # sharded runtime
            self._poison = POISON_ERRORS + _runtime_crash_errors()
        #: Per-stream replica of the monitor's graph, used to refuse
        #: poison batches before they are submitted (module docstring).
        self._shadow: dict[Any, LabeledGraph] = {}

    # -- command execution -------------------------------------------------

    def execute(self, session: Session, command: Command) -> dict[str, Any]:
        """Run one parsed command; always returns a JSON-typed reply."""
        session.commands += 1
        self._commands.inc()
        if isinstance(command, AddStream):
            return self._add_stream(session, command)
        if isinstance(command, AddQuery):
            return self._add_query(session, command)
        if isinstance(command, DelQuery):
            return self._del_query(session, command)
        if isinstance(command, Edit):
            pending = session.stage(command.stream_id, [command.change])
            return {
                "ok": True,
                "cmd": command.verb,
                "stream": command.stream_id,
                "pending": pending,
            }
        if isinstance(command, BatchEdit):
            pending = session.stage(command.stream_id, command.changes)
            return {
                "ok": True,
                "cmd": command.verb,
                "stream": command.stream_id,
                "staged": len(command.changes),
                "pending": pending,
            }
        if isinstance(command, Commit):
            return self._commit(session, command)
        if isinstance(command, Poll):
            return {
                "ok": True,
                "cmd": command.verb,
                "t": self.timestamp,
                "events": self._session_events(session),
            }
        if isinstance(command, Matches):
            pairs = sorted(self.monitor.matches(), key=lambda p: (str(p[0]), str(p[1])))
            return {
                "ok": True,
                "cmd": command.verb,
                "matches": [[s, q] for s, q in pairs],
            }
        if isinstance(command, Stats):
            stats = dict(self.monitor.stats())
            stats["serve"] = self.serve_stats()
            return {"ok": True, "cmd": command.verb, "stats": stats}
        if isinstance(command, Checkpoint):
            return self._checkpoint(command)
        if isinstance(command, Quit):
            return {"ok": True, "cmd": command.verb}
        raise ProtocolError(f"unhandled command {type(command).__name__}")

    def _add_stream(self, session: Session, command: AddStream) -> dict[str, Any]:
        if command.graph_file is not None:
            graph_set = dict(read_graph_set(command.graph_file))
            key = (
                command.graph_key
                if command.graph_key is not None
                else next(iter(graph_set))
            )
            if key not in graph_set:
                raise ProtocolError(
                    f"graph {key!r} not in {command.graph_file}"
                )
            initial = graph_set[key]
        else:
            initial = LabeledGraph()
        try:
            self.monitor.add_stream(command.stream_id, initial)
        except (ValueError, KeyError) as exc:
            return {
                "ok": False,
                "cmd": command.verb,
                "stream": command.stream_id,
                "error": f"{type(exc).__name__}: {exc}",
            }
        self._shadow[command.stream_id] = initial.copy()
        session.pending.setdefault(command.stream_id, [])
        return {"ok": True, "cmd": command.verb, "stream": command.stream_id}

    def _load_pattern(self, command: AddQuery) -> LabeledGraph:
        """Build the query pattern *bridge-side*, so malformed patterns
        are poison here and never reach a shard worker (where the crash
        loop of satellite lore would begin)."""
        if command.graph_file is not None:
            graph_set = dict(read_graph_set(command.graph_file))
            if not graph_set:
                raise ValueError(f"empty graph set {command.graph_file}")
            key = (
                command.graph_key
                if command.graph_key is not None
                else next(iter(graph_set))
            )
            if key not in graph_set:
                raise KeyError(f"graph {key!r} not in {command.graph_file}")
            return graph_set[key]
        pattern = LabeledGraph()
        for vertex, label in command.vertices:
            pattern.add_vertex(vertex, label)
        for u, v, label in command.edges:
            pattern.add_edge(u, v, label)
        if pattern.num_vertices == 0:
            raise ValueError("empty query pattern")
        return pattern

    def _add_query(self, session: Session, command: AddQuery) -> dict[str, Any]:
        with obs.span(
            "serve.register_query",
            session=session.label,
            query=str(command.query_id),
        ):
            ctx = obs.current_context()
            trace_id = ctx.trace_id if ctx is not None else None
            try:
                pattern = self._load_pattern(command)
                self.monitor.register_query(command.query_id, pattern)
            except self._poison + (OSError, TypeError) as exc:
                dlq_id = self.dlq.record(
                    session=session.session_id,
                    stream=None,
                    changes=[{"cmd": command.verb, "query": command.query_id}],
                    error=f"{type(exc).__name__}: {exc}",
                    kind="query",
                    trace_id=trace_id,
                )
                self.dead_letters += 1
                self._dlq_counter.inc()
                reply: dict[str, Any] = {
                    "ok": False,
                    "cmd": command.verb,
                    "query": command.query_id,
                    "error": f"{type(exc).__name__}: {exc}",
                    "dlq_id": dlq_id,
                }
            else:
                self._registrations.inc()
                reply = {
                    "ok": True,
                    "cmd": command.verb,
                    "query": command.query_id,
                    "queries": len(self.monitor.query_ids()),
                }
        if trace_id is not None:
            reply["trace"] = trace_id
        return reply

    def _del_query(self, session: Session, command: DelQuery) -> dict[str, Any]:
        with obs.span(
            "serve.deregister_query",
            session=session.label,
            query=str(command.query_id),
        ):
            ctx = obs.current_context()
            trace_id = ctx.trace_id if ctx is not None else None
            try:
                self.monitor.deregister_query(command.query_id)
            except self._poison as exc:
                # Nothing to replay — an unknown id is refused, not
                # dead-lettered.
                reply: dict[str, Any] = {
                    "ok": False,
                    "cmd": command.verb,
                    "query": command.query_id,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            else:
                self._deregistrations.inc()
                reply = {
                    "ok": True,
                    "cmd": command.verb,
                    "query": command.query_id,
                    "queries": len(self.monitor.query_ids()),
                }
        if trace_id is not None:
            reply["trace"] = trace_id
        return reply

    def _commit(self, session: Session, command: Commit) -> dict[str, Any]:
        self.timestamp += 1
        session.commits += 1
        applied = 0
        errors: list[dict[str, Any]] = []
        with obs.span(
            "serve.commit", session=session.label, t=self.timestamp
        ):
            ctx = obs.current_context()
            trace_id = ctx.trace_id if ctx is not None else None
            for stream_id in list(session.pending):
                changes = session.pending[stream_id]
                if not changes:
                    continue
                batch = GraphChangeOperation(changes)
                try:
                    # The validator raises (rolling itself back) on
                    # graph-level poison; the monitor never sees it.
                    shadow = self._shadow.get(stream_id)
                    if shadow is not None:
                        apply_batch_validated(shadow, batch)
                    try:
                        self.monitor.apply(stream_id, batch)
                    except self._poison:
                        # The shadow accepted what the monitor refused:
                        # it can no longer be trusted for this stream.
                        self._resync_shadow(stream_id)
                        raise
                    applied += 1
                    self.accepted_batches += 1
                    self._batches.inc()
                except self._poison as exc:
                    dlq_id = self.dlq.record(
                        session=session.session_id,
                        stream=stream_id,
                        changes=[protocol.change_to_dict(c) for c in changes],
                        error=f"{type(exc).__name__}: {exc}",
                        trace_id=trace_id,
                    )
                    self.dead_letters += 1
                    self._dlq_counter.inc()
                    errors.append(
                        {
                            "stream": stream_id,
                            "error": f"{type(exc).__name__}: {exc}",
                            "dlq_id": dlq_id,
                        }
                    )
                changes.clear()
            events = self._session_events(session)
        self._commits.inc()
        reply: dict[str, Any] = {
            "ok": not errors,
            "cmd": command.verb,
            "t": self.timestamp,
            "applied": applied,
            "events": events,
        }
        if trace_id is not None:
            reply["trace"] = trace_id
        if errors:
            reply["errors"] = errors
            reply["error"] = errors[0]["error"]
        return reply

    def _resync_shadow(self, stream_id: Any) -> None:
        """Re-align a shadow the monitor has disagreed with.

        Re-copies the authoritative graph when the monitor exposes one
        (the in-process :class:`~repro.core.monitor.StreamMonitor`);
        otherwise the shadow is dropped, so later batches on the stream
        go unvalidated rather than being judged against drifted state.
        """
        if stream_id not in self._shadow:
            return
        if hasattr(self.monitor, "graph"):
            try:
                self._shadow[stream_id] = self.monitor.graph(stream_id).copy()
                return
            except (ValueError, KeyError):
                pass
        del self._shadow[stream_id]

    def _checkpoint(self, command: Command) -> dict[str, Any]:
        if not hasattr(self.monitor, "checkpoint"):
            return {"ok": False, "error": "checkpoint requires --workers >= 1"}
        try:
            notes = self.monitor.checkpoint()
        except RuntimeError as exc:
            return {"ok": False, "cmd": command.verb, "error": str(exc)}
        return {"ok": True, "cmd": command.verb, "shards": notes}

    def _session_events(self, session: Session) -> list[dict[str, Any]]:
        current = set(self.monitor.matches())
        events = diff_polls(session.last_poll, current)
        session.last_poll = current
        return [protocol.event_to_dict(e, self.timestamp) for e in events]

    # -- stats -------------------------------------------------------------

    def serve_stats(self) -> dict[str, Any]:
        """The ``serve`` section of the ``stats`` reply."""
        stats: dict[str, Any] = {
            "timestamp": self.timestamp,
            "accepted_batches": self.accepted_batches,
            "dead_letters": self.dead_letters,
        }
        if self._extra_stats is not None:
            stats.update(self._extra_stats())
        return stats


def collect_obs_summary(monitor: Any) -> dict[str, Any]:
    """The monitor's observability summary: for a ShardedMonitor the
    fleet-merged per-worker registries (plus the coordinator's own), for
    an in-process monitor the process-local registry."""
    if hasattr(monitor, "inbox_depths"):  # ShardedMonitor
        summary = monitor.stats()["merged_obs"]
        assert isinstance(summary, dict)
        return summary
    summary = obs.get_registry().summary()
    assert isinstance(summary, dict)
    return summary


def serve_lines(
    monitor: Any,
    lines: Iterable[str],
    emit: Callable[[dict[str, Any]], None],
    dlq: DeadLetterQueue | None = None,
    stats_every: int = 0,
) -> int:
    """The stdin front-end: a thin synchronous adapter over the same
    protocol/session machinery the TCP server uses.

    Reads text-protocol lines, emits one reply dict per command, and
    stops at ``quit`` or end of input.  Returns the number of commands
    executed.
    """
    bridge = MonitorBridge(monitor, dlq=dlq)
    session = Session(0, label="stdin")
    executed = 0
    for raw in lines:
        try:
            command = protocol.parse_text_line(raw)
        except ProtocolError as exc:
            emit({"ok": False, "error": str(exc), "code": "bad_request"})
            continue
        if command is None:
            continue
        try:
            reply = bridge.execute(session, command)
        except POISON_ERRORS as exc:
            # Non-batch failures (e.g. unreadable graph-set file) are
            # reported in the historical `Type: message` shape.
            emit({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
            continue
        except OSError as exc:
            emit({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
            continue
        executed += 1
        emit(reply)
        if (
            isinstance(command, Commit)
            and stats_every
            and bridge.timestamp % stats_every == 0
        ):
            emit(
                {
                    "ok": True,
                    "cmd": "stats_auto",
                    "t": bridge.timestamp,
                    "obs": collect_obs_summary(monitor),
                }
            )
        if isinstance(command, Quit):
            break
    return executed
