"""Asyncio HTTP observability endpoint for the serving layer.

A deliberately minimal HTTP/1.0-style server (stdlib asyncio only, rule
RP017 keeps all of it inside ``repro.serve``) exposing the operational
surface a scraper or orchestrator needs:

========== =============================================================
path        body
========== =============================================================
/metrics    Prometheus text exposition of the merged registry summary
/healthz    liveness — 200 ``ok`` while the process can answer at all
/readyz     readiness — 200 while serving, **503 during drain** so load
            balancers stop routing before in-flight work finishes
/slo        JSON snapshot of the SLO engine (worst state + per rule)
/timeline.json  JSON dump of the metrics timeline ring
/trace      Perfetto / Chrome trace-event download of buffered spans
========== =============================================================

Every provider is an injected zero-argument callable, so the endpoint
is equally servable from :class:`~repro.serve.server.ReproServer`
(merged cross-worker summaries) and from tests (canned dicts).  The
endpoint never touches the monitor itself — it only reads snapshots —
so it can never block or interleave with the single-writer command
path.

Responses always carry ``Content-Length`` and ``Connection: close``:
one request per connection keeps the parser honest and the sockets
bounded (observability scrapes are low-rate by construction).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable

from repro.obs.timeline import Timeline

from .. import obs

__all__ = ["ObservabilityEndpoint"]

_MAX_REQUEST_BYTES = 8192


class ObservabilityEndpoint:
    """HTTP scrape/health server over injected snapshot providers."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        summary: Callable[[], dict[str, Any]],
        ready: Callable[[], bool],
        slo: Callable[[], dict[str, Any]] | None = None,
        timeline: Timeline | None = None,
        spans: Callable[[], list[Any]] | None = None,
        prefix: str = "repro",
    ) -> None:
        self._host = host
        self._port = port
        self._summary = summary
        self._ready = ready
        self._slo = slo
        self._timeline = timeline
        self._spans = spans if spans is not None else obs.spans
        self._prefix = prefix
        self._server: asyncio.AbstractServer | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves port 0 after start()."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("observability endpoint is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        """Bind and start serving scrapes on the configured address."""
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )

    async def stop(self) -> None:
        """Close the listening socket and wait for it to release."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request handling --------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readline()
            if not request or len(request) > _MAX_REQUEST_BYTES:
                return
            # Drain headers until the blank line; their content is unused.
            consumed = len(request)
            while True:
                line = await reader.readline()
                consumed += len(line)
                if line in (b"\r\n", b"\n", b"") or consumed > _MAX_REQUEST_BYTES:
                    break
            parts = request.decode("latin-1").split()
            if len(parts) < 2:
                status, headers, body = self._error(400, "bad request")
            elif parts[0] != "GET":
                status, headers, body = self._error(405, "method not allowed")
            else:
                status, headers, body = self._route(parts[1])
            await self._respond(writer, status, headers, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # scraper went away mid-exchange; nothing to clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # peer reset during close; the socket is gone either way

    def _route(self, path: str) -> tuple[int, dict[str, str], bytes]:
        path = path.split("?", 1)[0]
        if path == "/metrics":
            text = obs.render_prometheus(self._summary(), prefix=self._prefix)
            return (
                200,
                {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
                text.encode("utf-8"),
            )
        if path == "/healthz":
            return 200, {"Content-Type": "text/plain; charset=utf-8"}, b"ok\n"
        if path == "/readyz":
            if self._ready():
                return 200, {"Content-Type": "text/plain; charset=utf-8"}, b"ready\n"
            return 503, {"Content-Type": "text/plain; charset=utf-8"}, b"draining\n"
        if path == "/slo":
            if self._slo is None:
                return self._error(404, "slo engine not configured")
            return self._json(self._slo())
        if path == "/timeline.json":
            if self._timeline is None:
                return self._error(404, "timeline not configured")
            return self._json(self._timeline.to_json())
        if path == "/trace":
            doc = obs.to_chrome(self._spans())
            body = json.dumps(doc).encode("utf-8")
            return (
                200,
                {
                    "Content-Type": "application/json; charset=utf-8",
                    "Content-Disposition": 'attachment; filename="repro-trace.json"',
                },
                body,
            )
        return self._error(404, "not found")

    @staticmethod
    def _json(payload: Any) -> tuple[int, dict[str, str], bytes]:
        body = json.dumps(payload).encode("utf-8")
        return 200, {"Content-Type": "application/json; charset=utf-8"}, body

    @staticmethod
    def _error(code: int, message: str) -> tuple[int, dict[str, str], bytes]:
        return (
            code,
            {"Content-Type": "text/plain; charset=utf-8"},
            (message + "\n").encode("utf-8"),
        )

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        headers: dict[str, str],
        body: bytes,
    ) -> None:
        reasons = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            503: "Service Unavailable",
        }
        lines = [f"HTTP/1.0 {status} {reasons.get(status, 'Unknown')}"]
        headers = {
            "Server": "repro-serve",
            "Connection": "close",
            "Content-Length": str(len(body)),
            **headers,
        }
        lines.extend(f"{key}: {value}" for key, value in headers.items())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()
