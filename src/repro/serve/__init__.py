"""``repro.serve`` — the network serving layer.

Fronts a monitor (library :class:`~repro.core.monitor.StreamMonitor` or
sharded :class:`~repro.runtime.ShardedMonitor`) with an asyncio TCP
server speaking newline-delimited JSON over per-client sessions, with
admission control (token buckets, a bounded admission queue with
reject/shed policies, a load-keyed circuit breaker), a dead-letter
journal for poison batches, and graceful SIGTERM draining.  The
historical stdin line protocol of ``repro serve`` is a thin synchronous
adapter (:func:`~repro.serve.session.serve_lines`) over the same
protocol/session code.

An optional HTTP observability endpoint
(:class:`~repro.serve.http.ObservabilityEndpoint`, ``--http`` on the
CLI) shares the loop: Prometheus ``/metrics``, ``/healthz``,
drain-aware ``/readyz``, ``/slo``, ``/timeline.json``, and a
``/trace`` Perfetto download — see the endpoint table in
``docs/serving.md``.

This is the only unit allowed to use :mod:`asyncio` (rule RP017); see
``docs/serving.md`` for the protocol specification.
"""

from .admission import CircuitBreaker, TokenBucket
from .dlq import DeadLetter, DeadLetterQueue
from .http import ObservabilityEndpoint
from .protocol import ProtocolError, parse_json_line, parse_text_line
from .server import (
    ReproServer,
    ServeConfig,
    replay_dead_letters,
    replay_dead_letters_async,
    run_server,
)
from .session import MonitorBridge, Session, collect_obs_summary, serve_lines

__all__ = [
    "CircuitBreaker",
    "DeadLetter",
    "DeadLetterQueue",
    "MonitorBridge",
    "ObservabilityEndpoint",
    "ProtocolError",
    "ReproServer",
    "ServeConfig",
    "Session",
    "TokenBucket",
    "collect_obs_summary",
    "parse_json_line",
    "parse_text_line",
    "replay_dead_letters",
    "replay_dead_letters_async",
    "run_server",
    "serve_lines",
]
