"""Plain-text serialization for graphs, graph sets and graph streams.

The graph format is a superset of the classic gSpan transaction format::

    t # <name>
    v <id> <vertex-label>
    e <u> <v> <edge-label>

A stream file holds one ``t #`` block for the initial graph followed by
``op`` blocks, one per timestamp::

    op
    ins <u> <v> <edge-label> [<u-label> <v-label>]
    del <u> <v>

Identifiers and labels are serialized as whitespace-free strings; reading
therefore yields string ids and labels.  All writers round-trip with the
matching readers (property-tested).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, TextIO

from .labeled_graph import GraphError, LabeledGraph
from .operations import DELETE, INSERT, EdgeChange, GraphChangeOperation
from .stream import GraphStream


def _token(value: object) -> str:
    text = str(value)
    if not text or any(ch.isspace() for ch in text):
        raise GraphError(f"cannot serialize token {value!r}: empty or has whitespace")
    return text


# ----------------------------------------------------------------------
# graphs
# ----------------------------------------------------------------------
def write_graph(graph: LabeledGraph, out: TextIO, name: str = "g") -> None:
    """Write one graph block to ``out``."""
    out.write(f"t # {_token(name)}\n")
    for vertex, label in sorted(graph.vertex_items(), key=lambda kv: str(kv[0])):
        out.write(f"v {_token(vertex)} {_token(label)}\n")
    for u, v, label in sorted(graph.edges(), key=lambda e: (str(e[0]), str(e[1]))):
        out.write(f"e {_token(u)} {_token(v)} {_token(label)}\n")


def graph_to_string(graph: LabeledGraph, name: str = "g") -> str:
    """One graph block as a string (inverse of :func:`graph_from_string`)."""
    buffer = io.StringIO()
    write_graph(graph, buffer, name)
    return buffer.getvalue()


def write_graph_set(
    graphs: Iterable[LabeledGraph], path: str | Path, names: Iterable[str] | None = None
) -> None:
    """Write many graphs to one file, one ``t #`` block each."""
    graphs = list(graphs)
    block_names = list(names) if names is not None else [f"g{i}" for i in range(len(graphs))]
    if len(block_names) != len(graphs):
        raise GraphError("names and graphs must have equal length")
    with open(path, "w", encoding="utf-8") as out:
        for name, graph in zip(block_names, graphs):
            write_graph(graph, out, name)


def _parse_blocks(lines: Iterable[str]) -> list[tuple[str, list[list[str]]]]:
    """Split a graph file into ``(name, rows)`` blocks."""
    blocks: list[tuple[str, list[list[str]]]] = []
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "t":
            if len(parts) < 3 or parts[1] != "#":
                raise GraphError(f"malformed graph header: {line!r}")
            blocks.append((parts[2], []))
        else:
            if not blocks:
                raise GraphError(f"data line before any 't #' header: {line!r}")
            blocks[-1][1].append(parts)
    return blocks


def _graph_from_rows(rows: list[list[str]]) -> LabeledGraph:
    graph = LabeledGraph()
    for parts in rows:
        if parts[0] == "v":
            if len(parts) != 3:
                raise GraphError(f"malformed vertex line: {' '.join(parts)!r}")
            graph.add_vertex(parts[1], parts[2])
        elif parts[0] == "e":
            if len(parts) != 4:
                raise GraphError(f"malformed edge line: {' '.join(parts)!r}")
            graph.add_edge(parts[1], parts[2], parts[3])
        else:
            raise GraphError(f"unknown record type {parts[0]!r} in graph block")
    return graph


def read_graph_set(path: str | Path) -> list[tuple[str, LabeledGraph]]:
    """Read all ``(name, graph)`` blocks from a graph-set file."""
    with open(path, "r", encoding="utf-8") as source:
        blocks = _parse_blocks(source)
    return [(name, _graph_from_rows(rows)) for name, rows in blocks]


def graph_from_string(text: str) -> LabeledGraph:
    """Parse exactly one graph block from a string."""
    blocks = _parse_blocks(text.splitlines())
    if len(blocks) != 1:
        raise GraphError(f"expected exactly one graph block, found {len(blocks)}")
    return _graph_from_rows(blocks[0][1])


# ----------------------------------------------------------------------
# streams
# ----------------------------------------------------------------------
def write_stream(stream: GraphStream, path: str | Path) -> None:
    """Write a :class:`GraphStream` (initial graph + op blocks) to a file."""
    with open(path, "w", encoding="utf-8") as out:
        write_graph(stream.initial, out, stream.name or "stream")
        for operation in stream.operations:
            out.write("op\n")
            for change in operation:
                if change.op == INSERT:
                    fields = ["ins", _token(change.u), _token(change.v), _token(change.edge_label)]
                    if change.u_label is not None or change.v_label is not None:
                        fields.append(_token(change.u_label if change.u_label is not None else "?"))
                        fields.append(_token(change.v_label if change.v_label is not None else "?"))
                    out.write(" ".join(fields) + "\n")
                else:
                    out.write(f"del {_token(change.u)} {_token(change.v)}\n")


def read_stream(path: str | Path) -> GraphStream:
    """Read a :class:`GraphStream` written by :func:`write_stream`."""
    with open(path, "r", encoding="utf-8") as source:
        lines = [line.strip() for line in source if line.strip()]
    if not lines or not lines[0].startswith("t "):
        raise GraphError("stream file must start with a 't #' graph block")

    header = lines[0].split()
    if len(header) < 3 or header[1] != "#":
        raise GraphError(f"malformed stream header: {lines[0]!r}")
    name = header[2]

    graph_rows: list[list[str]] = []
    index = 1
    while index < len(lines) and lines[index].split()[0] in ("v", "e"):
        graph_rows.append(lines[index].split())
        index += 1
    initial = _graph_from_rows(graph_rows)

    operations: list[GraphChangeOperation] = []
    current: list[EdgeChange] | None = None
    for line in lines[index:]:
        parts = line.split()
        if parts[0] == "op":
            if current is not None:
                operations.append(GraphChangeOperation(current))
            current = []
        elif parts[0] == INSERT:
            if current is None:
                raise GraphError("change line before any 'op' block")
            if len(parts) == 4:
                current.append(EdgeChange.insert(parts[1], parts[2], parts[3]))
            elif len(parts) == 6:
                u_label = None if parts[4] == "?" else parts[4]
                v_label = None if parts[5] == "?" else parts[5]
                current.append(EdgeChange.insert(parts[1], parts[2], parts[3], u_label, v_label))
            else:
                raise GraphError(f"malformed ins line: {line!r}")
        elif parts[0] == DELETE:
            if current is None:
                raise GraphError("change line before any 'op' block")
            if len(parts) != 3:
                raise GraphError(f"malformed del line: {line!r}")
            current.append(EdgeChange.delete(parts[1], parts[2]))
        else:
            raise GraphError(f"unknown record type {parts[0]!r} in stream file")
    if current is not None:
        operations.append(GraphChangeOperation(current))
    return GraphStream(initial, operations, name=name)
