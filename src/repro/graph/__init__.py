"""Graph substrate: labeled graphs, change operations, streams, text IO."""

from .labeled_graph import DEFAULT_EDGE_LABEL, GraphError, LabeledGraph, edge_key
from .operations import (
    DELETE,
    INSERT,
    EdgeChange,
    GraphChangeOperation,
    apply_change,
    apply_operation,
    diff_graphs,
)
from .stream import GraphStream

__all__ = [
    "DEFAULT_EDGE_LABEL",
    "DELETE",
    "INSERT",
    "EdgeChange",
    "GraphChangeOperation",
    "GraphError",
    "GraphStream",
    "LabeledGraph",
    "apply_change",
    "apply_operation",
    "diff_graphs",
    "edge_key",
]
