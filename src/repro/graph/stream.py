"""Graph streams (Definition 2.6 of the paper).

A :class:`GraphStream` couples a starting graph ``G_0`` with a graph change
operation stream ``[GC_1, GC_2, ...]``.  The graph at timestamp ``t`` is
``GC_t -> (... -> (GC_1 -> G_0))``.  Streams can be replayed lazily
(:meth:`GraphStream.replay`, one shared mutable cursor graph) or
materialized per timestamp (:meth:`GraphStream.graph_at`).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .labeled_graph import LabeledGraph
from .operations import GraphChangeOperation, apply_operation


class GraphStream:
    """A starting graph plus a finite recorded change-operation stream.

    The recorded form is what the experiment harness replays; the live
    :class:`repro.core.monitor.StreamMonitor` accepts unbounded operation
    feeds instead.
    """

    def __init__(
        self,
        initial: LabeledGraph,
        operations: Iterable[GraphChangeOperation] = (),
        name: str = "",
    ) -> None:
        self.initial = initial
        self.operations: list[GraphChangeOperation] = list(operations)
        self.name = name

    def __len__(self) -> int:
        """Number of timestamps, including timestamp 0 (the initial graph)."""
        return len(self.operations) + 1

    def append(self, operation: GraphChangeOperation) -> None:
        """Record one more timestamp's batch."""
        self.operations.append(operation)

    def graph_at(self, timestamp: int) -> LabeledGraph:
        """Materialize the graph at ``timestamp`` (0 = the initial graph)."""
        if not 0 <= timestamp < len(self):
            raise IndexError(
                f"timestamp {timestamp} out of range for stream of length {len(self)}"
            )
        graph = self.initial.copy()
        for operation in self.operations[:timestamp]:
            apply_operation(graph, operation)
        return graph

    def replay(self) -> Iterator[tuple[int, LabeledGraph]]:
        """Yield ``(timestamp, graph)`` for every timestamp.

        The yielded graph is a single shared cursor mutated in place between
        yields; copy it if you need to keep a snapshot.
        """
        cursor = self.initial.copy()
        yield 0, cursor
        for timestamp, operation in enumerate(self.operations, start=1):
            apply_operation(cursor, operation)
            yield timestamp, cursor

    def truncated(self, timestamps: int) -> "GraphStream":
        """A copy limited to the first ``timestamps`` timestamps."""
        if timestamps < 1:
            raise ValueError("a stream has at least timestamp 0")
        return GraphStream(
            self.initial.copy(), self.operations[: timestamps - 1], name=self.name
        )

    def final_graph(self) -> LabeledGraph:
        """The graph at the last timestamp."""
        return self.graph_at(len(self) - 1)

    def total_changes(self) -> int:
        """Total number of individual edge changes across all timestamps."""
        return sum(len(operation) for operation in self.operations)

    def __repr__(self) -> str:
        return (
            f"GraphStream(name={self.name!r}, timestamps={len(self)}, "
            f"changes={self.total_changes()})"
        )
