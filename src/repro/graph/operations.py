"""Graph change operations (Definitions 2.4-2.5 of the paper).

A single edge change is the paper's triple ``<op, u, v>`` extended with the
labels needed to materialize it: the edge label, and vertex labels for
endpoints that do not exist yet (vertex insertion is expressed, as in the
paper, by inserting that vertex's edges).

A :class:`GraphChangeOperation` is a batch of edge changes applied at one
timestamp.  Following Section III of the paper, a batch is sequentialized
with **all deletions first, then all insertions**; vertices left isolated
by deletions are dropped (the paper never keeps isolated vertices).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Literal

from .labeled_graph import DEFAULT_EDGE_LABEL, GraphError, Label, LabeledGraph, VertexId

Op = Literal["ins", "del"]

INSERT: Op = "ins"
DELETE: Op = "del"


@dataclass(frozen=True)
class EdgeChange:
    """One edge insertion or deletion, ``<op, u, v>`` plus labels.

    ``u_label`` / ``v_label`` are only consulted when the endpoint does not
    exist in the target graph at application time (i.e. vertex insertion).
    """

    op: Op
    u: VertexId
    v: VertexId
    edge_label: Label = DEFAULT_EDGE_LABEL
    u_label: Label | None = None
    v_label: Label | None = None

    def __post_init__(self) -> None:
        if self.op not in (INSERT, DELETE):
            raise ValueError(f"op must be 'ins' or 'del', got {self.op!r}")
        if self.u == self.v:
            raise ValueError("self loops are not supported")

    @staticmethod
    def insert(
        u: VertexId,
        v: VertexId,
        edge_label: Label = DEFAULT_EDGE_LABEL,
        u_label: Label | None = None,
        v_label: Label | None = None,
    ) -> "EdgeChange":
        return EdgeChange(INSERT, u, v, edge_label, u_label, v_label)

    @staticmethod
    def delete(u: VertexId, v: VertexId) -> "EdgeChange":
        return EdgeChange(DELETE, u, v)


@dataclass(frozen=True)
class GraphChangeOperation:
    """A batch of edge changes applied atomically at one timestamp (Def 2.4)."""

    changes: tuple[EdgeChange, ...] = field(default_factory=tuple)

    def __init__(self, changes: Iterable[EdgeChange] = ()) -> None:
        object.__setattr__(self, "changes", tuple(changes))

    def __iter__(self) -> Iterator[EdgeChange]:
        return iter(self.changes)

    def __len__(self) -> int:
        return len(self.changes)

    def __bool__(self) -> bool:
        return bool(self.changes)

    @property
    def deletions(self) -> tuple[EdgeChange, ...]:
        return tuple(c for c in self.changes if c.op == DELETE)

    @property
    def insertions(self) -> tuple[EdgeChange, ...]:
        return tuple(c for c in self.changes if c.op == INSERT)

    def sequentialized(self) -> tuple[EdgeChange, ...]:
        """Deletions first, then insertions (the paper's processing order)."""
        return self.deletions + self.insertions


def apply_change(graph: LabeledGraph, change: EdgeChange) -> None:
    """Apply a single edge change to ``graph`` in place.

    Insertions create missing endpoints (their labels must be supplied on
    the change).  Deletions drop endpoints that become isolated.
    """
    if change.op == INSERT:
        _apply_insert(graph, change)
    else:
        _apply_delete(graph, change)


def _apply_insert(graph: LabeledGraph, change: EdgeChange) -> None:
    for vertex, label in ((change.u, change.u_label), (change.v, change.v_label)):
        if not graph.has_vertex(vertex):
            if label is None:
                raise GraphError(
                    f"insertion of edge ({change.u!r}, {change.v!r}) creates "
                    f"vertex {vertex!r} but no label was provided"
                )
            graph.add_vertex(vertex, label)
    graph.add_edge(change.u, change.v, change.edge_label)


def _apply_delete(graph: LabeledGraph, change: EdgeChange) -> None:
    graph.remove_edge(change.u, change.v)
    for vertex in (change.u, change.v):
        if graph.has_vertex(vertex) and graph.degree(vertex) == 0:
            graph.remove_vertex(vertex)


def apply_operation(graph: LabeledGraph, operation: GraphChangeOperation) -> None:
    """Apply a whole batch in place: deletions first, then insertions."""
    for change in operation.sequentialized():
        apply_change(graph, change)


def diff_graphs(old: LabeledGraph, new: LabeledGraph) -> GraphChangeOperation:
    """Change operation that rewrites ``old`` into ``new``.

    Edges present only in ``old`` become deletions; edges present only in
    ``new`` (or whose label changed) become insertions (label changes are a
    delete+insert pair).  Vertex labels of shared ids must agree.
    """
    old_edges = {frozenset((u, v)): label for u, v, label in old.edges()}
    new_edges = {frozenset((u, v)): label for u, v, label in new.edges()}
    changes: list[EdgeChange] = []
    for key, label in old_edges.items():
        if new_edges.get(key) != label:
            u, v = tuple(key)
            changes.append(EdgeChange.delete(u, v))
    for key, label in new_edges.items():
        if old_edges.get(key) != label:
            u, v = tuple(key)
            changes.append(
                EdgeChange.insert(
                    u,
                    v,
                    label,
                    u_label=new.vertex_label(u),
                    v_label=new.vertex_label(v),
                )
            )
    return GraphChangeOperation(changes)
