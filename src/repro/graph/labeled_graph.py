"""Mutable undirected labeled graph (Definitions 2.1-2.3 of the paper).

The graph model is the one the paper operates on: vertices carry labels,
edges carry labels, edges are undirected, and there is at most one edge
between a pair of vertices.  Vertex identifiers are arbitrary hashable
values (the test suite and generators use ints and strings).

This module is dependency-free; it is the substrate under the stream
machinery (:mod:`repro.graph.stream`), the NNT index (:mod:`repro.nnt`)
and both baselines.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Hashable, Iterable, Iterator

VertexId = Hashable
Label = Any

DEFAULT_EDGE_LABEL = "-"


class GraphError(Exception):
    """Raised on invalid structural operations (missing vertex, duplicate edge...)."""


def edge_key(u: VertexId, v: VertexId) -> tuple[VertexId, VertexId]:
    """Canonical (order-independent) key for an undirected edge.

    Vertex ids of mixed types are compared by ``(type name, value)`` so the
    ordering is total even for heterogeneous id sets.
    """
    ku = (type(u).__name__, u)
    kv = (type(v).__name__, v)
    try:
        return (u, v) if ku <= kv else (v, u)
    except TypeError:
        return (u, v) if repr(ku) <= repr(kv) else (v, u)


class LabeledGraph:
    """An undirected graph with labeled vertices and labeled edges.

    >>> g = LabeledGraph()
    >>> g.add_vertex(1, "A")
    >>> g.add_vertex(2, "B")
    >>> g.add_edge(1, 2, "x")
    >>> g.vertex_label(1)
    'A'
    >>> g.edge_label(2, 1)
    'x'
    """

    __slots__ = ("_labels", "_adj", "_num_edges")

    def __init__(self) -> None:
        self._labels: dict[VertexId, Label] = {}
        self._adj: dict[VertexId, dict[VertexId, Label]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_vertices_and_edges(
        cls,
        vertices: Iterable[tuple[VertexId, Label]],
        edges: Iterable[tuple[VertexId, VertexId, Label]] = (),
    ) -> "LabeledGraph":
        """Build a graph from ``(vertex, label)`` and ``(u, v, label)`` tuples."""
        graph = cls()
        for vertex, label in vertices:
            graph.add_vertex(vertex, label)
        for u, v, label in edges:
            graph.add_edge(u, v, label)
        return graph

    def copy(self) -> "LabeledGraph":
        """Return an independent deep copy of the structure."""
        clone = LabeledGraph()
        clone._labels = dict(self._labels)
        clone._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------
    # vertices
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: VertexId, label: Label) -> None:
        """Add a vertex with the given label; error if it already exists."""
        if vertex in self._labels:
            raise GraphError(f"vertex {vertex!r} already exists")
        self._labels[vertex] = label
        self._adj[vertex] = {}

    def remove_vertex(self, vertex: VertexId) -> None:
        """Remove a vertex and all edges incident to it."""
        if vertex not in self._labels:
            raise GraphError(f"vertex {vertex!r} does not exist")
        for neighbor in list(self._adj[vertex]):
            self.remove_edge(vertex, neighbor)
        del self._adj[vertex]
        del self._labels[vertex]

    def has_vertex(self, vertex: VertexId) -> bool:
        """Is ``vertex`` present?"""
        return vertex in self._labels

    def vertex_label(self, vertex: VertexId) -> Label:
        """Label of ``vertex``; GraphError if absent."""
        try:
            return self._labels[vertex]
        except KeyError:
            raise GraphError(f"vertex {vertex!r} does not exist") from None

    def vertices(self) -> Iterator[VertexId]:
        """Iterate all vertex ids."""
        return iter(self._labels)

    def vertex_items(self) -> Iterator[tuple[VertexId, Label]]:
        """Iterate ``(vertex, label)`` pairs."""
        return iter(self._labels.items())

    @property
    def labels(self) -> dict:
        """The live vertex->label mapping.  Treat as read-only: it is the
        graph's own storage, exposed for hot-path lookups (the NNT index
        resolves two labels per tree edge)."""
        return self._labels

    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    def degree(self, vertex: VertexId) -> int:
        """Number of incident edges; GraphError if absent."""
        try:
            return len(self._adj[vertex])
        except KeyError:
            raise GraphError(f"vertex {vertex!r} does not exist") from None

    def max_degree(self) -> int:
        """Maximum vertex degree (0 for the empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def neighbors(self, vertex: VertexId) -> Iterator[VertexId]:
        """Iterate the neighbors of ``vertex``."""
        try:
            return iter(self._adj[vertex])
        except KeyError:
            raise GraphError(f"vertex {vertex!r} does not exist") from None

    def neighbor_items(self, vertex: VertexId) -> Iterator[tuple[VertexId, Label]]:
        """Iterate ``(neighbor, edge_label)`` pairs of ``vertex``."""
        try:
            return iter(self._adj[vertex].items())
        except KeyError:
            raise GraphError(f"vertex {vertex!r} does not exist") from None

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(self, u: VertexId, v: VertexId, label: Label = DEFAULT_EDGE_LABEL) -> None:
        """Add an undirected edge; both endpoints must already exist."""
        if u == v:
            raise GraphError("self loops are not supported")
        if u not in self._labels:
            raise GraphError(f"vertex {u!r} does not exist")
        if v not in self._labels:
            raise GraphError(f"vertex {v!r} does not exist")
        if v in self._adj[u]:
            raise GraphError(f"edge ({u!r}, {v!r}) already exists")
        self._adj[u][v] = label
        self._adj[v][u] = label
        self._num_edges += 1

    def remove_edge(self, u: VertexId, v: VertexId) -> None:
        """Remove the undirected edge; GraphError if absent."""
        if u not in self._adj or v not in self._adj[u]:
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        """Is the undirected edge ``{u, v}`` present?"""
        return u in self._adj and v in self._adj[u]

    def edge_label(self, u: VertexId, v: VertexId) -> Label:
        """Label of the edge ``{u, v}``; GraphError if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        return self._adj[u][v]

    def edges(self) -> Iterator[tuple[VertexId, VertexId, Label]]:
        """Iterate each undirected edge once, as ``(u, v, label)``."""
        seen: set[tuple[VertexId, VertexId]] = set()
        for u, nbrs in self._adj.items():
            for v, label in nbrs.items():
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield key[0], key[1], label

    @property
    def num_edges(self) -> int:
        return self._num_edges

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def connected_components(self) -> list[set[VertexId]]:
        """All connected components as vertex sets."""
        components: list[set[VertexId]] = []
        unvisited = set(self._labels)
        while unvisited:
            root = next(iter(unvisited))
            component = {root}
            frontier = deque([root])
            while frontier:
                vertex = frontier.popleft()
                for neighbor in self._adj[vertex]:
                    if neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
            components.append(component)
            unvisited -= component
        return components

    def is_connected(self) -> bool:
        """True for connected graphs; the empty graph counts as connected."""
        if self.num_vertices <= 1:
            return True
        return len(self.connected_components()) == 1

    def subgraph(self, keep: Iterable[VertexId]) -> "LabeledGraph":
        """Vertex-induced subgraph on ``keep`` (labels preserved)."""
        keep_set = set(keep)
        sub = LabeledGraph()
        for vertex in keep_set:
            sub.add_vertex(vertex, self.vertex_label(vertex))
        for u, v, label in self.edges():
            if u in keep_set and v in keep_set:
                sub.add_edge(u, v, label)
        return sub

    def largest_component_subgraph(self) -> "LabeledGraph":
        """Induced subgraph on the largest connected component."""
        components = self.connected_components()
        if not components:
            return LabeledGraph()
        return self.subgraph(max(components, key=len))

    def relabeled(self, mapping: dict[VertexId, VertexId]) -> "LabeledGraph":
        """Return a copy whose vertex ids are renamed through ``mapping``.

        Ids missing from ``mapping`` are kept as-is; the mapping must be
        injective on the vertex set.
        """
        new_ids = [mapping.get(v, v) for v in self._labels]
        if len(set(new_ids)) != len(new_ids):
            raise GraphError("relabeling mapping is not injective")
        out = LabeledGraph()
        for vertex, label in self._labels.items():
            out.add_vertex(mapping.get(vertex, vertex), label)
        for u, v, label in self.edges():
            out.add_edge(mapping.get(u, u), mapping.get(v, v), label)
        return out

    def label_histogram(self) -> dict[Label, int]:
        """Count of vertices per vertex label."""
        histogram: dict[Label, int] = {}
        for label in self._labels.values():
            histogram[label] = histogram.get(label, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __eq__(self, other: object) -> bool:
        """Structural equality: same ids, labels, edges and edge labels."""
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return self._labels == other._labels and self._adj == other._adj

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    def __repr__(self) -> str:
        return (
            f"LabeledGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )
