"""Structured trace spans with monotonic timing and a bounded buffer.

``with span("nnt.batch_update", stream=sid): ...`` times the enclosed
block with :func:`time.perf_counter`, tracks nesting (each record knows
its depth and enclosing span name), appends a :class:`SpanRecord` to a
bounded in-memory ring buffer — old records fall off the far end, so a
long-lived monitor cannot leak — and folds the duration into the
``"<name>.seconds"`` histogram of the active registry, which is how the
per-stage latency distributions reach exposition and the runtime's
merged fleet view.

When instrumentation is disabled, :func:`span` returns a shared no-op
context manager: no timer read, no allocation beyond the call itself.

The span stack is process-local and deliberately not thread-aware: per
rule RP008 everything outside :mod:`repro.runtime` is single-threaded,
and the runtime parallelises with *processes*, each carrying its own
copy of this module's state.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

from . import state
from .instruments import Registry

DEFAULT_SPAN_CAPACITY = 2048

_ring: deque["SpanRecord"] = deque(maxlen=DEFAULT_SPAN_CAPACITY)
_stack: list[str] = []


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    started: float  # perf_counter seconds at entry (monotonic, process-local)
    duration: float  # seconds
    depth: int  # 0 = top level at close time
    parent: str | None  # enclosing span name, if any
    error: bool  # closed by an exception propagating through?
    attrs: dict[str, Any] = field(default_factory=dict)


class _LiveSpan:
    """Active span handle (returned by :func:`span` when enabled)."""

    __slots__ = ("name", "attrs", "registry", "started", "duration")

    def __init__(self, name: str, attrs: dict[str, Any], registry: Registry) -> None:
        self.name = name
        self.attrs = attrs
        self.registry = registry
        self.started = 0.0
        self.duration = 0.0

    def __enter__(self) -> "_LiveSpan":
        _stack.append(self.name)
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self.duration = time.perf_counter() - self.started
        _stack.pop()
        _ring.append(
            SpanRecord(
                name=self.name,
                started=self.started,
                duration=self.duration,
                depth=len(_stack),
                parent=_stack[-1] if _stack else None,
                error=exc_type is not None,
                attrs=self.attrs,
            )
        )
        self.registry.histogram(f"{self.name}.seconds").observe(self.duration)


class _NoopSpan:
    """Shared do-nothing span (returned when instrumentation is off)."""

    __slots__ = ()
    duration = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP = _NoopSpan()


def span(name: str, **attrs: Any) -> _LiveSpan | _NoopSpan:
    """A context manager timing one named stage.

    Keyword arguments become the span's attributes (stream ids, batch
    sizes — anything cheap and picklable).  Avoid computing expensive
    attribute values at the call site: they are evaluated even when
    instrumentation is disabled.
    """
    if not state.ENABLED:
        return _NOOP
    from .registry import get_registry  # late import: avoids a module cycle

    return _LiveSpan(name, attrs, get_registry())


def spans() -> list[SpanRecord]:
    """Snapshot of the ring buffer, oldest first."""
    return list(_ring)


def clear_spans() -> None:
    """Drop every buffered span record."""
    _ring.clear()


def set_span_capacity(capacity: int) -> None:
    """Resize the ring buffer (keeps the newest records that fit)."""
    global _ring
    if capacity < 1:
        raise ValueError("span capacity must be >= 1")
    _ring = deque(_ring, maxlen=capacity)


def span_depth() -> int:
    """How many spans are currently open (0 outside any span)."""
    return len(_stack)


def iter_spans(name: str | None = None) -> Iterator[SpanRecord]:
    """Buffered records, optionally filtered by span name."""
    for record in _ring:
        if name is None or record.name == name:
            yield record
