"""Structured trace spans with monotonic timing and a bounded buffer.

``with span("nnt.batch_update", stream=sid): ...`` times the enclosed
block with :func:`time.perf_counter`, tracks nesting (each record knows
its depth and enclosing span name), appends a :class:`SpanRecord` to a
bounded in-memory ring buffer — old records fall off the far end, so a
long-lived monitor cannot leak — and folds the duration into the
``"<name>.seconds"`` histogram of the active registry, which is how the
per-stage latency distributions reach exposition and the runtime's
merged fleet view.

When instrumentation is disabled, :func:`span` returns a shared no-op
context manager: no timer read, no allocation beyond the call itself.

Every span also carries *trace identity* — a trace id shared by the
whole tree it belongs to, its own span id, and its parent's span id —
assigned by :mod:`repro.obs.trace` (the only minting site, rule RP010).
Root spans adopt the remote context installed by
:func:`repro.obs.trace.attached` when one is present, which is how a
worker-side ``monitor.apply`` span joins the coordinator-side trace of
the ``apply`` call that caused it.

A span closed by a propagating exception records ``error=True`` plus
the exception type name, and its duration lands in a separate
``{error="<TypeName>"}``-labelled ``"<name>.seconds"`` histogram — so a
failing apply is distinguishable from a merely slow one in both the
trace view and the metrics.

The span stack is process-local and deliberately not thread-aware: per
rule RP008 everything outside :mod:`repro.runtime` is single-threaded,
and the runtime parallelises with *processes*, each carrying its own
copy of this module's state.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

from . import state, trace
from .instruments import Registry

DEFAULT_SPAN_CAPACITY = 2048

_ring: deque["SpanRecord"] = deque(maxlen=DEFAULT_SPAN_CAPACITY)


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    started: float  # perf_counter seconds at entry (monotonic, process-local)
    duration: float  # seconds
    depth: int  # 0 = top level at close time
    parent: str | None  # enclosing span name, if any
    error: bool  # closed by an exception propagating through?
    trace_id: str = ""  # shared by every span of one logical operation
    span_id: str = ""  # this span's own id
    parent_id: str | None = None  # parent span id (may live in another process)
    process: str = ""  # trace track label (coordinator / shard-N / pid-N)
    error_type: str | None = None  # exception type name when error is True
    attrs: dict[str, Any] = field(default_factory=dict)


class _LiveSpan:
    """Active span handle (returned by :func:`span` when enabled)."""

    __slots__ = ("name", "attrs", "registry", "started", "duration", "frame")

    def __init__(self, name: str, attrs: dict[str, Any], registry: Registry) -> None:
        self.name = name
        self.attrs = attrs
        self.registry = registry
        self.started = 0.0
        self.duration = 0.0
        self.frame: trace.Frame | None = None

    def __enter__(self) -> "_LiveSpan":
        self.frame = trace.push_span(self.name)
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self.duration = time.perf_counter() - self.started
        frame = self.frame
        assert frame is not None
        trace.pop_span(frame)
        error = exc_type is not None
        error_type = getattr(exc_type, "__name__", None) if error else None
        _ring.append(
            SpanRecord(
                name=self.name,
                started=self.started,
                duration=self.duration,
                depth=trace.depth(),
                parent=frame.parent_name,
                error=error,
                trace_id=frame.trace_id,
                span_id=frame.span_id,
                parent_id=frame.parent_id,
                process=trace.process_label(),
                error_type=error_type,
                attrs=self.attrs,
            )
        )
        if error:
            histogram = self.registry.histogram(
                f"{self.name}.seconds", labels={"error": error_type or "Exception"}
            )
        else:
            histogram = self.registry.histogram(f"{self.name}.seconds")
        histogram.observe(self.duration)


class _NoopSpan:
    """Shared do-nothing span (returned when instrumentation is off)."""

    __slots__ = ()
    duration = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP = _NoopSpan()


def span(name: str, **attrs: Any) -> _LiveSpan | _NoopSpan:
    """A context manager timing one named stage.

    Keyword arguments become the span's attributes (stream ids, batch
    sizes — anything cheap and picklable).  Avoid computing expensive
    attribute values at the call site: they are evaluated even when
    instrumentation is disabled.
    """
    if not state.ENABLED:
        return _NOOP
    from .registry import get_registry  # late import: avoids a module cycle

    return _LiveSpan(name, attrs, get_registry())


def spans() -> list[SpanRecord]:
    """Snapshot of the ring buffer, oldest first."""
    return list(_ring)


def clear_spans() -> None:
    """Drop every buffered span record."""
    _ring.clear()


def last_span() -> SpanRecord | None:
    """The most recently closed span, or None (O(1), no snapshot copy)."""
    return _ring[-1] if _ring else None


def set_span_capacity(capacity: int) -> None:
    """Resize the ring buffer (keeps the newest records that fit)."""
    global _ring
    if capacity < 1:
        raise ValueError("span capacity must be >= 1")
    _ring = deque(_ring, maxlen=capacity)


def span_depth() -> int:
    """How many spans are currently open (0 outside any span)."""
    return trace.depth()


def iter_spans(name: str | None = None) -> Iterator[SpanRecord]:
    """Buffered records, optionally filtered by span name."""
    for record in _ring:
        if name is None or record.name == name:
            yield record
