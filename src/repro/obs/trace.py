"""Trace identity: ids, cross-process propagation, and trace export.

This module is the **only minting site** for trace and span ids (rule
RP010): every id in the system is either created here or copied from a
value that was.  :mod:`repro.obs.spans` calls :func:`push_span` /
:func:`pop_span` around each live span, which assigns the span a fresh
span id, ties it to the active trace (minting a new trace id when the
span is a root), and remembers its parent span id — so one coordinator
``apply`` and every worker-side stage it caused share a single trace.

Propagation across the process boundary is explicit and value-based,
matching the runtime's pickled command tuples:

* the coordinator stamps each outgoing command with
  :func:`stamp_envelope` (appends the current :class:`TraceContext`,
  if any);
* the worker splits it back off with :func:`split_envelope` and
  executes the command under :func:`attached`, so the worker's root
  spans adopt the coordinator's trace id and parent span id.

Commands replayed from a recovery journal are recorded *without* a
context (the coordinator journals the base command, not the envelope),
so a respawned worker opens fresh traces instead of re-attaching to
parents that ended before it was born — no orphan parent ids.

The ids are process-unique by construction (``pid`` + per-process
counter, both read at mint time so they survive ``fork``), carry no
randomness, and are cheap: minting is a string format, not a syscall.

Export helpers turn collected :class:`~repro.obs.spans.SpanRecord`
sequences into the Chrome trace-event JSON that Perfetto and
``chrome://tracing`` load (:func:`to_chrome`; one ``pid`` track per
process label) or into a plain-text top-N critical-spans table
(:func:`render_critical_spans`).  Both are surfaced as ``repro trace``.

Like the span stack, all state here is process-local and single-
threaded by design (rule RP008).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Iterable

__all__ = [
    "TraceContext",
    "attached",
    "current_context",
    "new_span_id",
    "new_trace_id",
    "process_label",
    "render_critical_spans",
    "set_process_label",
    "split_envelope",
    "stamp_envelope",
    "to_chrome",
]


@dataclass(frozen=True)
class TraceContext:
    """A propagatable reference to one live span in one live trace."""

    trace_id: str
    span_id: str


@dataclass
class Frame:
    """One open span's identity (internal; owned by repro.obs.spans)."""

    name: str
    span_id: str
    trace_id: str
    parent_id: str | None
    parent_name: str | None
    root: bool


_counter = 0
_process_label: str | None = None
_stack: list[Frame] = []
#: Trace id owned by the current root span (None outside any span).
_active_trace: str | None = None
#: Remote parent installed by :func:`attached` (cross-process link).
_remote: TraceContext | None = None


def _mint(prefix: str) -> str:
    # pid is read per call, not at import: a forked worker inherits the
    # parent's counter value, and the differing pid keeps ids unique.
    global _counter
    _counter += 1
    return f"{prefix}-{os.getpid():x}-{_counter:x}"


def new_trace_id() -> str:
    """A fresh process-unique trace id (only this module may mint)."""
    return _mint("t")


def new_span_id() -> str:
    """A fresh process-unique span id (only this module may mint)."""
    return _mint("s")


def set_process_label(label: str) -> None:
    """Name this process's track in exported traces (``"coordinator"``,
    ``"shard-3"``, ...).  Defaults to ``pid-<pid>``."""
    global _process_label
    _process_label = label


def process_label() -> str:
    """This process's trace-track label."""
    if _process_label is not None:
        return _process_label
    return f"pid-{os.getpid()}"


# ----------------------------------------------------------------------
# the span identity stack (driven by repro.obs.spans)
# ----------------------------------------------------------------------
def push_span(name: str) -> Frame:
    """Open one span: assign its ids and link it to the active trace.

    A nested span inherits the enclosing span's trace and parents to
    it.  A root span adopts the attached remote context when one is
    installed (cross-process continuation), otherwise it starts a new
    trace.
    """
    global _active_trace
    if _stack:
        top = _stack[-1]
        frame = Frame(name, new_span_id(), top.trace_id, top.span_id, top.name, False)
    elif _remote is not None:
        _active_trace = _remote.trace_id
        frame = Frame(name, new_span_id(), _remote.trace_id, _remote.span_id, None, True)
    else:
        trace_id = new_trace_id()
        _active_trace = trace_id
        frame = Frame(name, new_span_id(), trace_id, None, None, True)
    _stack.append(frame)
    return frame


def pop_span(frame: Frame) -> None:
    """Close the most recently opened span (LIFO; spans are context
    managers, so exits always nest)."""
    global _active_trace
    if _stack:
        _stack.pop()
    if not _stack:
        _active_trace = None


def depth() -> int:
    """How many spans are currently open in this process."""
    return len(_stack)


def reset() -> None:
    """Drop all open-span and attachment state (tests/recovery only)."""
    global _active_trace, _remote
    _stack.clear()
    _active_trace = None
    _remote = None


def current_context() -> TraceContext | None:
    """The propagatable context of the innermost open span (or the
    attached remote context when no span is open), if any."""
    if _stack:
        top = _stack[-1]
        return TraceContext(top.trace_id, top.span_id)
    return _remote


# ----------------------------------------------------------------------
# cross-process propagation
# ----------------------------------------------------------------------
class _Attachment:
    """Context manager installing (or explicitly clearing) the remote
    parent that root spans opened inside it will link to."""

    __slots__ = ("ctx", "_previous")

    def __init__(self, ctx: TraceContext | None) -> None:
        self.ctx = ctx
        self._previous: TraceContext | None = None

    def __enter__(self) -> "_Attachment":
        global _remote
        self._previous = _remote
        _remote = self.ctx
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _remote
        _remote = self._previous


def attached(ctx: TraceContext | None) -> _Attachment:
    """Run a block with ``ctx`` as the remote parent of any root span
    opened inside it.  ``attached(None)`` explicitly clears the remote
    parent (a journal-replayed command must not adopt a stale trace)."""
    return _Attachment(ctx)


def stamp_envelope(command: tuple) -> tuple:
    """The command tuple extended with the current trace context, when
    a trace is active; unchanged otherwise (so journals and disabled
    runs see byte-identical commands)."""
    ctx = current_context()
    if ctx is None:
        return command
    return command + (ctx,)


def split_envelope(command: tuple) -> tuple[tuple, TraceContext | None]:
    """Undo :func:`stamp_envelope`: the base command and its trace
    context (None when the envelope was never stamped)."""
    if command and isinstance(command[-1], TraceContext):
        return command[:-1], command[-1]
    return command, None


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def to_chrome(records: Iterable[Any]) -> dict:
    """Collected span records as a Chrome trace-event JSON object.

    Each distinct ``process`` label becomes one ``pid`` track (the
    coordinator first, then shards sorted by label), named with a
    ``process_name`` metadata event so Perfetto shows readable tracks.
    Spans are complete (``"ph": "X"``) events on the shared
    ``perf_counter`` timebase; trace/span/parent ids and the span
    attributes ride along in ``args``.
    """
    records = list(records)
    labels: list[str] = []
    for record in records:
        if record.process not in labels:
            labels.append(record.process)
    labels.sort(key=lambda label: (label != "coordinator", label))
    pid_of = {label: pid for pid, label in enumerate(labels)}
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
        for label, pid in pid_of.items()
    ]
    for record in records:
        args = {key: _jsonable(value) for key, value in record.attrs.items()}
        args["trace_id"] = record.trace_id
        args["span_id"] = record.span_id
        args["parent_id"] = record.parent_id
        args["error"] = record.error
        if record.error_type:
            args["error_type"] = record.error_type
        events.append(
            {
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "ts": record.started * 1e6,  # microseconds
                "dur": record.duration * 1e6,
                "pid": pid_of[record.process],
                "tid": 0,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_critical_spans(records: Iterable[Any], top: int = 10) -> str:
    """Plain-text top-N critical spans: the longest spans with their
    self time (duration minus direct children) — where the milliseconds
    actually went, without opening a trace viewer."""
    records = list(records)
    child_time: dict[str, float] = {}
    for record in records:
        if record.parent_id:
            child_time[record.parent_id] = (
                child_time.get(record.parent_id, 0.0) + record.duration
            )
    ranked = sorted(records, key=lambda r: r.duration, reverse=True)[: max(top, 0)]
    lines = [
        f"top {len(ranked)} critical spans of {len(records)} collected",
        f"{'TOTAL_MS':>10}  {'SELF_MS':>10}  {'PROCESS':<12} {'NAME':<28} TRACE",
    ]
    for record in ranked:
        self_ms = max(record.duration - child_time.get(record.span_id, 0.0), 0.0)
        name = record.name + (" [ERR]" if record.error else "")
        lines.append(
            f"{record.duration * 1e3:>10.3f}  {self_ms * 1e3:>10.3f}  "
            f"{record.process:<12} {name:<28} {record.trace_id}"
        )
    return "\n".join(lines) + "\n"
