"""Bounded delta-encoded time series over registry snapshots.

The registry (:class:`~repro.obs.instruments.Registry`) is point-in-time
and lifetime-cumulative: counters only grow, and a histogram's buckets
remember every observation since the process started.  That shape is
right for lossless merging but wrong for operations questions — "what
is the apply rate *now*?", "what was p95 commit latency *over the last
minute*?".  A single early latency spike skews a lifetime percentile
forever.

:class:`Timeline` fixes this by periodically folding summaries into a
bounded ring of **delta-encoded samples**: each sample stores only the
counter increments and histogram bucket increments since the previous
sample (sparse — unchanged series cost nothing) plus the absolute gauge
values.  Windows over the ring recover rates (counter delta / elapsed)
and *windowed* histogram percentiles (quantiles over the summed bucket
deltas inside the window, Prometheus ``histogram_quantile`` style).

The very first sample is a **baseline**: it records gauge values but no
deltas, because the interval it would cover is unknown.  Everything
after it is pure between-sample activity.

All clock reads stay in this module (``repro.obs`` is the single source
of timing truth — rule RP009 keeps ``time.*`` out of the instrumented
packages); callers can inject a fake
clock for deterministic tests, the same pattern as
:class:`repro.serve.admission.TokenBucket`.

:class:`TimelineSampler` adapts the timeline to synchronous poll loops
(``repro top``, benchmarks) and to the serve layer's periodic asyncio
task: ``maybe_sample()`` is cheap when called early and samples when the
interval has elapsed.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Iterable, Mapping

from . import state
from .registry import counter as _counter

__all__ = [
    "DEFAULT_TIMELINE_CAPACITY",
    "Timeline",
    "TimelineSample",
    "TimelineSampler",
    "Window",
    "bucket_quantile",
]

DEFAULT_TIMELINE_CAPACITY = 512


def _base_name(key: str) -> str:
    """Summary key -> bare metric name (labels stripped)."""
    brace = key.find("{")
    return key if brace < 0 else key[:brace]


def _matches(key: str, name: str) -> bool:
    """Does a summary key belong to metric ``name`` (any label set)?"""
    return key == name or key.startswith(name + "{")


def bucket_quantile(
    bounds: Iterable[float], counts: Iterable[float], q: float
) -> float | None:
    """The q-quantile of one (bounds, per-bucket counts) pair.

    Same estimator as :func:`repro.dashboard.histogram_quantile`, kept
    here as well because layering runs the other way — the dashboard may
    import ``repro.obs``, never vice versa.  ``counts`` has one more
    entry than ``bounds`` (the overflow bucket, which reports the last
    finite bound since it has no upper edge).  None for empty data.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    bounds = list(bounds)
    counts = list(counts)
    total = sum(counts)
    if not total:
        return None
    target = q * total
    cumulative = 0.0
    for i, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= target:
            if i >= len(bounds):
                return bounds[-1]
            lower = bounds[i - 1] if i else 0.0
            upper = bounds[i]
            if not count:
                return upper
            return lower + (upper - lower) * (target - previous) / count
    return bounds[-1]


class TimelineSample:
    """One delta-encoded ring entry.

    ``counters`` maps summary keys to their increment since the previous
    sample (only non-zero entries are stored); ``histograms`` maps keys
    to sparse ``{"bounds", "counts", "sum", "count"}`` delta entries
    (only histograms that saw observations); ``gauges`` stores absolute
    values.  ``dt`` is the seconds since the previous sample (0.0 for
    the baseline sample).
    """

    __slots__ = ("t", "dt", "counters", "gauges", "histograms")

    def __init__(
        self,
        t: float,
        dt: float,
        counters: dict[str, float],
        gauges: dict[str, float],
        histograms: dict[str, dict[str, Any]],
    ) -> None:
        self.t = t
        self.dt = dt
        self.counters = counters
        self.gauges = gauges
        self.histograms = histograms

    def to_dict(self) -> dict[str, Any]:
        """JSON-representable form (``/timeline.json``)."""
        return {
            "t": self.t,
            "dt": self.dt,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                key: dict(entry) for key, entry in self.histograms.items()
            },
        }


class Window:
    """Aggregate view over the samples inside one trailing window."""

    def __init__(self, samples: list[TimelineSample]) -> None:
        self.samples = samples
        #: Seconds of activity the included deltas cover.
        self.duration = sum(sample.dt for sample in samples)

    def __len__(self) -> int:
        return len(self.samples)

    def delta(self, name: str) -> float:
        """Total counter increment of ``name`` (all label sets) inside
        the window; histogram names report their observation-count
        increment."""
        total = 0.0
        for sample in self.samples:
            for key, value in sample.counters.items():
                if _matches(key, name):
                    total += value
            for key, entry in sample.histograms.items():
                if _matches(key, name):
                    total += entry["count"]
        return total

    def rate(self, name: str) -> float | None:
        """Per-second rate of ``name`` over the window (None when the
        window spans no elapsed time)."""
        if self.duration <= 0.0:
            return None
        return self.delta(name) / self.duration

    def gauge(self, name: str) -> float | None:
        """Latest value of gauge ``name`` inside the window, summed
        across label sets (the :func:`merge_summaries` convention).
        None when no sample in the window carries the gauge."""
        for sample in reversed(self.samples):
            values = [
                value
                for key, value in sample.gauges.items()
                if _matches(key, name)
            ]
            if values:
                return float(sum(values))
        return None

    def histogram(self, name: str) -> dict[str, Any] | None:
        """The summed bucket-delta entry of histogram ``name`` (all
        label sets merged — bounds are identical by construction).
        Shape-compatible with a registry summary entry, so it feeds
        :func:`repro.dashboard.histogram_quantile` unchanged."""
        merged: dict[str, Any] | None = None
        for sample in self.samples:
            for key, entry in sample.histograms.items():
                if not _matches(key, name):
                    continue
                if merged is None:
                    merged = {
                        "kind": "histogram",
                        "bounds": list(entry["bounds"]),
                        "counts": list(entry["counts"]),
                        "sum": entry["sum"],
                        "count": entry["count"],
                    }
                else:
                    merged["counts"] = [
                        a + b for a, b in zip(merged["counts"], entry["counts"])
                    ]
                    merged["sum"] += entry["sum"]
                    merged["count"] += entry["count"]
        return merged

    def quantile(self, name: str, q: float) -> float | None:
        """Windowed q-quantile of histogram ``name`` (None: no data)."""
        entry = self.histogram(name)
        if entry is None:
            return None
        return bucket_quantile(entry["bounds"], entry["counts"], q)


class Timeline:
    """Bounded ring of delta-encoded registry snapshots."""

    def __init__(
        self,
        capacity: int = DEFAULT_TIMELINE_CAPACITY,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 2:
            raise ValueError(f"timeline capacity must be >= 2, got {capacity}")
        self._samples: deque[TimelineSample] = deque(maxlen=capacity)
        self._clock = clock
        #: key -> last absolute value (counters) / (counts, sum, count)
        #: triple (histograms), the delta-encoding reference point.
        self._previous: dict[str, Any] = {}
        self._previous_t: float | None = None
        self._latest_summary: Mapping[str, Any] = {}
        self._sampled = 0

    @property
    def capacity(self) -> int:
        maxlen = self._samples.maxlen
        assert maxlen is not None
        return maxlen

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def sampled(self) -> int:
        """Total samples ever taken (including ones that fell off)."""
        return self._sampled

    def latest(self) -> Mapping[str, Any]:
        """The last absolute summary folded in (lifetime-cumulative)."""
        return self._latest_summary

    def sample(
        self, summary: Mapping[str, Any], t: float | None = None
    ) -> TimelineSample:
        """Fold one registry summary in; returns the recorded sample.

        The first call is the baseline (gauges only, ``dt`` 0); each
        later call stores the sparse increments against the previous
        summary.  ``t`` defaults to the injected clock and must not run
        backwards.
        """
        if t is None:
            t = self._clock()
        baseline = self._previous_t is None
        dt = 0.0 if baseline else max(t - (self._previous_t or 0.0), 0.0)
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, Any]] = {}
        reference: dict[str, Any] = {}
        for key, entry in summary.items():
            kind = entry.get("kind")
            if kind == "counter":
                value = float(entry["value"])
                reference[key] = value
                if not baseline:
                    delta = value - float(self._previous.get(key, 0.0))
                    if delta:
                        counters[key] = delta
            elif kind == "gauge":
                gauges[key] = float(entry["value"])
            elif kind == "histogram":
                counts = list(entry["counts"])
                total = int(entry["count"])
                reference[key] = (counts, float(entry["sum"]), total)
                if baseline:
                    continue
                prev_counts, prev_sum, prev_total = self._previous.get(
                    key, ([0] * len(counts), 0.0, 0)
                )
                delta_total = total - prev_total
                if delta_total:
                    histograms[key] = {
                        "bounds": list(entry["bounds"]),
                        "counts": [
                            a - b for a, b in zip(counts, prev_counts)
                        ],
                        "sum": float(entry["sum"]) - prev_sum,
                        "count": delta_total,
                    }
        recorded = TimelineSample(t, dt, counters, gauges, histograms)
        self._samples.append(recorded)
        self._previous = reference
        self._previous_t = t
        self._latest_summary = summary
        self._sampled += 1
        if state.ENABLED:
            _counter(
                "timeline.samples",
                help="registry snapshots folded into the timeline",
            ).inc()
        return recorded

    def window(self, seconds: float | None = None) -> Window:
        """The trailing window ending at the newest sample.

        ``seconds=None`` covers every buffered sample.  The baseline
        sample contributes no deltas, so windows measure pure
        between-sample activity.
        """
        samples = list(self._samples)
        if not samples or seconds is None:
            return Window(samples)
        cutoff = samples[-1].t - seconds
        return Window([sample for sample in samples if sample.t >= cutoff])

    def series(self, name: str, points: int = 60) -> list[float]:
        """Per-sample values of ``name``, oldest first, at most
        ``points`` newest samples: counter/histogram names yield
        per-second rates per sample interval, gauges their absolute
        value (carried forward over gaps, 0.0 before first seen)."""
        samples = list(self._samples)[-points:]
        out: list[float] = []
        last_gauge = 0.0
        for sample in samples:
            gauge_values = [
                value
                for key, value in sample.gauges.items()
                if _matches(key, name)
            ]
            if gauge_values:
                last_gauge = float(sum(gauge_values))
                out.append(last_gauge)
                continue
            total = 0.0
            seen = False
            for key, value in sample.counters.items():
                if _matches(key, name):
                    total += value
                    seen = True
            for key, entry in sample.histograms.items():
                if _matches(key, name):
                    total += entry["count"]
                    seen = True
            if seen and sample.dt > 0.0:
                out.append(total / sample.dt)
            elif seen:
                out.append(total)
            else:
                # No activity this interval: a counter reads 0, a gauge
                # carries its last seen value forward (last_gauge starts
                # at 0.0, so pure-counter series stay at zero).
                out.append(last_gauge)
        return out

    def to_json(self) -> dict[str, Any]:
        """JSON-representable dump for ``/timeline.json``."""
        return {
            "capacity": self.capacity,
            "sampled": self._sampled,
            "samples": [sample.to_dict() for sample in self._samples],
        }


class TimelineSampler:
    """Interval-driven sampling for poll loops and periodic tasks.

    ``collect`` produces the summary to fold in (for a sharded monitor:
    :func:`repro.serve.session.collect_obs_summary`); ``interval`` is
    the target sampling period.  :meth:`maybe_sample` is safe to call
    much more often than the interval — it reads the clock once and
    returns None until the period has elapsed.
    """

    def __init__(
        self,
        timeline: Timeline,
        collect: Callable[[], Mapping[str, Any]],
        interval: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"sampler interval must be > 0, got {interval}")
        self.timeline = timeline
        self.interval = interval
        self._collect = collect
        self._clock = clock
        self._due: float | None = None

    def maybe_sample(self, now: float | None = None) -> TimelineSample | None:
        """Sample when the interval has elapsed (or never sampled yet)."""
        if now is None:
            now = self._clock()
        if self._due is not None and now < self._due:
            return None
        self._due = now + self.interval
        return self.timeline.sample(self._collect(), t=now)

    def force(self, now: float | None = None) -> TimelineSample:
        """Sample immediately, resetting the cadence."""
        if now is None:
            now = self._clock()
        self._due = now + self.interval
        return self.timeline.sample(self._collect(), t=now)
