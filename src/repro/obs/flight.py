"""Crash flight recorder: a bounded journal of recent operational events.

Post-mortem debugging of a SIGKILLed worker has nothing to work with —
the registry dies with the process and the span ring is in its heap.
The flight recorder fixes that with two complementary channels:

* an **in-memory ring** of the last ``capacity`` events (refusals,
  sheds, dead-letter envelopes, per-command worker notes), cheap enough
  to keep always-on;
* an optional **eagerly-flushed JSONL journal** on disk.  Every
  :meth:`FlightRecorder.note` appends one line and flushes, so even a
  SIGKILL — which runs no handlers — leaves the journal readable up to
  the final pre-crash event.  The journal rotates to ``<path>.old``
  once it reaches four times the ring capacity, bounding disk usage
  while :meth:`FlightRecorder.read` stitches the tail back together.

For crashes that *do* unwind (a raising worker loop) or on demand
(SIGUSR2, ``repro flight signal``), :meth:`FlightRecorder.dump` writes
a full snapshot — events, the span ring, and the registry summary — as
one atomic JSON document.

Wall-clock timestamps are deliberate here (rule RP009 exempts
``repro.obs``): flight dumps are correlated across processes and with
external logs, where monotonic clocks are meaningless.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Iterable

from . import state
from .registry import counter
from .spans import spans
from .trace import process_label

__all__ = [
    "DEFAULT_FLIGHT_CAPACITY",
    "FlightRecorder",
    "install_signal_dump",
]

DEFAULT_FLIGHT_CAPACITY = 256


def _jsonable(value: Any) -> Any:
    """Fallback serializer: span records and exotic attrs become strings."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    return str(value)


class FlightRecorder:
    """Bounded event ring with an optional eagerly-flushed disk journal."""

    def __init__(
        self,
        path: str | os.PathLike[str] | None = None,
        capacity: int = DEFAULT_FLIGHT_CAPACITY,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._lines = 0
        self.path = Path(path) if path is not None else None
        self._file = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("a", encoding="utf-8")

    # -- recording ---------------------------------------------------------

    def note(self, kind: str, **fields: Any) -> dict[str, Any] | None:
        """Record one event; no-op while instrumentation is disabled."""
        if not state.ENABLED:
            return None
        self._seq += 1
        event = {"seq": self._seq, "wall": self._clock(), "kind": kind, **fields}
        self._ring.append(event)
        counter("flight.events", help="events appended to the flight recorder").inc()
        if self._file is not None:
            self._file.write(json.dumps(event, default=_jsonable) + "\n")
            self._file.flush()
            self._lines += 1
            if self._lines >= self.capacity * 4:
                self._rotate()
        return event

    def _rotate(self) -> None:
        assert self._file is not None and self.path is not None
        self._file.close()
        os.replace(self.path, self.path.with_name(self.path.name + ".old"))
        self._file = self.path.open("a", encoding="utf-8")
        self._lines = 0

    def events(self) -> list[dict[str, Any]]:
        """Snapshot of the in-memory ring, oldest first."""
        return list(self._ring)

    def close(self) -> None:
        """Close the journal file; the in-memory ring stays readable."""
        if self._file is not None:
            self._file.close()
            self._file = None

    # -- snapshots ---------------------------------------------------------

    def dump(self, path: str | os.PathLike[str], reason: str) -> Path:
        """Write a full flight snapshot atomically; returns the path."""
        from .registry import get_registry  # late: avoid import-order surprises

        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "reason": reason,
            "pid": os.getpid(),
            "process": process_label(),
            "dumped_at": self._clock(),
            "events": self.events(),
            "spans": [dataclasses.asdict(record) for record in spans()],
            "metrics": get_registry().summary(),
        }
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(json.dumps(doc, default=_jsonable, indent=2), encoding="utf-8")
        os.replace(tmp, target)
        return target

    # -- reading back ------------------------------------------------------

    @staticmethod
    def read(path: str | os.PathLike[str]) -> Any:
        """Load a journal (.jsonl, merging its rotated ``.old`` tail) or a
        dump document (.json) back into Python objects."""
        source = Path(path)
        if source.suffix == ".jsonl":
            events: list[dict[str, Any]] = []
            rotated = source.with_name(source.name + ".old")
            for part in (rotated, source):
                if not part.exists():
                    continue
                for line in part.read_text(encoding="utf-8").splitlines():
                    if line.strip():
                        events.append(json.loads(line))
            return events
        return json.loads(source.read_text(encoding="utf-8"))


def install_signal_dump(
    recorder: FlightRecorder,
    directory: str | os.PathLike[str],
    label: str | None = None,
) -> bool:
    """Dump the flight snapshot on SIGUSR2.

    Returns False where signals cannot be installed (non-main thread,
    platforms without SIGUSR2) so callers can degrade gracefully.
    """
    name = label if label is not None else process_label()
    target = Path(directory) / f"flight-{name}-sigusr2.json"

    def _handler(signum: int, frame: Any) -> None:
        recorder.dump(target, reason="sigusr2")

    try:
        signal.signal(signal.SIGUSR2, _handler)
    except (ValueError, AttributeError, OSError):
        return False
    return True
