"""The global observability switch.

Everything in :mod:`repro.obs` is gated on one module-level flag so a
disabled deployment pays a single attribute load and branch per
instrumentation site — no timer reads, no dict traffic, no allocation
(``benchmarks/bench_obs_overhead.py`` quantifies this).  The flag is
process-local; worker processes forked by :mod:`repro.runtime` inherit
the coordinator's setting at spawn time.

The initial state honours the ``REPRO_OBS`` environment variable
(``0``/``false``/``off`` start disabled; anything else — including
unset — starts enabled), so operators can strip instrumentation from a
whole fleet without code changes.
"""

from __future__ import annotations

import os

_OFF_VALUES = frozenset({"0", "false", "off", "no"})

#: The live switch.  Read directly (``state.ENABLED``) on hot paths;
#: mutate only through :func:`enable` / :func:`disable`.
ENABLED: bool = os.environ.get("REPRO_OBS", "1").strip().lower() not in _OFF_VALUES


def enable() -> None:
    """Turn instrumentation on (spans recorded, instruments mutate)."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn instrumentation off (every obs primitive becomes a no-op)."""
    global ENABLED
    ENABLED = False


def enabled() -> bool:
    """Is instrumentation currently on?"""
    return ENABLED
