"""The central metric catalog: every metric name this project mints.

A dashboard panel or SLO rule that references a metric which nothing
mints does not fail — it silently evaluates against *no data*, so the
panel renders empty and the SLO reports "ok" forever.  That failure
mode is invisible in tests that only exercise the happy path, which is
why rule RP018 cross-checks every metric-name string literal consumed
by :mod:`repro.dashboard` and :mod:`repro.obs.slo` against this
catalog at lint time.

The catalog maps each dotted metric name to its ``(kind, help)`` pair.
It MUST stay a literal dict: RP018 reads the keys straight out of this
module's AST (no import, no execution), the same way the checkpoint
round-trip rule (RP014) diffs manifest keys.

Span names are listed through the histograms they feed
(``<span>.seconds``); per-engine pruning counters
(``join.<engine>.pruned``) are enumerated per concrete engine because
the name is assembled with an f-string at the mint site.
"""

from __future__ import annotations

__all__ = ["CATALOG", "known", "kind_of", "help_of"]

#: name -> (kind, help).  Keys sorted by family, then name.
CATALOG: dict[str, tuple[str, str]] = {
    # -- library monitor ------------------------------------------------
    "monitor.apply.seconds": ("histogram", "seconds per apply() batch"),
    "monitor.changes": ("counter", "edge change operations folded in"),
    "monitor.deregister_query.seconds": ("histogram", "seconds per live query retirement"),
    "monitor.events": ("counter", "appeared/disappeared transitions reported"),
    "monitor.events.seconds": ("histogram", "seconds per events() poll"),
    "monitor.matches": ("counter", "candidate pairs returned by matches()"),
    "monitor.matches.seconds": ("histogram", "seconds per matches() poll"),
    "monitor.polls": ("counter", "matches() poll calls"),
    "monitor.probe.seconds": ("histogram", "seconds per sampled precision-probe pass"),
    "monitor.query_deregistrations": ("counter", "live query retirements"),
    "monitor.query_registrations": ("counter", "live query registrations"),
    "monitor.register_query.seconds": ("histogram", "seconds per live query registration"),
    "monitor.verifier_calls": ("counter", "exact isomorphism checks performed"),
    "monitor.verify.seconds": ("histogram", "seconds per exact verification call"),
    # -- NNT / join engines ---------------------------------------------
    "nnt.batch_size": ("histogram", "edge changes per coalesced NNT batch"),
    "nnt.batch_update.seconds": ("histogram", "seconds per incremental NNT batch update"),
    "nnt.deltas_delivered": ("counter", "NPV deltas delivered to join engines"),
    "join.candidates.seconds": ("histogram", "seconds per dominance-filter candidate scan"),
    "join.dsc.dominance_checks": ("counter", "dominance-filter probes answered by the dsc engine"),
    "join.matrix.dominance_checks": ("counter", "dominance-filter probes answered by the matrix engine"),
    "join.nl.dominance_checks": ("counter", "dominance-filter probes answered by the nl engine"),
    "join.skyline.dominance_checks": ("counter", "dominance-filter probes answered by the skyline engine"),
    "join.dsc.pruned": ("counter", "probes pruned by the dsc engine, by blamed dimension"),
    "join.matrix.pruned": ("counter", "probes pruned by the matrix engine, by blamed dimension"),
    "join.nl.pruned": ("counter", "probes pruned by the nl engine, by blamed dimension"),
    "join.skyline.pruned": ("counter", "probes pruned by the skyline engine, by blamed dimension"),
    # -- filter quality --------------------------------------------------
    "filter.candidates": ("counter", "(stream, query) pairs emitted by the dominance filter"),
    "filter.fp_ratio_estimate": ("gauge", "sampled estimate of the filter false-positive ratio"),
    "filter.probe.checked": ("counter", "candidate pairs verified by the precision probe"),
    "filter.probe.false_positive": ("counter", "probed pairs that failed exact isomorphism"),
    "filter.probe.skipped": ("counter", "pairs the probe skipped (sampling or budget)"),
    # -- query churn ------------------------------------------------------
    "query.register.seconds": ("histogram", "seconds per live query registration"),
    # -- sharded runtime --------------------------------------------------
    "runtime.bytes_pickled": ("counter", "payload bytes pickled onto worker queues"),
    "runtime.checkpoint.seconds": ("histogram", "seconds per shard checkpoint write"),
    "runtime.deregister_query.seconds": ("histogram", "seconds per fleet query retirement"),
    "runtime.dropped": ("counter", "batches dropped by the drop backpressure policy"),
    "runtime.inbox_depth": ("gauge", "deepest worker inbox at last submit"),
    "runtime.matches.seconds": ("histogram", "seconds per fleet-wide poll"),
    "runtime.query_deregistrations": ("counter", "fleet query retirements"),
    "runtime.query_registrations": ("counter", "fleet query registrations"),
    "runtime.register_query.seconds": ("histogram", "seconds per fleet query registration"),
    "runtime.rescale.active": ("gauge", "1 while a pool rescale is in flight"),
    "runtime.rescale.last_seconds": ("gauge", "duration of the last completed rescale"),
    "runtime.rescale.seconds": ("histogram", "seconds per live pool rescale"),
    "runtime.rescales": ("counter", "completed live pool rescales"),
    "runtime.spilled": ("counter", "batches parked by the spill backpressure policy"),
    "runtime.streams_moved": ("counter", "streams migrated between shards by rescales"),
    "runtime.submit.seconds": ("histogram", "seconds per coordinator submit"),
    "runtime.workers": ("gauge", "current worker pool size"),
    # -- shared-memory plane ----------------------------------------------
    "shm.attaches": ("counter", "reader attaches to shared NPV segments"),
    "shm.grows": ("counter", "shared segment grow operations"),
    "shm.remaps": ("counter", "coordinator remaps after a segment grow"),
    "shm.ring_bytes": ("counter", "payload bytes carried by the shared rings"),
    "shm.ring_overflow": ("counter", "payloads that fell back inline on a full ring"),
    "shm.segments_created": ("counter", "shared-memory segments created"),
    # -- serving edge ------------------------------------------------------
    "serve.admitted": ("counter", "commands admitted"),
    "serve.batches_applied": ("counter", "staged batches applied by commit"),
    "serve.breaker_state": ("gauge", "0=closed 1=half-open 2=open"),
    "serve.commands": ("counter", "commands executed by the writer task"),
    "serve.commit.seconds": ("histogram", "seconds per serve commit"),
    "serve.commits": ("counter", "successful commits"),
    "serve.deregister_query.seconds": ("histogram", "seconds per serve query retirement"),
    "serve.dlq": ("counter", "poison batches journaled to the dead-letter queue"),
    "serve.query_deregistrations": ("counter", "queries retired over the wire"),
    "serve.query_registrations": ("counter", "queries registered over the wire"),
    "serve.queue_depth": ("gauge", "data commands waiting in the admission queue"),
    "serve.register_query.seconds": ("histogram", "seconds per serve query registration"),
    "serve.rejected": ("counter", "commands rejected at the edge, by reason"),
    "serve.sessions": ("gauge", "connected sessions"),
    "serve.shed": ("counter", "queued commands shed under overload"),
    # -- timeline / SLO / flight (this layer's own telemetry) -------------
    "flight.events": ("counter", "events appended to the flight recorder"),
    "slo.breaches": ("counter", "transitions into the breach state, by rule"),
    "slo.state": ("gauge", "per-rule SLO state: 0=ok 1=warn 2=breach"),
    "timeline.sample_errors": ("counter", "timeline collection failures"),
    "timeline.samples": ("counter", "registry snapshots folded into the timeline"),
}


def known(name: str) -> bool:
    """Is ``name`` a minted metric (exact catalog match)?"""
    return name in CATALOG


def kind_of(name: str) -> str | None:
    """The catalogued instrument kind of ``name`` (None when unknown)."""
    entry = CATALOG.get(name)
    return entry[0] if entry else None


def help_of(name: str) -> str | None:
    """The catalogued help string of ``name`` (None when unknown)."""
    entry = CATALOG.get(name)
    return entry[1] if entry else None
