"""Declarative SLO rules evaluated over the metrics timeline.

A :class:`SloRule` names one objective over one metric — a windowed
histogram quantile ceiling (``p95 serve.commit.seconds < 0.5s``), a
gauge ceiling or floor (FP-ratio estimate, worker inbox depth), or a
windowed rate ceiling (rejections per second) — and the hysteresis that
turns raw measurements into an operational state:

* ``ok``     — the objective holds;
* ``warn``   — it has been violated for at least ``warn_after``
  consecutive evaluations (the burn has started);
* ``breach`` — violated for ``breach_after`` consecutive evaluations.

Recovery is also hysteretic: a warned/breached rule returns to ``ok``
only after ``clear_after`` consecutive healthy evaluations, so a
flapping metric cannot ring the state bell on every sample.

:class:`SloEngine` owns the per-rule state machines, evaluates them
against a :class:`~repro.obs.timeline.Timeline`, and exports the result
as metrics in the same registry it watches: ``slo.state{rule=...}``
(0/1/2) and ``slo.breaches{rule=...}`` (transitions into breach) — so a
scrape of ``/metrics`` carries the SLO verdicts alongside the raw
series they were computed from.

Rules with no data (the metric has never been observed inside the
window) evaluate to ``ok`` — an SLO over an idle subsystem is not
burning.  The typo-shaped failure mode this invites (a misspelled
metric name is *permanently* idle) is exactly what rule RP018 guards
against: every metric name referenced here must exist in
:mod:`repro.obs.catalog`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from .registry import counter, gauge
from .timeline import Timeline

__all__ = [
    "BREACH",
    "DEFAULT_RULES",
    "OK",
    "OBJECTIVES",
    "STATE_CODES",
    "SloEngine",
    "SloRule",
    "WARN",
]

OK = "ok"
WARN = "warn"
BREACH = "breach"

#: state name -> exported gauge code.
STATE_CODES = {OK: 0, WARN: 1, BREACH: 2}

#: quantile: windowed histogram quantile must stay <= threshold;
#: gauge_max / gauge_min: latest gauge value vs threshold;
#: rate_max: windowed per-second rate must stay <= threshold.
OBJECTIVES = ("quantile", "gauge_max", "gauge_min", "rate_max")


@dataclass(frozen=True)
class SloRule:
    """One declarative objective over one catalogued metric."""

    name: str
    metric: str
    objective: str
    threshold: float
    q: float = 0.95  # quantile objectives only
    window: float = 60.0  # trailing evaluation window in seconds
    warn_after: int = 1  # consecutive violations before warn
    breach_after: int = 3  # consecutive violations before breach
    clear_after: int = 2  # consecutive OKs before recovery
    complement: bool = False  # evaluate 1 - value (recall from FP ratio)
    description: str = ""

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"objective must be one of {OBJECTIVES}, got {self.objective!r}"
            )
        if not 0.0 <= self.q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {self.q}")
        if self.window <= 0:
            raise ValueError(f"window must be > 0 seconds, got {self.window}")
        if self.warn_after < 1 or self.breach_after < self.warn_after:
            raise ValueError(
                f"need 1 <= warn_after <= breach_after, got "
                f"{self.warn_after}/{self.breach_after}"
            )
        if self.clear_after < 1:
            raise ValueError(f"clear_after must be >= 1, got {self.clear_after}")

    def violated_by(self, value: float) -> bool:
        """Does one measured value violate this objective?"""
        if self.objective == "gauge_min":
            return value < self.threshold
        return value > self.threshold


#: The stock production rules (CLI-overridable): paper-facing quality
#: gauges plus the serving KPIs the overload tests script against.
DEFAULT_RULES: tuple[SloRule, ...] = (
    SloRule(
        "commit-latency-p95",
        "serve.commit.seconds",
        "quantile",
        0.5,
        q=0.95,
        description="p95 serve commit latency stays under 500ms",
    ),
    SloRule(
        "fp-ratio",
        "filter.fp_ratio_estimate",
        "gauge_max",
        0.5,
        description="sampled filter false-positive ratio stays under 0.5",
    ),
    SloRule(
        "probe-precision",
        "filter.fp_ratio_estimate",
        "gauge_min",
        0.5,
        complement=True,
        description="probe-estimated precision (1 - FP ratio) stays over 0.5",
    ),
    SloRule(
        "inbox-depth",
        "runtime.inbox_depth",
        "gauge_max",
        256.0,
        description="deepest worker inbox stays under 256 queued commands",
    ),
    SloRule(
        "reject-rate",
        "serve.rejected",
        "rate_max",
        5.0,
        breach_after=2,
        description="edge rejections stay under 5/s over the window",
    ),
    SloRule(
        "shed-rate",
        "serve.shed",
        "rate_max",
        1.0,
        breach_after=2,
        description="load shedding stays under 1/s over the window",
    ),
)


class _RuleState:
    """The mutable half of one rule: its hysteresis counters."""

    __slots__ = ("state", "violations", "oks", "breaches", "value", "changed_at")

    def __init__(self) -> None:
        self.state = OK
        self.violations = 0
        self.oks = 0
        self.breaches = 0
        self.value: float | None = None
        self.changed_at: float | None = None


class SloEngine:
    """Evaluates a rule set against a timeline, exporting the verdicts."""

    def __init__(
        self,
        rules: Iterable[SloRule] | None = None,
        timeline: Timeline | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rules: tuple[SloRule, ...] = (
            tuple(rules) if rules is not None else DEFAULT_RULES
        )
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO rule names in {names}")
        self.timeline = timeline
        self._clock = clock
        self._states = {rule.name: _RuleState() for rule in self.rules}

    # -- measurement -------------------------------------------------------

    def _measure(self, rule: SloRule, timeline: Timeline) -> float | None:
        window = timeline.window(rule.window)
        if rule.objective == "quantile":
            value = window.quantile(rule.metric, rule.q)
        elif rule.objective == "rate_max":
            value = window.rate(rule.metric)
        else:
            value = window.gauge(rule.metric)
        if value is None:
            return None
        return 1.0 - value if rule.complement else value

    # -- evaluation --------------------------------------------------------

    def evaluate(self, timeline: Timeline | None = None) -> list[dict[str, Any]]:
        """Advance every rule's state machine one step; returns the
        per-rule snapshots (the ``/slo`` payload's ``rules`` list)."""
        active = timeline if timeline is not None else self.timeline
        if active is None:
            raise ValueError("SloEngine.evaluate needs a timeline")
        now = self._clock()
        results = []
        for rule in self.rules:
            status = self._states[rule.name]
            value = self._measure(rule, active)
            violating = value is not None and rule.violated_by(value)
            previous = status.state
            if violating:
                status.oks = 0
                status.violations += 1
                if status.violations >= rule.breach_after:
                    status.state = BREACH
                elif status.violations >= rule.warn_after and previous != BREACH:
                    status.state = WARN
            else:
                status.violations = 0
                status.oks += 1
                if previous != OK and status.oks >= rule.clear_after:
                    status.state = OK
            if status.state != previous:
                status.changed_at = now
                if status.state == BREACH:
                    status.breaches += 1
                    counter(
                        "slo.breaches",
                        help="transitions into the breach state, by rule",
                        labels={"rule": rule.name},
                    ).inc()
            status.value = value
            gauge(
                "slo.state",
                help="per-rule SLO state: 0=ok 1=warn 2=breach",
                labels={"rule": rule.name},
            ).set(STATE_CODES[status.state])
            results.append(self._snapshot_rule(rule, status))
        return results

    # -- reporting ---------------------------------------------------------

    @staticmethod
    def _snapshot_rule(rule: SloRule, status: _RuleState) -> dict[str, Any]:
        return {
            "name": rule.name,
            "metric": rule.metric,
            "objective": rule.objective,
            "threshold": rule.threshold,
            "q": rule.q if rule.objective == "quantile" else None,
            "window": rule.window,
            "complement": rule.complement,
            "description": rule.description,
            "state": status.state,
            "value": status.value,
            "violations": status.violations,
            "oks": status.oks,
            "breaches": status.breaches,
            "changed_at": status.changed_at,
        }

    def state_of(self, name: str) -> str:
        """Current state of one rule by name."""
        return self._states[name].state

    @property
    def worst(self) -> str:
        """The worst state across every rule."""
        ranked = max(
            (STATE_CODES[status.state] for status in self._states.values()),
            default=0,
        )
        for state_name, code in STATE_CODES.items():
            if code == ranked:
                return state_name
        return OK

    def snapshot(self) -> dict[str, Any]:
        """The full ``/slo`` payload (no re-evaluation)."""
        return {
            "worst": self.worst,
            "rules": [
                self._snapshot_rule(rule, self._states[rule.name])
                for rule in self.rules
            ],
        }
