"""Typed instruments and the process-local registry.

Three instrument kinds, mirroring the Prometheus data model without the
dependency:

* :class:`Counter` — monotonically increasing count (events, items);
* :class:`Gauge` — a value that goes up and down (queue depth);
* :class:`Histogram` — fixed-bucket latency/size distribution with
  cumulative ``le`` semantics (a value exactly on a bucket's upper
  bound lands in that bucket; values above the last bound land in the
  implicit ``+Inf`` overflow bucket).

Instruments live in a :class:`Registry` keyed by dotted name
(``"monitor.apply.seconds"``).  An instrument may additionally carry a
small set of **labels** (string keys and values only, validated at
registration): each distinct label set is its own instrument, keyed by
the canonical ``name{key="value",...}`` form, so the filter-quality
counters (``filter.candidates{stream=...,query=...}``,
``join.dsc.pruned{dim=...}``) and the error-labelled span histograms
stay independent series.  A registry snapshots to a plain-dict
:meth:`Registry.summary` — picklable and JSON-representable, the same
contract as :meth:`repro.core.metrics.ShardCounters.summary` — and
per-worker summaries merge losslessly with :func:`merge_summaries`
(counters and gauges sum; histograms with identical bounds add their
bucket counts), which is how :mod:`repro.runtime` builds its fleet view
at poll time.

All mutation is gated on :data:`repro.obs.state.ENABLED`; a disabled
process keeps registering instruments (cheap) but never touches their
values.

Instruments pickle as *references*: unpickling get-or-creates the same
name in the process-local global registry (values reset to zero).
Counts are process-local by design — a monitor restored from a
checkpoint must re-attach to the restoring process's registry, not
resurrect the counts of the process that wrote the snapshot.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Iterable, Mapping, Sequence

from . import state

#: Prometheus label-name alphabet.
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def escape_label_value(value: str) -> str:
    """A label value escaped per the Prometheus text format 0.0.4:
    backslash, double-quote and newline become ``\\\\``, ``\\"`` and
    ``\\n`` (backslash first, so escapes never double up)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def validate_labels(name: str, labels: Mapping[str, object] | None) -> dict[str, str]:
    """Validated, key-sorted copy of an instrument's labels.

    Label names must match the Prometheus alphabet and values must
    already be strings — rejecting a non-string *early*, at
    registration, keeps the failure at the call site that forgot a
    ``str()`` instead of deep inside exposition.
    """
    if not labels:
        return {}
    validated: dict[str, str] = {}
    for key in sorted(labels):
        if not isinstance(key, str) or not _LABEL_NAME.match(key):
            raise ValueError(f"invalid label name {key!r} on instrument {name!r}")
        value = labels[key]
        if not isinstance(value, str):
            raise TypeError(
                f"label {key!r} of instrument {name!r} must be a string, "
                f"got {type(value).__name__}"
            )
        validated[key] = value
    return validated


def instrument_key(name: str, labels: Mapping[str, str]) -> str:
    """Canonical registry/summary key: the bare name, or
    ``name{key="escaped value",...}`` with keys sorted."""
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{escape_label_value(labels[key])}"' for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"

#: Default latency buckets in seconds: ~1 µs to 10 s, log-spaced the
#: way stream maintenance costs actually spread (the paper's Figure 15
#: unit is milliseconds per timestamp).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6,
    1e-5,
    1e-4,
    2.5e-4,
    1e-3,
    2.5e-3,
    1e-2,
    2.5e-2,
    1e-1,
    2.5e-1,
    1.0,
    10.0,
)


class Counter:
    """Monotonic event count."""

    kind = "counter"
    __slots__ = ("name", "help", "labels", "value")

    def __init__(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> None:
        self.name = name
        self.help = help
        self.labels = validate_labels(name, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) when instrumentation is on."""
        if state.ENABLED:
            if amount < 0:
                raise ValueError(f"counter {self.name!r} cannot decrease")
            self.value += amount

    def summary(self) -> dict:
        """Plain-dict snapshot."""
        entry = {"kind": self.kind, "help": self.help, "value": self.value}
        if self.labels:
            entry["labels"] = dict(self.labels)
        return entry

    def __reduce__(self):
        from .registry import counter

        return (counter, (self.name, self.help, self.labels or None))


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "value")

    def __init__(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> None:
        self.name = name
        self.help = help
        self.labels = validate_labels(name, labels)
        self.value: float = 0

    def set(self, value: float) -> None:
        """Replace the current value when instrumentation is on."""
        if state.ENABLED:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        """Shift the current value when instrumentation is on."""
        if state.ENABLED:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        """Shift the current value down when instrumentation is on."""
        if state.ENABLED:
            self.value -= amount

    def summary(self) -> dict:
        """Plain-dict snapshot."""
        entry = {"kind": self.kind, "help": self.help, "value": self.value}
        if self.labels:
            entry["labels"] = dict(self.labels)
        return entry

    def __reduce__(self):
        from .registry import gauge

        return (gauge, (self.name, self.help, self.labels or None))


class Histogram:
    """Fixed-bucket distribution with Prometheus ``le`` semantics.

    ``bounds`` are the finite upper bucket edges, strictly increasing;
    an observation lands in the first bucket whose bound is >= the
    value (so a value exactly on an edge belongs to that bucket), and
    anything above the last bound lands in the implicit ``+Inf``
    bucket.  ``counts`` has ``len(bounds) + 1`` entries, the last being
    the overflow bucket; exposition cumulates them.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "labels", "bounds", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} bucket bounds must strictly increase: {bounds}"
            )
        self.name = name
        self.help = help
        self.labels = validate_labels(name, labels)
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Fold one observation in when instrumentation is on."""
        if state.ENABLED:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.sum += value
            self.count += 1

    def summary(self) -> dict:
        """Plain-dict snapshot (bounds + per-bucket counts, not cumulated)."""
        entry = {
            "kind": self.kind,
            "help": self.help,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }
        if self.labels:
            entry["labels"] = dict(self.labels)
        return entry

    def __reduce__(self):
        from .registry import histogram

        return (histogram, (self.name, self.help, self.bounds, self.labels or None))


Instrument = Counter | Gauge | Histogram


class Registry:
    """Process-local, name-keyed instrument store.

    ``counter()`` / ``gauge()`` / ``histogram()`` get-or-create, so
    instrumentation sites never need registration boilerplate; asking
    for an existing name with a different kind (or different histogram
    buckets) is a programming error and raises.  Each distinct label
    set of a name is its own instrument (keyed by the canonical
    ``name{key="value"}`` form of :func:`instrument_key`).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def counter(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Counter:
        """Get or create the named counter."""
        key = instrument_key(name, validate_labels(name, labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Counter(name, help, labels)
            self._instruments[key] = instrument
        elif not isinstance(instrument, Counter):
            raise TypeError(f"{key!r} is a {instrument.kind}, not a counter")
        return instrument

    def gauge(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Gauge:
        """Get or create the named gauge."""
        key = instrument_key(name, validate_labels(name, labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Gauge(name, help, labels)
            self._instruments[key] = instrument
        elif not isinstance(instrument, Gauge):
            raise TypeError(f"{key!r} is a {instrument.kind}, not a gauge")
        return instrument

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: Mapping[str, str] | None = None,
    ) -> Histogram:
        """Get or create the named histogram."""
        key = instrument_key(name, validate_labels(name, labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Histogram(name, help, buckets, labels)
            self._instruments[key] = instrument
        elif not isinstance(instrument, Histogram):
            raise TypeError(f"{key!r} is a {instrument.kind}, not a histogram")
        elif instrument.bounds != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {key!r} already registered with bounds "
                f"{instrument.bounds}, not {tuple(buckets)}"
            )
        return instrument

    def names(self) -> list[str]:
        """Registered instrument keys (name plus canonical labels), sorted."""
        return sorted(self._instruments)

    def get(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Counter | Gauge | Histogram | None:
        """The named instrument (with the given label set), or None."""
        if labels:
            name = instrument_key(name, validate_labels(name, labels))
        return self._instruments.get(name)

    def reset(self) -> None:
        """Zero every instrument (registrations survive)."""
        for instrument in self._instruments.values():
            if isinstance(instrument, Histogram):
                instrument.counts = [0] * len(instrument.counts)
                instrument.sum = 0.0
                instrument.count = 0
            else:
                instrument.value = 0

    def summary(self) -> dict:
        """Plain-dict snapshot of every instrument, keyed by name."""
        return {
            name: self._instruments[name].summary()
            for name in sorted(self._instruments)
        }


def merge_summaries(summaries: Iterable[Mapping]) -> dict:
    """Lossless fleet-wide aggregate of :meth:`Registry.summary` dicts.

    Counters and gauges sum (a fleet gauge like inbox depth reads as
    the total across workers); histograms require identical bucket
    bounds — which same-named instruments always have — and add their
    bucket counts, sums and counts elementwise.  The operation is
    associative with identity ``{}``, so partial merges compose
    (``tests/test_obs.py`` pins both properties).
    """
    merged: dict[str, dict] = {}
    for summary in summaries:
        for name, entry in summary.items():
            into = merged.get(name)
            if into is None:
                merged[name] = {
                    key: (
                        list(value)
                        if isinstance(value, list)
                        else dict(value) if isinstance(value, dict) else value
                    )
                    for key, value in entry.items()
                }
                continue
            if into["kind"] != entry["kind"]:
                raise ValueError(
                    f"cannot merge {name!r}: kind {entry['kind']} vs {into['kind']}"
                )
            if entry["kind"] == "histogram":
                if list(into["bounds"]) != list(entry["bounds"]):
                    raise ValueError(
                        f"cannot merge histogram {name!r}: bucket bounds differ"
                    )
                into["counts"] = [
                    a + b for a, b in zip(into["counts"], entry["counts"])
                ]
                into["sum"] += entry["sum"]
                into["count"] += entry["count"]
            else:
                into["value"] += entry["value"]
    return dict(sorted(merged.items()))
