"""Filter-quality telemetry: candidate volume, pruning power, precision.

The paper evaluates the NPV dominance filter on two axes — how fast it
is (Figs 15-17) and how *selective* it is (Figs 13-14, false-positive
ratio).  This module carries the second axis into the serving path as
three families of instruments:

* ``filter.candidates{stream=...,query=...}`` — how many times each
  (stream, query) pair passed the dominance filter (one increment per
  emission from ``matches()``), recorded by
  :meth:`repro.core.monitor.StreamMonitor.matches` via
  :func:`record_candidates`;
* ``join.<engine>.pruned{dim=...}`` — which NPV dimension killed a
  failing candidate probe, recorded by each join engine via
  :func:`record_pruned` with the verdict of :func:`blame_dimension`
  (the blamed dimension is *diagnostic* — the first query dimension,
  in sorted order, that no stream vector covers alone — and
  ``dim="combination"`` when every dimension is individually coverable
  but no single stream vector dominates the whole query vector);
* ``filter.probe.*`` counters and the ``filter.fp_ratio_estimate``
  gauge — fed by the sampled precision probe
  (:class:`repro.core.verify.PrecisionProbe`) via :func:`record_probe`.
  The gauge renders as ``repro_filter_fp_ratio_estimate`` in Prometheus
  text and is the live counterpart of the offline fig13/fig14 ratio.

The probe's rate/time budget lives here too (:class:`ProbeBudget`),
because rule RP009 bars the instrumented packages — including
``repro.core`` — from reading clocks directly: the deadline arithmetic
happens in this module, on :func:`time.perf_counter`, and the core only
asks ``budget.expired()``.

Everything is gated on :data:`repro.obs.state.ENABLED`; call sites
additionally guard with ``obs.enabled()`` so a disabled run never even
builds the label dicts.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Mapping

from . import state
from .registry import counter, gauge


def record_candidates(pairs: Iterable[tuple[Any, Any]]) -> None:
    """Count one filter emission per (stream, query) pair.

    Called by ``matches()`` with the pair set the dominance filter just
    produced; each pair's counter is its own labelled series, so the
    per-pair candidate volume (the numerator of the paper's FP ratio)
    is visible without any offline pass.
    """
    if not state.ENABLED:
        return
    for stream_id, query_id in pairs:
        counter(
            "filter.candidates",
            help="(stream, query) pairs emitted by the dominance filter",
            labels={"stream": str(stream_id), "query": str(query_id)},
        ).inc()


def record_pruned(engine: str, dim: str) -> None:
    """Count one pruned candidate probe, blamed on ``dim``.

    ``engine`` is the short join-engine name (``nl``/``dsc``/...),
    ``dim`` a stringified NPV dimension or ``"combination"`` — the
    output shape of :func:`blame_dimension`.
    """
    if not state.ENABLED:
        return
    counter(
        f"join.{engine}.pruned",
        help=f"candidate probes rejected by the {engine} engine, by blamed dimension",
        labels={"dim": dim},
    ).inc()


def blame_dimension(
    query_vector: Mapping[Any, int], stream_vectors: Iterable[Mapping[Any, int]]
) -> str:
    """Which dimension killed a failed dominance check, as a string.

    A stream vector dominates the query vector only if it covers it on
    *every* dimension, so when no stream vector dominates there are two
    cases: some query dimension is not covered by any stream vector
    alone (we blame the first such dimension in sorted-by-``str``
    order — deterministic across engines), or every dimension is
    individually coverable but never by one vector at once
    (``"combination"``).  Diagnostic only; never consulted by the
    filter itself.
    """
    vectors = list(stream_vectors)
    for dim in sorted(query_vector, key=str):
        need = query_vector[dim]
        if not any(vector.get(dim, 0) >= need for vector in vectors):
            return str(dim)
    return "combination"


class ProbeBudget:
    """Rate + wall-clock budget for the sampled precision probe.

    ``rate`` is the fraction of emitted candidate pairs the probe may
    verify (0 disables, 1 verifies everything the time budget allows);
    ``budget_seconds`` caps how long one probe pass may spend before it
    starts skipping (``None`` = no time cap).  The deadline is armed by
    :meth:`start` and consulted with :meth:`expired` — the only clock
    reads in the whole probe path, kept in ``repro.obs`` because rule
    RP009 bars ``repro.core`` from ``time.*``.
    """

    __slots__ = ("rate", "budget_seconds", "_deadline")

    def __init__(self, rate: float = 0.1, budget_seconds: float | None = 0.050) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"probe rate must be in [0, 1], got {rate}")
        if budget_seconds is not None and budget_seconds < 0:
            raise ValueError(f"probe budget must be >= 0 seconds, got {budget_seconds}")
        self.rate = rate
        self.budget_seconds = budget_seconds
        self._deadline: float | None = None

    def start(self) -> None:
        """Arm the wall-clock deadline for one probe pass."""
        if self.budget_seconds is None:
            self._deadline = None
        else:
            self._deadline = time.perf_counter() + self.budget_seconds

    def expired(self) -> bool:
        """Has the armed deadline passed?  (False when uncapped.)"""
        if self._deadline is None:
            return False
        return time.perf_counter() >= self._deadline


def record_probe(checked: int, false_positives: int, skipped: int = 0) -> None:
    """Fold one probe pass into the cumulative precision estimate.

    Updates the ``filter.probe.checked`` / ``filter.probe.false_positive``
    / ``filter.probe.skipped`` counters and recomputes the
    ``filter.fp_ratio_estimate`` gauge from the *cumulative* counters,
    so the gauge converges as samples accumulate rather than jittering
    with each pass.
    """
    if not state.ENABLED:
        return
    checked_counter = counter(
        "filter.probe.checked",
        help="candidate pairs verified exactly by the sampled precision probe",
    )
    fp_counter = counter(
        "filter.probe.false_positive",
        help="probed candidate pairs that failed exact subgraph isomorphism",
    )
    counter(
        "filter.probe.skipped",
        help="candidate pairs the probe skipped (rate sampling or time budget)",
    ).inc(skipped)
    checked_counter.inc(checked)
    fp_counter.inc(false_positives)
    if checked_counter.value:
        gauge(
            "filter.fp_ratio_estimate",
            help="sampled estimate of the NPV filter false-positive ratio",
        ).set(fp_counter.value / checked_counter.value)
