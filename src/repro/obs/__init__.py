"""repro.obs — zero-dependency observability for the stream monitor.

Three primitives, one switch:

* **Spans** — ``with obs.span("monitor.apply", stream=sid): ...`` times
  a stage monotonically, records nesting into a bounded ring buffer
  (:func:`spans`), and feeds a ``"<name>.seconds"`` latency histogram.
* **Instruments** — :func:`counter` / :func:`gauge` / :func:`histogram`
  get-or-create typed instruments in the process-local
  :class:`Registry`; per-worker registries merge losslessly with
  :func:`merge_summaries` (the runtime coordinator does this at poll
  time, extending the ``ShardCounters`` machinery of
  :mod:`repro.core.metrics`).
* **Exposition** — :func:`render_prometheus` / :func:`render_json` turn
  any summary (live, dumped, or merged) into scrapeable text; surfaced
  as ``repro stats`` and the ``--stats-every`` replay/serve flags.

:func:`disable` flips the whole subsystem to a near-zero-overhead
no-op path (one flag check per site; quantified in
``benchmarks/bench_obs_overhead.py``); ``REPRO_OBS=0`` in the
environment starts a process disabled.  Rule RP009 keeps ad-hoc
``time.*`` timing out of the instrumented packages so this module
stays the single source of timing truth — see ``docs/observability.md``.
"""

from .exposition import metric_name, render_json, render_prometheus
from .instruments import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    Registry,
    merge_summaries,
)
from .registry import counter, gauge, get_registry, histogram, set_registry
from .spans import (
    DEFAULT_SPAN_CAPACITY,
    SpanRecord,
    clear_spans,
    iter_spans,
    set_span_capacity,
    span,
    span_depth,
    spans,
)
from .state import disable, enable, enabled

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SPAN_CAPACITY",
    "Gauge",
    "Histogram",
    "Registry",
    "SpanRecord",
    "clear_spans",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_registry",
    "histogram",
    "iter_spans",
    "merge_summaries",
    "metric_name",
    "render_json",
    "render_prometheus",
    "set_registry",
    "set_span_capacity",
    "span",
    "span_depth",
    "spans",
]
