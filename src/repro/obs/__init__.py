"""repro.obs — zero-dependency observability for the stream monitor.

Three primitives, one switch:

* **Spans** — ``with obs.span("monitor.apply", stream=sid): ...`` times
  a stage monotonically, records nesting into a bounded ring buffer
  (:func:`spans`), and feeds a ``"<name>.seconds"`` latency histogram.
* **Instruments** — :func:`counter` / :func:`gauge` / :func:`histogram`
  get-or-create typed instruments in the process-local
  :class:`Registry`; per-worker registries merge losslessly with
  :func:`merge_summaries` (the runtime coordinator does this at poll
  time, extending the ``ShardCounters`` machinery of
  :mod:`repro.core.metrics`).
* **Exposition** — :func:`render_prometheus` / :func:`render_json` turn
  any summary (live, dumped, or merged) into scrapeable text; surfaced
  as ``repro stats`` and the ``--stats-every`` replay/serve flags.

Two further layers ride on the same switch:

* **Traces** — every span carries trace/span/parent ids minted by
  :mod:`repro.obs.trace` (the only minting site, rule RP010) and
  propagated across the runtime's process boundary by
  :func:`stamp_envelope` / :func:`split_envelope` / :func:`attached`,
  so one coordinator ``apply`` and all worker-side work it causes form
  a single tree.  :func:`to_chrome` exports collected spans as Chrome
  trace-event / Perfetto JSON; :func:`render_critical_spans` is the
  plain-text top-N view.  Surfaced as ``repro trace``.
* **Filter quality** — :mod:`repro.obs.quality` counts candidate
  emissions per (stream, query), blames failed dominance probes on the
  killing NPV dimension, and hosts the rate/time budget of the sampled
  precision probe that feeds the live ``filter.fp_ratio_estimate``
  gauge (``repro_filter_fp_ratio_estimate`` in Prometheus text).

:func:`disable` flips the whole subsystem to a near-zero-overhead
no-op path (one flag check per site; quantified in
``benchmarks/bench_obs_overhead.py``); ``REPRO_OBS=0`` in the
environment starts a process disabled.  Rule RP009 keeps ad-hoc
``time.*`` timing out of the instrumented packages so this module
stays the single source of timing truth — see ``docs/observability.md``.
"""

from . import quality, trace
from .exposition import metric_name, render_json, render_prometheus
from .instruments import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    Registry,
    escape_label_value,
    instrument_key,
    merge_summaries,
    validate_labels,
)
from .registry import counter, gauge, get_registry, histogram, set_registry
from .spans import (
    DEFAULT_SPAN_CAPACITY,
    SpanRecord,
    clear_spans,
    iter_spans,
    set_span_capacity,
    span,
    span_depth,
    spans,
)
from .state import disable, enable, enabled
from .trace import (
    TraceContext,
    attached,
    current_context,
    new_span_id,
    new_trace_id,
    process_label,
    render_critical_spans,
    set_process_label,
    split_envelope,
    stamp_envelope,
    to_chrome,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SPAN_CAPACITY",
    "Gauge",
    "Histogram",
    "Registry",
    "SpanRecord",
    "TraceContext",
    "attached",
    "clear_spans",
    "counter",
    "current_context",
    "disable",
    "enable",
    "enabled",
    "escape_label_value",
    "gauge",
    "get_registry",
    "histogram",
    "instrument_key",
    "iter_spans",
    "merge_summaries",
    "metric_name",
    "new_span_id",
    "new_trace_id",
    "process_label",
    "quality",
    "render_critical_spans",
    "render_json",
    "render_prometheus",
    "set_process_label",
    "set_registry",
    "set_span_capacity",
    "span",
    "span_depth",
    "spans",
    "split_envelope",
    "stamp_envelope",
    "to_chrome",
    "trace",
    "validate_labels",
]
