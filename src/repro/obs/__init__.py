"""repro.obs — zero-dependency observability for the stream monitor.

Three primitives, one switch:

* **Spans** — ``with obs.span("monitor.apply", stream=sid): ...`` times
  a stage monotonically, records nesting into a bounded ring buffer
  (:func:`spans`), and feeds a ``"<name>.seconds"`` latency histogram.
* **Instruments** — :func:`counter` / :func:`gauge` / :func:`histogram`
  get-or-create typed instruments in the process-local
  :class:`Registry`; per-worker registries merge losslessly with
  :func:`merge_summaries` (the runtime coordinator does this at poll
  time, extending the ``ShardCounters`` machinery of
  :mod:`repro.core.metrics`).
* **Exposition** — :func:`render_prometheus` / :func:`render_json` turn
  any summary (live, dumped, or merged) into scrapeable text; surfaced
  as ``repro stats`` and the ``--stats-every`` replay/serve flags.

Two further layers ride on the same switch:

* **Traces** — every span carries trace/span/parent ids minted by
  :mod:`repro.obs.trace` (the only minting site, rule RP010) and
  propagated across the runtime's process boundary by
  :func:`stamp_envelope` / :func:`split_envelope` / :func:`attached`,
  so one coordinator ``apply`` and all worker-side work it causes form
  a single tree.  :func:`to_chrome` exports collected spans as Chrome
  trace-event / Perfetto JSON; :func:`render_critical_spans` is the
  plain-text top-N view.  Surfaced as ``repro trace``.
* **Filter quality** — :mod:`repro.obs.quality` counts candidate
  emissions per (stream, query), blames failed dominance probes on the
  killing NPV dimension, and hosts the rate/time budget of the sampled
  precision probe that feeds the live ``filter.fp_ratio_estimate``
  gauge (``repro_filter_fp_ratio_estimate`` in Prometheus text).

Three historically-aware layers build on the snapshots:

* **Timeline** — :class:`Timeline` keeps a bounded delta-encoded ring
  of periodic registry snapshots; :class:`Window` answers windowed
  rates and *windowed* histogram quantiles from bucket deltas (what
  ``repro top`` and the SLO engine consume instead of
  lifetime-cumulative values).
* **SLOs** — :class:`SloEngine` evaluates declarative :class:`SloRule`
  objectives over the timeline with ok/warn/breach hysteresis,
  exporting ``slo.state`` / ``slo.breaches`` back into the registry.
* **Flight recorder** — :class:`FlightRecorder` journals refusals,
  sheds, dead letters, and worker command notes to a bounded ring and
  an eagerly-flushed JSONL file that survives SIGKILL; full snapshots
  dump on crash or SIGUSR2 (:func:`install_signal_dump`).  Every
  metric name these layers reference must exist in
  :mod:`repro.obs.catalog` (rule RP018).

:func:`disable` flips the whole subsystem to a near-zero-overhead
no-op path (one flag check per site; quantified in
``benchmarks/bench_obs_overhead.py``); ``REPRO_OBS=0`` in the
environment starts a process disabled.  Rule RP009 keeps ad-hoc
``time.*`` timing out of the instrumented packages so this module
stays the single source of timing truth — see ``docs/observability.md``.
"""

from . import catalog, quality, trace
from .exposition import metric_name, render_json, render_prometheus
from .flight import DEFAULT_FLIGHT_CAPACITY, FlightRecorder, install_signal_dump
from .instruments import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    Registry,
    escape_label_value,
    instrument_key,
    merge_summaries,
    validate_labels,
)
from .registry import counter, gauge, get_registry, histogram, set_registry
from .slo import DEFAULT_RULES, SloEngine, SloRule
from .spans import (
    DEFAULT_SPAN_CAPACITY,
    SpanRecord,
    clear_spans,
    iter_spans,
    last_span,
    set_span_capacity,
    span,
    span_depth,
    spans,
)
from .state import disable, enable, enabled
from .timeline import (
    DEFAULT_TIMELINE_CAPACITY,
    Timeline,
    TimelineSample,
    TimelineSampler,
    Window,
    bucket_quantile,
)
from .trace import (
    TraceContext,
    attached,
    current_context,
    new_span_id,
    new_trace_id,
    process_label,
    render_critical_spans,
    set_process_label,
    split_envelope,
    stamp_envelope,
    to_chrome,
)

__all__ = [
    "Counter",
    "DEFAULT_FLIGHT_CAPACITY",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_RULES",
    "DEFAULT_SPAN_CAPACITY",
    "DEFAULT_TIMELINE_CAPACITY",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "Registry",
    "SloEngine",
    "SloRule",
    "SpanRecord",
    "Timeline",
    "TimelineSample",
    "TimelineSampler",
    "TraceContext",
    "Window",
    "attached",
    "bucket_quantile",
    "catalog",
    "clear_spans",
    "counter",
    "current_context",
    "disable",
    "enable",
    "enabled",
    "escape_label_value",
    "gauge",
    "get_registry",
    "histogram",
    "install_signal_dump",
    "instrument_key",
    "iter_spans",
    "last_span",
    "merge_summaries",
    "metric_name",
    "new_span_id",
    "new_trace_id",
    "process_label",
    "quality",
    "render_critical_spans",
    "render_json",
    "render_prometheus",
    "set_process_label",
    "set_registry",
    "set_span_capacity",
    "span",
    "span_depth",
    "spans",
    "split_envelope",
    "stamp_envelope",
    "to_chrome",
    "trace",
    "validate_labels",
]
