"""The process-global registry and module-level instrument shortcuts.

One :class:`~repro.obs.instruments.Registry` per process is the right
granularity for this codebase: the filtering core is single-threaded
(rule RP008) and the sharded runtime isolates shards in worker
processes, so "process" and "shard" coincide — each worker accumulates
into its own copy of this module's registry and ships
:meth:`~repro.obs.instruments.Registry.summary` snapshots to the
coordinator, which merges them with
:func:`~repro.obs.instruments.merge_summaries`.

Instrumentation sites call the shortcuts::

    obs.counter("nnt.deltas_delivered").inc(len(deltas))
    obs.histogram("runtime.checkpoint.seconds").observe(lap)

Get-or-create is a dict hit after the first call; combined with the
``state.ENABLED`` gate inside each instrument, a disabled site costs a
lookup and a branch.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .instruments import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    Registry,
)

_REGISTRY = Registry()


def get_registry() -> Registry:
    """The process-global registry."""
    return _REGISTRY


def set_registry(registry: Registry) -> Registry:
    """Swap the process-global registry; returns the previous one.

    Intended for tests and benchmarks that need a clean slate without
    disturbing accumulated state (prefer ``get_registry().reset()``
    when zeroing is enough).
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def counter(
    name: str, help: str = "", labels: Mapping[str, str] | None = None
) -> Counter:
    """Get or create a counter in the global registry."""
    return _REGISTRY.counter(name, help, labels)


def gauge(name: str, help: str = "", labels: Mapping[str, str] | None = None) -> Gauge:
    """Get or create a gauge in the global registry."""
    return _REGISTRY.gauge(name, help, labels)


def histogram(
    name: str,
    help: str = "",
    buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    labels: Mapping[str, str] | None = None,
) -> Histogram:
    """Get or create a histogram in the global registry."""
    return _REGISTRY.histogram(name, help, buckets, labels)
