"""Exposition: Prometheus text format and JSON rendering.

Both renderers take a *summary* dict (the plain-dict shape produced by
:meth:`~repro.obs.instruments.Registry.summary` and
:func:`~repro.obs.instruments.merge_summaries`), not a live registry —
so the same code renders a single process, a saved dump, or a merged
fleet view.  ``repro stats`` and the ``--stats-every`` flags are thin
wrappers over these functions.

The text output follows the Prometheus exposition format version
0.0.4: ``# HELP`` / ``# TYPE`` headers, counters suffixed ``_total``,
histograms exploded into cumulative ``_bucket{le="..."}`` series plus
``_sum`` and ``_count``.  Dotted instrument names are sanitised to the
``[a-zA-Z_:][a-zA-Z0-9_:]*`` metric-name alphabet (dots become
underscores) under a configurable prefix.

Labelled instruments (summary keys of the form ``name{key="value"}``
carrying a ``"labels"`` dict) render as separate samples of one metric:
``# HELP`` / ``# TYPE`` appear once per metric name, each label set
once per series, and label *values* are escaped per the 0.0.4 spec —
backslash, double-quote and newline become ``\\\\``, ``\\"`` and
``\\n``.  A non-string label value is rejected with :class:`TypeError`
before any output is produced (the same check
:func:`~repro.obs.instruments.validate_labels` applies at registration,
repeated here because summaries may arrive from dumps or other
processes).
"""

from __future__ import annotations

import json
import re
from typing import Mapping

from .instruments import escape_label_value

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST = re.compile(r"^[^a-zA-Z_:]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitised Prometheus metric name for a dotted instrument name."""
    flat = _INVALID_CHARS.sub("_", name)
    if prefix:
        flat = f"{prefix}_{flat}"
    return _INVALID_FIRST.sub("_", flat)


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render bare, floats repr-exact."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_pairs(name: str, entry: Mapping) -> list[tuple[str, str]]:
    """Validated ``(key, escaped_value)`` pairs for one summary entry."""
    labels = entry.get("labels") or {}
    pairs: list[tuple[str, str]] = []
    for key in sorted(labels):
        value = labels[key]
        if not isinstance(value, str):
            raise TypeError(
                f"label {key!r} of metric {name!r} must be a string, "
                f"got {type(value).__name__}"
            )
        pairs.append((key, escape_label_value(value)))
    return pairs


def _render_labels(pairs: list[tuple[str, str]]) -> str:
    if not pairs:
        return ""
    return "{" + ",".join(f'{key}="{value}"' for key, value in pairs) + "}"


def render_prometheus(summary: Mapping[str, Mapping], prefix: str = "repro") -> str:
    """The summary as Prometheus text exposition (trailing newline)."""
    lines: list[str] = []
    seen: dict[str, str] = {}  # metric name -> kind (HELP/TYPE once per metric)
    for name in sorted(summary):
        entry = summary[name]
        kind = entry["kind"]
        base = name.split("{", 1)[0]
        metric = metric_name(base, prefix)
        if kind == "counter":
            metric = f"{metric}_total"
        pairs = _label_pairs(name, entry)
        if metric not in seen:
            seen[metric] = kind
            if entry.get("help"):
                lines.append(f"# HELP {metric} {_escape_help(entry['help'])}")
            lines.append(f"# TYPE {metric} {kind}")
        elif seen[metric] != kind:
            raise ValueError(
                f"metric {metric!r} rendered as both {seen[metric]} and {kind}"
            )
        if kind in ("counter", "gauge"):
            lines.append(f"{metric}{_render_labels(pairs)} {_format_value(entry['value'])}")
            continue
        if kind != "histogram":
            raise ValueError(f"unknown instrument kind {kind!r} for {name!r}")
        cumulative = 0
        for bound, count in zip(entry["bounds"], entry["counts"]):
            cumulative += count
            bucket = _render_labels(pairs + [("le", _format_value(bound))])
            lines.append(f"{metric}_bucket{bucket} {cumulative}")
        cumulative += entry["counts"][len(entry["bounds"])]
        lines.append(f"{metric}_bucket{_render_labels(pairs + [('le', '+Inf')])} {cumulative}")
        lines.append(f"{metric}_sum{_render_labels(pairs)} {_format_value(entry['sum'])}")
        lines.append(f"{metric}_count{_render_labels(pairs)} {_format_value(entry['count'])}")
    return "\n".join(lines) + "\n" if lines else ""


def render_json(summary: Mapping[str, Mapping]) -> str:
    """The summary as deterministic, pretty-printed JSON."""
    return json.dumps(summary, sort_keys=True, indent=2) + "\n"
