"""Exposition: Prometheus text format and JSON rendering.

Both renderers take a *summary* dict (the plain-dict shape produced by
:meth:`~repro.obs.instruments.Registry.summary` and
:func:`~repro.obs.instruments.merge_summaries`), not a live registry —
so the same code renders a single process, a saved dump, or a merged
fleet view.  ``repro stats`` and the ``--stats-every`` flags are thin
wrappers over these functions.

The text output follows the Prometheus exposition format version
0.0.4: ``# HELP`` / ``# TYPE`` headers, counters suffixed ``_total``,
histograms exploded into cumulative ``_bucket{le="..."}`` series plus
``_sum`` and ``_count``.  Dotted instrument names are sanitised to the
``[a-zA-Z_:][a-zA-Z0-9_:]*`` metric-name alphabet (dots become
underscores) under a configurable prefix.
"""

from __future__ import annotations

import json
import re
from typing import Mapping

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST = re.compile(r"^[^a-zA-Z_:]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitised Prometheus metric name for a dotted instrument name."""
    flat = _INVALID_CHARS.sub("_", name)
    if prefix:
        flat = f"{prefix}_{flat}"
    return _INVALID_FIRST.sub("_", flat)


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render bare, floats repr-exact."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_prometheus(summary: Mapping[str, Mapping], prefix: str = "repro") -> str:
    """The summary as Prometheus text exposition (trailing newline)."""
    lines: list[str] = []
    for name in sorted(summary):
        entry = summary[name]
        kind = entry["kind"]
        metric = metric_name(name, prefix)
        if kind == "counter":
            metric = f"{metric}_total"
        if entry.get("help"):
            lines.append(f"# HELP {metric} {_escape_help(entry['help'])}")
        lines.append(f"# TYPE {metric} {kind}")
        if kind in ("counter", "gauge"):
            lines.append(f"{metric} {_format_value(entry['value'])}")
            continue
        if kind != "histogram":
            raise ValueError(f"unknown instrument kind {kind!r} for {name!r}")
        cumulative = 0
        for bound, count in zip(entry["bounds"], entry["counts"]):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        cumulative += entry["counts"][len(entry["bounds"])]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(entry['sum'])}")
        lines.append(f"{metric}_count {_format_value(entry['count'])}")
    return "\n".join(lines) + "\n" if lines else ""


def render_json(summary: Mapping[str, Mapping]) -> str:
    """The summary as deterministic, pretty-printed JSON."""
    return json.dumps(summary, sort_keys=True, indent=2) + "\n"
