"""Fraud-ring monitoring with live query churn.

Models payment streams (accounts as labeled vertices, payments as
edges) watched for money-laundering typologies.  Unlike the static
examples, the query library itself changes mid-stream: an analyst
registers a new typology with ``register_query`` while payments keep
flowing — the monitor answers for it immediately, against the current
stream state, with no rebuild and no false negatives — and retires a
stale one with ``deregister_query``.

Run with:  python examples/fraud_ring.py
"""

import random

from repro import EdgeChange, GraphChangeOperation, LabeledGraph, StreamMonitor

ACCOUNT_LABELS = ["acct", "mule", "merchant", "bank"]  # account id % 4


def fraud_patterns() -> dict:
    """Three laundering typologies a fraud team might watch for."""
    # Money cycle: three accounts paying each other in a ring.
    ring = LabeledGraph.from_vertices_and_edges(
        [(0, "acct"), (1, "acct"), (2, "acct")],
        [(0, 1, "pay"), (1, 2, "pay"), (2, 0, "pay")],
    )
    # Fan-in through a mule account toward a bank.
    fan = LabeledGraph.from_vertices_and_edges(
        [(0, "acct"), (1, "acct"), (2, "mule"), (3, "bank")],
        [(0, 2, "pay"), (1, 2, "pay"), (2, 3, "pay")],
    )
    # Layering chain: account -> mule -> mule -> merchant.
    chain = LabeledGraph.from_vertices_and_edges(
        [(0, "acct"), (1, "mule"), (2, "mule"), (3, "merchant")],
        [(0, 1, "pay"), (1, 2, "pay"), (2, 3, "pay")],
    )
    return {"money-cycle": ring, "mule-fan-in": fan, "layering-chain": chain}


def account_label(account: int) -> str:
    return ACCOUNT_LABELS[account % len(ACCOUNT_LABELS)]


def random_payments(
    rng: random.Random, current: LabeledGraph, accounts: int
) -> GraphChangeOperation:
    """One timestamp of background churn: payments made and settled."""
    changes = []
    existing = list(current.edges())
    if existing and rng.random() < 0.3:
        u, v, _ = rng.choice(existing)
        changes.append(EdgeChange.delete(u, v))
    proposed = set()
    for _ in range(rng.randint(1, 3)):
        u, v = rng.sample(range(accounts), 2)
        key = frozenset((u, v))
        if current.has_edge(u, v) or key in proposed:
            continue
        proposed.add(key)
        changes.append(
            EdgeChange.insert(
                u, v, "pay", u_label=account_label(u), v_label=account_label(v)
            )
        )
    return GraphChangeOperation(changes)


def inject(current: LabeledGraph, edges: list) -> GraphChangeOperation:
    """An actual laundering structure appearing in the payment graph."""
    return GraphChangeOperation(
        [
            EdgeChange.insert(
                u, v, "pay", u_label=account_label(u), v_label=account_label(v)
            )
            for u, v in edges
            if not current.has_edge(u, v)
        ]
    )


def main() -> None:
    rng = random.Random(1896)
    patterns = fraud_patterns()
    # Start with two typologies; "layering-chain" arrives mid-run.
    monitor = StreamMonitor(
        {name: patterns[name] for name in ("money-cycle", "mule-fan-in")},
        method="dsc",
    )
    streams = ["cards", "wires"]
    for stream in streams:
        monitor.add_stream(stream)

    previous: set = set()
    for timestamp in range(1, 15):
        for stream in streams:
            monitor.apply(
                stream, random_payments(rng, monitor.graph(stream), accounts=12)
            )
        if timestamp == 6:
            # a laundering ring among three accounts
            monitor.apply("wires", inject(monitor.graph("wires"), [(0, 4), (4, 8), (8, 0)]))
            print(f"t={timestamp}: [injected money cycle into wires]")
        if timestamp == 10:
            # a layering chain: acct -> mule -> mule -> merchant
            monitor.apply("wires", inject(monitor.graph("wires"), [(8, 5), (5, 9), (9, 2)]))
            print(f"t={timestamp}: [injected layering chain into wires]")

        flagged = monitor.matches()
        for pair in sorted(flagged - previous):
            stream_id, typology = pair
            confirmed = pair in monitor.verified_matches({pair})
            status = "CONFIRMED" if confirmed else "possible (filter only)"
            print(f"t={timestamp}: ALERT {typology!r} on {stream_id}: {status}")
        previous = flagged

        if timestamp == 8:
            # analyst adds a new typology live — no rebuild, answered
            # against the current payment graphs from the next poll on
            monitor.register_query("layering-chain", patterns["layering-chain"])
            print(f"t={timestamp}: [registered typology 'layering-chain' live]")
        if timestamp == 12:
            monitor.deregister_query("mule-fan-in")
            previous = {p for p in previous if p[1] != "mule-fan-in"}
            print(f"t={timestamp}: [retired typology 'mule-fan-in']")

    print("final standing alerts:", sorted(monitor.verified_matches()))
    print("queries now live:", sorted(monitor.query_ids()))


if __name__ == "__main__":
    main()
