"""Sliding-window flow monitoring with checkpointing.

Network flow records expire: a connection seen 10 minutes ago should not
still trigger a beaconing alert.  This example drives the
:class:`SlidingWindowMonitor` over a synthetic flow feed, uses the
caching verifier to confirm alerts cheaply on quiet polls, and
checkpoints / restores the underlying monitor mid-run.

Run with:  python examples/windowed_flows.py
"""

import random
import tempfile

from repro import LabeledGraph, SlidingWindowMonitor
from repro.core.checkpoint import load_monitor, save_monitor
from repro.core.verify import CachingVerifier

HOST_LABELS = ["ws", "db", "gw"]


def beacon_pattern() -> LabeledGraph:
    """A workstation talking to two gateways within one window."""
    return LabeledGraph.from_vertices_and_edges(
        [(0, "ws"), (1, "gw"), (2, "gw")],
        [(0, 1, "flow"), (0, 2, "flow")],
    )


def staging_pattern() -> LabeledGraph:
    """db -> ws -> ws relay within one window."""
    return LabeledGraph.from_vertices_and_edges(
        [(0, "db"), (1, "ws"), (2, "ws")],
        [(0, 1, "flow"), (1, 2, "flow")],
    )


def main() -> None:
    rng = random.Random(11)
    monitor = SlidingWindowMonitor(
        {"beacon": beacon_pattern(), "staging": staging_pattern()},
        window=4,
        method="skyline",
    )
    monitor.add_stream("edge-net")

    hosts = 14
    for minute in range(1, 21):
        # A few flow observations per minute; old flows expire as the
        # window slides.
        for _ in range(rng.randint(1, 4)):
            src, dst = rng.sample(range(hosts), 2)
            monitor.observe(
                "edge-net",
                src,
                dst,
                "flow",
                u_label=HOST_LABELS[src % 3],
                v_label=HOST_LABELS[dst % 3],
            )
        expired = monitor.tick("edge-net")
        for event in monitor.events():
            print(f"min {minute:2d}: {event.kind} {event.query_id!r}  "
                  f"(window expired {expired} flows this minute)")

    # Confirm what is live right now, with caching for repeated polls.
    verifier = CachingVerifier(monitor._monitor)
    confirmed = verifier.verified_matches()
    verifier.verified_matches()  # quiet second poll: all cache hits
    print(f"\nconfirmed now: {sorted(q for _, q in confirmed)}")
    print(f"verifier stats: {verifier.stats}")

    # Checkpoint the wrapped monitor and prove the restored copy agrees.
    with tempfile.TemporaryDirectory() as tmp:
        save_monitor(monitor._monitor, tmp)
        restored = load_monitor(tmp)
        assert restored.matches() == monitor.matches()
        print(f"checkpoint round-trip OK ({len(restored.matches())} live pairs)")


if __name__ == "__main__":
    main()
